//! The durable storage tier: incremental checkpoints and a segmented
//! write-ahead log.
//!
//! EarthQube in the paper serves a continuously growing archive; losing the
//! docstore, the CBIR index and the trained MiLaN codes on every restart
//! would mean re-ingesting and re-encoding from scratch.  Earlier revisions
//! wrote one monolithic snapshot file per checkpoint; this module replaces
//! that with an *incremental* design, so a checkpoint after a small ingest
//! writes a small delta instead of re-serialising the whole archive.  A
//! persistence directory now holds four kinds of files (the public entry
//! points are [`QueryServer::checkpoint`], [`QueryServer::recover`] and
//! [`QueryServer::open`](crate::serve::QueryServer::open)):
//!
//! * **Manifest** (`manifest.eqm`) — the commit point.  A small CRC-framed
//!   record (see [`eq_wire::manifest`], magic `EQMANI01`) listing every
//!   chunk file of the current checkpoint (name, kind, length, CRC-32),
//!   the checkpoint sequence number, the WAL *generation* tag and the
//!   first live WAL segment.  It is written to a temporary file, synced,
//!   and atomically renamed into place: a checkpoint is published when the
//!   rename lands, and never half-published.
//!
//! * **Chunks** (`chunk-SSSSSS-OOO.eqc`, magic `EQCHNK01`) — the snapshot
//!   payload, split so that an incremental checkpoint only rewrites what
//!   changed: the static part (configuration + trained model), one chunk
//!   per docstore collection plus *delta* chunks layered on top of it, the
//!   per-image metadata/code table in append-only ranges, and one chunk
//!   per CBIR index shard.  A chunk file not named by the published
//!   manifest is a harmless orphan (a crashed checkpoint) and is swept by
//!   the next successful one.
//!
//!   ```text
//!   chunk  := "EQCHNK01" body_len:u64 body crc32(body):u32
//!   body   := 1 engine_config serve_config milan_model        (static)
//!           | 2 collection                                    (full collection)
//!           | 3 collection_delta                              (delta)
//!           | 4 start:u64 count (patch_metadata code)*        (image range)
//!           | 5 shard:u32 hash_table                          (index shard)
//!   ```
//!
//! * **WAL segments** (`wal.NNNN.eqw`, magic `EQWSEG01`) — the write-ahead
//!   log, rotated into bounded segments instead of one endless file.  Each
//!   segment header carries the generation tag and its own index; records
//!   are framed with a length and a per-record CRC-32, so a torn tail (the
//!   crash happened mid-`write`) is detected and cleanly discarded on
//!   recovery.  A checkpoint *cut* seals the live segment and starts the
//!   next one; segments below the manifest's `first_segment` are covered
//!   by the checkpoint and retired (deleted) after it publishes.
//!
//!   ```text
//!   segment  := "EQWSEG01" generation:u32 segment_index:u32 record*
//!   record   := len:u32 crc32(payload):u32 payload[len]
//!   payload  := 1 patch_metadata code image_doc rendered_doc   (ingest)
//!             | 2 text:string category:u8 [string]             (feedback)
//!   ```
//!
//! * **Directory lock** (`wal.lock`) — an advisory exclusive file lock held
//!   for the lifetime of an attached server, so a directory serves exactly
//!   one live writer.  The OS releases it when the holder dies, so a
//!   crashed server never wedges its directory.
//!
//! The `generation` tag names the checkpoint *lineage*: it is constant
//! across incremental checkpoints and re-stamped only by a full one.  A
//! segment tagged with a foreign generation is debris from an interrupted
//! full checkpoint; recovery ignores it when (and only when) it trails the
//! live chain.  Appends are made durable with `fdatasync` (one per
//! write-path lock section), and every chunk and the manifest are synced
//! before the rename publishes them — `flush` alone would not survive a
//! power loss.
//!
//! Recovery = read the manifest, rebuild the state from its chunks (full
//! collections first, then their deltas; image ranges must tile; every
//! index shard exactly once), replay every intact record of the live
//! segment chain through the same apply path live ingest uses, truncate
//! the torn tail of the final segment.  Replaying is idempotent from the
//! checkpoint base, so recovering a recovered directory yields the same
//! state again.
//!
//! Crash-point injection: with the `failpoints` feature (test builds only;
//! release builds of the library compile it out) the [`failpoints`] module
//! can arm exactly one named point; the corresponding I/O helper then
//! fails *before* its write/sync/rename, simulating a crash at that
//! boundary.  The recovery test suite arms every declared point in turn
//! and asserts byte-identical query responses after recovery.
//!
//! [`QueryServer::checkpoint`]: crate::serve::QueryServer::checkpoint
//! [`QueryServer::recover`]: crate::serve::QueryServer::recover

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use eq_bigearthnet::patch::PatchMetadata;
use eq_bigearthnet::wire::{decode_patch_metadata, encode_patch_metadata};
use eq_docstore::{wire, Collection, CollectionDelta, Database, Document};
use eq_hashindex::{BinaryCode, HashTableIndex, ShardedHashIndex};
use eq_milan::persist::{
    decode_config as decode_milan_config, encode_config as encode_milan_config,
};
use eq_milan::Milan;
use eq_wire::manifest::{decode_manifest, encode_manifest, ChunkEntry, Manifest};
use eq_wire::{crc32, Reader, WireError, Writer};

use crate::cbir::CbirConfig;
use crate::engine::EarthQubeConfig;
use crate::serve::ServeConfig;
use crate::EarthQubeError;

/// Manifest file name inside a persistence directory (the commit point).
pub(crate) const MANIFEST_FILE: &str = "manifest.eqm";
/// Scratch name the manifest is written under before the atomic rename.
const MANIFEST_TMP_FILE: &str = "manifest.eqm.tmp";
/// The advisory directory lock taken by an attached server.
pub(crate) const LOCK_FILE: &str = "wal.lock";

const CHUNK_MAGIC: &[u8; 8] = b"EQCHNK01";
const SEGMENT_MAGIC: &[u8; 8] = b"EQWSEG01";
/// Segment header: magic, generation tag, segment index.
pub(crate) const SEGMENT_HEADER_LEN: u64 = 16;

const CHUNK_STATIC: u8 = 1;
const CHUNK_COLLECTION: u8 = 2;
const CHUNK_COLLECTION_DELTA: u8 = 3;
const CHUNK_IMAGES: u8 = 4;
const CHUNK_SHARD: u8 = 5;

const RECORD_INGEST: u8 = 1;
const RECORD_FEEDBACK: u8 = 2;

// ---------------------------------------------------------------------------
// Crash-point injection
// ---------------------------------------------------------------------------

/// Test-only crash-point injection, compiled out of release builds of the
/// library (the `failpoints` cargo feature is only enabled by the
/// workspace's dev-dependencies).
///
/// At most one point is armed at a time; when the persistence code reaches
/// it, the corresponding I/O helper returns an error *before* performing
/// its write/sync/rename, leaving the directory in exactly the state a
/// crash at that boundary would.  The recovery test suite arms every entry
/// of [`ALL_POINTS`](failpoints::ALL_POINTS) in turn.
#[cfg(feature = "failpoints")]
pub mod failpoints {
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Every declared crash-injection point, in the order the helpers
    /// declare them.  Tests iterate this list so a newly added point can
    /// never be silently skipped.
    pub const ALL_POINTS: &[&str] = &[
        "segment-precreate",
        "segment-header-sync",
        "chunk-write",
        "chunk-sync",
        "manifest-write",
        "manifest-sync",
        "manifest-rename",
        "manifest-dir-sync",
        "wal-retire",
        "chunk-gc",
    ];

    /// `0` = disarmed; `i + 1` = `ALL_POINTS[i]` is armed.
    static ARMED: AtomicUsize = AtomicUsize::new(0);
    /// Number of times an armed point actually fired.
    static FIRED: AtomicUsize = AtomicUsize::new(0);

    /// Arms the named point (disarming any other); returns whether the
    /// name is a declared point.
    pub fn arm(name: &str) -> bool {
        match ALL_POINTS.iter().position(|p| *p == name) {
            Some(i) => {
                ARMED.store(i + 1, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Disarms whatever point is armed.
    pub fn disarm() {
        ARMED.store(0, Ordering::Release);
    }

    /// How many times an armed point has fired since the process started.
    pub fn fired_count() -> usize {
        FIRED.load(Ordering::Acquire)
    }

    /// Whether the named point is armed (bumping the fired counter if so).
    /// Called by the `fail_point!` expansions inside the persistence code.
    pub fn should_fail(name: &str) -> bool {
        let armed = ARMED.load(Ordering::Acquire);
        if armed == 0 {
            return false;
        }
        if ALL_POINTS.get(armed - 1) == Some(&name) {
            FIRED.fetch_add(1, Ordering::AcqRel);
            return true;
        }
        false
    }
}

/// Injects a crash at a declared boundary when the `failpoints` feature is
/// on and the named point is armed; expands to nothing otherwise.
macro_rules! fail_point {
    ($name:expr) => {
        #[cfg(feature = "failpoints")]
        {
            if crate::persist::failpoints::should_fail($name) {
                return Err(crate::EarthQubeError::Persist(format!(
                    "injected crash at failpoint `{}`",
                    $name
                )));
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Error helpers
// ---------------------------------------------------------------------------

/// Maps a wire-format error into the crate error type.
pub(crate) fn corrupt(e: WireError) -> EarthQubeError {
    EarthQubeError::Persist(format!("corrupt persistent state: {e}"))
}

/// Maps an I/O error into the crate error type.
pub(crate) fn io_error(context: &str, e: std::io::Error) -> EarthQubeError {
    EarthQubeError::Persist(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------------
// Shared field encoders
// ---------------------------------------------------------------------------
// The `PatchMetadata` codec lives in `eq_bigearthnet::wire` (it is shared
// with the `eq_proto` network protocol); the chunk and WAL layouts import
// it so both byte formats stay identical by construction.

fn encode_engine_config(config: &EarthQubeConfig, w: &mut Writer) {
    encode_milan_config(&config.milan, w);
    w.u32(config.cbir.default_radius);
    w.u64(config.cbir.default_k as u64);
    w.u64(config.page_size as u64);
    w.bool(config.train_model);
}

fn decode_engine_config(r: &mut Reader<'_>) -> Result<EarthQubeConfig, WireError> {
    let milan = decode_milan_config(r)?;
    let cbir = CbirConfig { default_radius: r.u32()?, default_k: r.u64()? as usize };
    let page_size = r.u64()? as usize;
    let train_model = r.bool()?;
    Ok(EarthQubeConfig { milan, cbir, page_size, train_model })
}

fn encode_serve_config(serve: ServeConfig, w: &mut Writer) {
    w.u64(serve.shards as u64);
    w.u64(serve.cache_capacity as u64);
}

fn decode_serve_config(r: &mut Reader<'_>) -> Result<ServeConfig, WireError> {
    let shards = r.u64()? as usize;
    let cache_capacity = r.u64()? as usize;
    if shards == 0 {
        return Err(WireError::Corrupt("serve configuration with zero shards".into()));
    }
    Ok(ServeConfig { shards, cache_capacity })
}

// ---------------------------------------------------------------------------
// Chunks
// ---------------------------------------------------------------------------

/// Chunk file name for checkpoint `seq`, chunk ordinal `ordinal`.
pub(crate) fn chunk_file_name(seq: u64, ordinal: u32) -> String {
    format!("chunk-{seq:06}-{ordinal:03}.eqc")
}

/// Manifest kind string of the static chunk.
pub(crate) fn kind_static() -> String {
    "static".to_string()
}

/// Manifest kind string of a full collection chunk.
pub(crate) fn kind_collection(name: &str) -> String {
    format!("coll:{name}")
}

/// Manifest kind string of a collection delta chunk.
pub(crate) fn kind_delta(name: &str) -> String {
    format!("delta:{name}")
}

/// Manifest kind string of an image-range chunk.
pub(crate) fn kind_images(start: u64) -> String {
    format!("images:{start}")
}

/// Manifest kind string of an index-shard chunk.
pub(crate) fn kind_shard(shard: u32) -> String {
    format!("shard:{shard}")
}

/// One decoded chunk body.
pub(crate) enum ChunkPayload {
    /// Configuration and trained model — written once per lineage.
    Static {
        /// The engine configuration.
        config: EarthQubeConfig,
        /// The serving-layer configuration.
        serve: ServeConfig,
        /// The trained MiLaN model.
        model: Milan,
    },
    /// A full docstore collection (replaces the base and any prior deltas).
    Collection(Collection),
    /// A delta layered on top of the collection's current base.
    Delta(CollectionDelta),
    /// A dense-id range of per-image metadata and binary codes.
    Images {
        /// First dense id of the range.
        start: u64,
        /// The metadata/code pairs, in dense-id order.
        images: Vec<(PatchMetadata, BinaryCode)>,
    },
    /// One CBIR index shard, verbatim.
    Shard {
        /// The shard's position in the sharded index.
        shard: u32,
        /// The shard's hash table.
        table: HashTableIndex,
    },
}

impl ChunkPayload {
    /// The manifest kind string this payload must be filed under — recovery
    /// cross-checks it so a mislabelled manifest entry cannot be silently
    /// accepted.
    fn expected_kind(&self) -> String {
        match self {
            ChunkPayload::Static { .. } => kind_static(),
            ChunkPayload::Collection(c) => kind_collection(c.name()),
            ChunkPayload::Delta(d) => kind_delta(&d.name),
            ChunkPayload::Images { start, .. } => kind_images(*start),
            ChunkPayload::Shard { shard, .. } => kind_shard(*shard),
        }
    }
}

/// Encodes the static chunk body (configuration + model).
pub(crate) fn encode_static_chunk(
    config: &EarthQubeConfig,
    serve: ServeConfig,
    model: &Milan,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(CHUNK_STATIC);
    encode_engine_config(config, &mut w);
    encode_serve_config(serve, &mut w);
    model.encode(&mut w);
    w.into_bytes()
}

/// Encodes a full-collection chunk body.
pub(crate) fn encode_collection_chunk(collection: &Collection) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(CHUNK_COLLECTION);
    wire::encode_collection(collection, &mut w);
    w.into_bytes()
}

/// Encodes a collection-delta chunk body.
pub(crate) fn encode_delta_chunk(delta: &CollectionDelta) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(CHUNK_COLLECTION_DELTA);
    wire::encode_collection_delta(delta, &mut w);
    w.into_bytes()
}

/// Encodes an image-range chunk body (`start` is the first dense id).
pub(crate) fn encode_images_chunk(start: u64, images: &[(&PatchMetadata, &BinaryCode)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(CHUNK_IMAGES);
    w.u64(start);
    w.seq_len(images.len());
    for (meta, code) in images {
        encode_patch_metadata(meta, &mut w);
        code.encode(&mut w);
    }
    w.into_bytes()
}

/// Encodes an index-shard chunk body.
pub(crate) fn encode_shard_chunk(shard: u32, table: &HashTableIndex) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(CHUNK_SHARD);
    w.u32(shard);
    table.encode(&mut w);
    w.into_bytes()
}

fn decode_chunk_body(body: &[u8]) -> Result<ChunkPayload, EarthQubeError> {
    let mut r = Reader::new(body);
    let payload = match r.u8().map_err(corrupt)? {
        CHUNK_STATIC => {
            let config = decode_engine_config(&mut r).map_err(corrupt)?;
            let serve = decode_serve_config(&mut r).map_err(corrupt)?;
            let model = Milan::decode(&mut r).map_err(corrupt)?;
            ChunkPayload::Static { config, serve, model }
        }
        CHUNK_COLLECTION => {
            ChunkPayload::Collection(wire::decode_collection(&mut r).map_err(corrupt)?)
        }
        CHUNK_COLLECTION_DELTA => {
            ChunkPayload::Delta(wire::decode_collection_delta(&mut r).map_err(corrupt)?)
        }
        CHUNK_IMAGES => {
            let start = r.u64().map_err(corrupt)?;
            let count = r.seq_len(8).map_err(corrupt)?;
            let mut images = Vec::with_capacity(count);
            for i in 0..count {
                let meta = decode_patch_metadata(&mut r).map_err(corrupt)?;
                let expected = start + i as u64;
                if u64::from(meta.id.0) != expected {
                    return Err(EarthQubeError::Persist(format!(
                        "image chunk entry {i} carries dense id {} but the range starts at \
                         {start} (chunks must be id-ordered)",
                        meta.id.0
                    )));
                }
                let code = BinaryCode::decode(&mut r).map_err(corrupt)?;
                images.push((meta, code));
            }
            ChunkPayload::Images { start, images }
        }
        CHUNK_SHARD => {
            let shard = r.u32().map_err(corrupt)?;
            let table = HashTableIndex::decode(&mut r).map_err(corrupt)?;
            ChunkPayload::Shard { shard, table }
        }
        other => {
            return Err(EarthQubeError::Persist(format!("unknown checkpoint chunk tag {other}")))
        }
    };
    if !r.is_empty() {
        return Err(EarthQubeError::Persist(format!(
            "{} trailing bytes inside a checkpoint chunk",
            r.remaining()
        )));
    }
    Ok(payload)
}

/// Writes one chunk file (framed, CRC'd, fsynced) and returns its manifest
/// entry.  The file is an orphan — invisible to recovery — until a
/// manifest naming it is published.
pub(crate) fn write_chunk_file(
    dir: &Path,
    file_name: &str,
    kind: &str,
    body: &[u8],
) -> Result<ChunkEntry, EarthQubeError> {
    fail_point!("chunk-write");
    let body_crc = crc32(body);
    let mut w = Writer::with_capacity(body.len() + 20);
    w.raw(CHUNK_MAGIC);
    w.u64(body.len() as u64);
    w.raw(body);
    w.u32(body_crc);
    let bytes = w.into_bytes();
    let path = dir.join(file_name);
    let mut file = File::create(&path).map_err(|e| io_error("creating a checkpoint chunk", e))?;
    file.write_all(&bytes).map_err(|e| io_error("writing a checkpoint chunk", e))?;
    fail_point!("chunk-sync");
    // Sync now: the manifest that will reference this chunk is itself
    // synced before its rename, so publication can never outrun content.
    file.sync_all().map_err(|e| io_error("syncing a checkpoint chunk", e))?;
    Ok(ChunkEntry {
        file: file_name.to_string(),
        kind: kind.to_string(),
        len: bytes.len() as u64,
        crc: body_crc,
    })
}

/// Reads and validates one chunk file against its manifest entry (length,
/// magic, framing, stored CRC and manifest CRC must all agree).
pub(crate) fn read_chunk_file(
    dir: &Path,
    entry: &ChunkEntry,
) -> Result<ChunkPayload, EarthQubeError> {
    let bytes = std::fs::read(dir.join(&entry.file))
        .map_err(|e| io_error(&format!("reading checkpoint chunk {}", entry.file), e))?;
    if bytes.len() as u64 != entry.len {
        return Err(EarthQubeError::Persist(format!(
            "chunk {} is {} bytes but the manifest records {}",
            entry.file,
            bytes.len(),
            entry.len
        )));
    }
    let mut r = Reader::new(&bytes);
    let magic = r.take(CHUNK_MAGIC.len()).map_err(corrupt)?;
    if magic != CHUNK_MAGIC {
        return Err(EarthQubeError::Persist(format!(
            "chunk {} is not an EarthQube checkpoint chunk (bad magic)",
            entry.file
        )));
    }
    let body_len = r.u64().map_err(corrupt)?;
    if r.remaining() < 4 || body_len != (r.remaining() - 4) as u64 {
        return Err(EarthQubeError::Persist(format!(
            "chunk {} body length {body_len} disagrees with file size",
            entry.file
        )));
    }
    let body = r.take(body_len as usize).map_err(corrupt)?;
    let stored_crc = r.u32().map_err(corrupt)?;
    if !r.is_empty() {
        return Err(EarthQubeError::Persist(format!(
            "{} trailing bytes after chunk {}",
            r.remaining(),
            entry.file
        )));
    }
    let actual_crc = crc32(body);
    if stored_crc != actual_crc || entry.crc != actual_crc {
        return Err(EarthQubeError::Persist(format!(
            "chunk {} checksum mismatch: stored {stored_crc:#010x}, manifest {:#010x}, \
             computed {actual_crc:#010x}",
            entry.file, entry.crc
        )));
    }
    let payload = decode_chunk_body(body)?;
    if payload.expected_kind() != entry.kind {
        return Err(EarthQubeError::Persist(format!(
            "chunk {} decodes as `{}` but the manifest files it under `{}`",
            entry.file,
            payload.expected_kind(),
            entry.kind
        )));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Manifest I/O
// ---------------------------------------------------------------------------

/// Reads the published manifest, or `None` when the directory holds none.
pub(crate) fn read_manifest(dir: &Path) -> Result<Option<Manifest>, EarthQubeError> {
    let bytes = match std::fs::read(dir.join(MANIFEST_FILE)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_error("reading the checkpoint manifest", e)),
    };
    decode_manifest(&bytes).map(Some).map_err(corrupt)
}

/// Publishes a manifest: writes it to a temporary file, syncs it, renames
/// it into place and syncs the directory.  The rename is the checkpoint's
/// commit point; everything before it leaves the previous manifest in
/// force, and the directory sync is part of the commit (without it the
/// rename itself could be lost to a power cut).  Returns the manifest's
/// encoded size.
pub(crate) fn write_manifest_file(dir: &Path, manifest: &Manifest) -> Result<u64, EarthQubeError> {
    fail_point!("manifest-write");
    let bytes = encode_manifest(manifest);
    let tmp = dir.join(MANIFEST_TMP_FILE);
    {
        let mut file =
            File::create(&tmp).map_err(|e| io_error("creating the manifest scratch file", e))?;
        file.write_all(&bytes).map_err(|e| io_error("writing the manifest", e))?;
        fail_point!("manifest-sync");
        file.sync_all().map_err(|e| io_error("syncing the manifest", e))?;
    }
    fail_point!("manifest-rename");
    std::fs::rename(&tmp, dir.join(MANIFEST_FILE))
        .map_err(|e| io_error("publishing the manifest", e))?;
    fail_point!("manifest-dir-sync");
    sync_dir(dir)?;
    Ok(bytes.len() as u64)
}

// ---------------------------------------------------------------------------
// Snapshot assembly (recovery)
// ---------------------------------------------------------------------------

/// Everything a checkpoint restores, decoded and validated.
pub(crate) struct SnapshotState {
    pub config: EarthQubeConfig,
    pub serve: ServeConfig,
    pub model: Milan,
    pub database: Database,
    /// Per-image metadata and binary code, in dense-id order.
    pub images: Vec<(PatchMetadata, BinaryCode)>,
    pub index: ShardedHashIndex,
}

/// Rebuilds the full serving state from a manifest's chunks.
///
/// Validation: exactly one static chunk; deltas only apply over an
/// already-restored base collection; image ranges must tile `0..n` in
/// dense-id order; every index shard `0..serve.shards` appears exactly
/// once with the model's code width; the index and image table must agree
/// on the archive size.  Chunks are processed in manifest order, which is
/// what makes "full collection replaces base and prior deltas" hold — a
/// published manifest never lists a delta ahead of its base.
pub(crate) fn read_snapshot(
    dir: &Path,
    manifest: &Manifest,
) -> Result<SnapshotState, EarthQubeError> {
    let mut static_part: Option<(EarthQubeConfig, ServeConfig, Milan)> = None;
    let mut database = Database::new();
    let mut ranges: Vec<(u64, Vec<(PatchMetadata, BinaryCode)>)> = Vec::new();
    let mut shards_seen: Vec<(u32, HashTableIndex)> = Vec::new();
    for entry in &manifest.chunks {
        match read_chunk_file(dir, entry)? {
            ChunkPayload::Static { config, serve, model } => {
                if static_part.is_some() {
                    return Err(EarthQubeError::Persist(
                        "manifest lists more than one static chunk".into(),
                    ));
                }
                static_part = Some((config, serve, model));
            }
            ChunkPayload::Collection(collection) => database.insert_collection(collection),
            ChunkPayload::Delta(delta) => database.apply_delta(delta).map_err(|e| {
                EarthQubeError::Persist(format!("collection delta does not apply: {e}"))
            })?,
            ChunkPayload::Images { start, images } => ranges.push((start, images)),
            ChunkPayload::Shard { shard, table } => shards_seen.push((shard, table)),
        }
    }
    let Some((config, serve, model)) = static_part else {
        return Err(EarthQubeError::Persist("manifest lists no static chunk".into()));
    };

    ranges.sort_by_key(|(start, _)| *start);
    let mut images: Vec<(PatchMetadata, BinaryCode)> = Vec::new();
    for (start, range) in ranges {
        if start != images.len() as u64 {
            return Err(EarthQubeError::Persist(format!(
                "image chunks do not tile: a range starts at {start} but {} images are restored",
                images.len()
            )));
        }
        images.extend(range);
    }

    let mut tables: Vec<Option<HashTableIndex>> = (0..serve.shards).map(|_| None).collect();
    for (shard, table) in shards_seen {
        let slot = tables.get_mut(shard as usize).ok_or_else(|| {
            EarthQubeError::Persist(format!(
                "manifest lists index shard {shard} but the configuration has {} shards",
                serve.shards
            ))
        })?;
        if slot.is_some() {
            return Err(EarthQubeError::Persist(format!(
                "manifest lists index shard {shard} twice"
            )));
        }
        if table.bits() != model.code_bits() {
            return Err(EarthQubeError::Persist(format!(
                "index shard {shard} stores {}-bit codes but the model emits {} bits",
                table.bits(),
                model.code_bits()
            )));
        }
        *slot = Some(table);
    }
    let mut assembled = Vec::with_capacity(tables.len());
    for (i, table) in tables.into_iter().enumerate() {
        assembled.push(table.ok_or_else(|| {
            EarthQubeError::Persist(format!("manifest is missing index shard {i}"))
        })?);
    }
    let index = ShardedHashIndex::from_shards(model.code_bits(), assembled);
    if index.len() != images.len() {
        return Err(EarthQubeError::Persist(format!(
            "index holds {} items but the checkpoint lists {} images",
            index.len(),
            images.len()
        )));
    }
    // Everything just restored is, by construction, already persisted.
    database.clear_dirty();
    Ok(SnapshotState { config, serve, model, database, images, index })
}

// ---------------------------------------------------------------------------
// Write-ahead log records
// ---------------------------------------------------------------------------

/// One decoded WAL record.
pub(crate) enum WalRecord {
    /// A patch applied by [`QueryServer::ingest`](crate::serve::QueryServer::ingest):
    /// the dense-id-assigned metadata, the binary code, and the two
    /// pre-serialized documents.
    Ingest { meta: PatchMetadata, code: BinaryCode, image_doc: Document, rendered_doc: Document },
    /// A feedback comment stored through the write path.
    Feedback { text: String, category: Option<String> },
}

/// Encodes the payload of an ingest record.
pub(crate) fn encode_ingest_record(
    meta: &PatchMetadata,
    code: &BinaryCode,
    image_doc: &Document,
    rendered_doc: &Document,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(RECORD_INGEST);
    encode_patch_metadata(meta, &mut w);
    code.encode(&mut w);
    wire::encode_document(image_doc, &mut w);
    wire::encode_document(rendered_doc, &mut w);
    w.into_bytes()
}

/// Encodes the payload of a feedback record.
pub(crate) fn encode_feedback_record(text: &str, category: Option<&str>) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(RECORD_FEEDBACK);
    w.str(text);
    match category {
        Some(c) => {
            w.u8(1);
            w.str(c);
        }
        None => w.u8(0),
    }
    w.into_bytes()
}

pub(crate) fn decode_record(payload: &[u8]) -> Result<WalRecord, WireError> {
    let mut r = Reader::new(payload);
    let record = match r.u8()? {
        RECORD_INGEST => WalRecord::Ingest {
            meta: decode_patch_metadata(&mut r)?,
            code: BinaryCode::decode(&mut r)?,
            image_doc: wire::decode_document(&mut r)?,
            rendered_doc: wire::decode_document(&mut r)?,
        },
        RECORD_FEEDBACK => {
            let text = r.str()?.to_string();
            let category = match r.u8()? {
                0 => None,
                1 => Some(r.str()?.to_string()),
                other => return Err(WireError::Corrupt(format!("invalid category flag {other}"))),
            };
            WalRecord::Feedback { text, category }
        }
        other => return Err(WireError::Corrupt(format!("unknown WAL record type {other}"))),
    };
    if !r.is_empty() {
        return Err(WireError::Corrupt(format!(
            "{} trailing bytes inside a WAL record",
            r.remaining()
        )));
    }
    Ok(record)
}

// ---------------------------------------------------------------------------
// WAL segments
// ---------------------------------------------------------------------------

/// Segment file name for the given index.
pub(crate) fn segment_file_name(index: u32) -> String {
    format!("wal.{index:04}.eqw")
}

/// Parses a segment file name back into its index (`None` for any other
/// file, including `wal.lock`).
pub(crate) fn parse_segment_file_name(name: &str) -> Option<u32> {
    let digits = name.strip_prefix("wal.")?.strip_suffix(".eqw")?;
    if digits.len() < 4 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Every segment file in the directory, sorted by index.
pub(crate) fn list_segment_files(dir: &Path) -> Result<Vec<(u32, PathBuf)>, EarthQubeError> {
    let mut segments = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| io_error("listing the persistence directory", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_error("listing the persistence directory", e))?;
        let name = entry.file_name();
        if let Some(index) = name.to_str().and_then(parse_segment_file_name) {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_by_key(|(index, _)| *index);
    Ok(segments)
}

/// The segment index a brand-new lineage must start at: one past the
/// highest index on disk, so a full checkpoint can never collide with
/// debris from previous lineages (its retired or orphaned segments all
/// sort strictly below the new `first_segment`).
pub(crate) fn next_free_segment_index(dir: &Path) -> Result<u32, EarthQubeError> {
    Ok(list_segment_files(dir)?.last().map_or(0, |(index, _)| index.saturating_add(1)))
}

/// Reads a segment's header generation without scanning its records
/// (`None` when the file is unreadable or not a segment).
fn segment_generation(path: &Path) -> Option<u32> {
    let mut buf = [0u8; SEGMENT_HEADER_LEN as usize];
    let mut file = File::open(path).ok()?;
    file.read_exact(&mut buf).ok()?;
    if &buf[..8] != SEGMENT_MAGIC {
        return None;
    }
    Some(u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]))
}

/// Picks a generation tag for a new full checkpoint: the CRC-32 of the
/// static chunk, nudged until it collides with no generation already on
/// disk (the published manifest's or any leftover segment's).  Uniqueness
/// is belt-and-braces — correctness against stale segments rests on the
/// `first_segment` index, which always sorts above every older file.
pub(crate) fn unique_generation(dir: &Path, seed: &[u8]) -> u32 {
    let mut existing: Vec<u32> = Vec::new();
    if let Ok(Some(manifest)) = read_manifest(dir) {
        existing.push(manifest.generation);
    }
    if let Ok(segments) = list_segment_files(dir) {
        for (_, path) in segments {
            if let Some(generation) = segment_generation(&path) {
                existing.push(generation);
            }
        }
    }
    let mut generation = crc32(seed);
    while existing.contains(&generation) {
        generation = generation.wrapping_add(0x9E37_79B9);
    }
    generation
}

/// The append handle of a live WAL segment.
pub(crate) struct WalWriter {
    file: File,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter").finish_non_exhaustive()
    }
}

impl WalWriter {
    /// Creates (or resets) a segment file, writing and syncing its header.
    /// Exclusivity comes from the directory lock, not per-file locks —
    /// callers hold the attachment's [`DirLock`] (or are mid-recovery,
    /// which takes it first).
    pub(crate) fn create(path: &Path, generation: u32, index: u32) -> Result<Self, EarthQubeError> {
        fail_point!("segment-precreate");
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_error("creating a WAL segment", e))?;
        file.set_len(0).map_err(|e| io_error("resetting a WAL segment", e))?;
        file.write_all(SEGMENT_MAGIC).map_err(|e| io_error("writing a segment header", e))?;
        file.write_all(&generation.to_le_bytes())
            .map_err(|e| io_error("writing a segment generation tag", e))?;
        file.write_all(&index.to_le_bytes()).map_err(|e| io_error("writing a segment index", e))?;
        fail_point!("segment-header-sync");
        file.sync_data().map_err(|e| io_error("syncing a segment header", e))?;
        Ok(Self { file })
    }

    /// Opens an existing segment for appending, first truncating it to
    /// `valid_len` bytes so a torn tail from a previous crash can never
    /// corrupt the framing of future records.
    pub(crate) fn open_truncated(path: &Path, valid_len: u64) -> Result<Self, EarthQubeError> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_error("opening a WAL segment", e))?;
        file.set_len(valid_len).map_err(|e| io_error("truncating a segment torn tail", e))?;
        file.sync_data().map_err(|e| io_error("syncing a segment truncation", e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_error("seeking the segment end", e))?;
        Ok(Self { file })
    }

    /// Appends one framed record (length, CRC-32, payload), returning the
    /// number of bytes appended so the caller can track the segment size
    /// for rotation.  The bytes are written but not yet synced — callers
    /// finish their lock section with one [`sync`](Self::sync), so a
    /// multi-patch ingest pays one disk flush, not one per patch.
    pub(crate) fn append(&mut self, payload: &[u8]) -> Result<u64, EarthQubeError> {
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(
            &u32::try_from(payload.len())
                .map_err(|_| EarthQubeError::Persist("WAL record exceeds u32::MAX bytes".into()))?
                .to_le_bytes(),
        );
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame).map_err(|e| io_error("appending a WAL record", e))?;
        Ok(frame.len() as u64)
    }

    /// Forces appended records to stable storage (`fdatasync`); `flush`
    /// alone is a no-op for [`File`] and would not survive a power loss.
    pub(crate) fn sync(&mut self) -> Result<(), EarthQubeError> {
        self.file.sync_data().map_err(|e| io_error("syncing the WAL", e))
    }
}

/// The outcome of scanning one segment file.
pub(crate) enum SegmentScan {
    /// The header was never fully written (the crash hit segment creation).
    TornHeader,
    /// The header carries a foreign generation tag: debris from an
    /// interrupted full checkpoint of another lineage.
    Stale,
    /// A live segment: its intact records, the end offset of the last
    /// intact one, and whether bytes beyond it were discarded (torn tail).
    Valid {
        /// Every fully-written record, front to back.
        records: Vec<WalRecord>,
        /// End offset of the last intact record (the torn-tail boundary).
        valid_len: u64,
        /// Whether the file carried a torn/corrupt tail past `valid_len`.
        torn: bool,
    },
}

/// Scans the record stream of a segment from `start` to the first torn or
/// corrupt frame.
fn scan_records(bytes: &[u8], start: usize) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut pos = start;
    let mut valid_end = pos as u64;
    while bytes.len() - pos >= 8 {
        // lint:allow(panic) infallible: the loop condition guarantees 8 remaining bytes
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        // lint:allow(panic) infallible: the loop condition guarantees 8 remaining bytes
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break; // torn tail: the payload was never fully written
        };
        if crc32(payload) != stored_crc {
            break; // torn or bit-flipped tail
        }
        let Ok(record) = decode_record(payload) else {
            break; // CRC collides with corruption only astronomically rarely,
                   // but a framing bug must still fail safe
        };
        records.push(record);
        pos += 8 + len;
        valid_end = pos as u64;
    }
    (records, valid_end)
}

/// Scans the record stream of a segment from `start`, returning the raw
/// record *payloads* (without the 8-byte frame) instead of decoding them —
/// the replication pull path ships these bytes verbatim so the replica's
/// mirrored WAL stays byte-identical to the primary's.  Stops at the
/// first torn/corrupt frame, at `end` (the primary's synced length — a
/// concurrent append may have written bytes past it), or once the summed
/// payload bytes exceed `max_bytes` (always returning at least one intact
/// record).  Returns the payloads and the end offset of the last one.
pub(crate) fn scan_record_payloads(
    bytes: &[u8],
    start: u64,
    end: u64,
    max_bytes: u64,
) -> (Vec<Vec<u8>>, u64) {
    let end = (end.min(bytes.len() as u64)) as usize;
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    let mut pos = start.min(end as u64) as usize;
    let mut valid_end = pos as u64;
    let mut total: u64 = 0;
    while end - pos >= 8 {
        // lint:allow(panic) infallible: the loop condition guarantees 8 remaining bytes
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        // lint:allow(panic) infallible: the loop condition guarantees 8 remaining bytes
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len).filter(|_| pos + 8 + len <= end)
        else {
            break; // the frame continues past the synced boundary
        };
        if crc32(payload) != stored_crc {
            break; // torn or bit-flipped tail
        }
        if !payloads.is_empty() && total + payload.len() as u64 > max_bytes {
            break; // batch is full; the replica pulls the rest next round
        }
        total += payload.len() as u64;
        payloads.push(payload.to_vec());
        pos += 8 + len;
        valid_end = pos as u64;
    }
    (payloads, valid_end)
}

/// Reads one segment file, validating its header against the expected
/// generation and index.  A file that is not a segment at all (bad magic)
/// or whose header index disagrees with its file name is a hard error;
/// every crash-shaped state maps to a non-`Valid` variant.
pub(crate) fn read_segment(
    path: &Path,
    generation: u32,
    expected_index: u32,
) -> Result<SegmentScan, EarthQubeError> {
    let bytes = std::fs::read(path).map_err(|e| io_error("reading a WAL segment", e))?;
    let magic_len = bytes.len().min(SEGMENT_MAGIC.len());
    if bytes[..magic_len] != SEGMENT_MAGIC[..magic_len] {
        return Err(EarthQubeError::Persist(format!(
            "{} is not an EarthQube WAL segment (bad magic)",
            path.display()
        )));
    }
    if (bytes.len() as u64) < SEGMENT_HEADER_LEN {
        return Ok(SegmentScan::TornHeader);
    }
    // lint:allow(panic) infallible: the SEGMENT_HEADER_LEN check above guarantees 16 header bytes
    let tag = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    // lint:allow(panic) infallible: the SEGMENT_HEADER_LEN check above guarantees 16 header bytes
    let header_index = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if tag != generation {
        return Ok(SegmentScan::Stale);
    }
    if header_index != expected_index {
        return Err(EarthQubeError::Persist(format!(
            "segment {} carries index {header_index} in its header",
            path.display()
        )));
    }
    let (records, valid_len) = scan_records(&bytes, SEGMENT_HEADER_LEN as usize);
    Ok(SegmentScan::Valid { records, valid_len, torn: valid_len < bytes.len() as u64 })
}

/// What recovery should do with the tail of the segment chain.
pub(crate) enum ChainTail {
    /// Reopen segment `index` for appending, truncated to `valid_len`.
    Reopen {
        /// Index of the last live segment.
        index: u32,
        /// Byte offset its torn tail (if any) is truncated to.
        valid_len: u64,
    },
    /// No live segment on disk: create a fresh one at `index`.
    Create {
        /// The index the fresh segment must carry.
        index: u32,
    },
}

/// A fully validated live segment chain.
pub(crate) struct SegmentChain {
    /// Every intact record of the chain, front to back.
    pub records: Vec<WalRecord>,
    /// How the attachment should resume appending.
    pub tail: ChainTail,
}

/// Reads and validates the live segment chain `first_segment..`.
///
/// Segments below `first_segment` are covered by the checkpoint and
/// ignored (retired-but-not-yet-deleted).  The live chain must start
/// exactly at `first_segment` and be contiguous; a hole means records
/// were lost, so it is a hard error, never a silent skip.  A torn tail is
/// only legal in the *final* live segment (earlier segments were sealed
/// and synced before rotation).  Stale-generation or torn-header segments
/// are tolerated only as a trailing run — debris of an interrupted
/// checkpoint — and are discarded; one in the middle of the chain is
/// corruption.
pub(crate) fn read_segment_chain(
    dir: &Path,
    generation: u32,
    first_segment: u32,
) -> Result<SegmentChain, EarthQubeError> {
    let candidates: Vec<(u32, PathBuf)> =
        list_segment_files(dir)?.into_iter().filter(|(index, _)| *index >= first_segment).collect();
    let mut records = Vec::new();
    let mut live: Option<(u32, u64, bool)> = None; // (index, valid_len, torn)
    let mut orphans_seen = false;
    for (index, path) in &candidates {
        match read_segment(path, generation, *index)? {
            SegmentScan::Valid { records: segment_records, valid_len, torn } => {
                if orphans_seen {
                    return Err(EarthQubeError::Persist(format!(
                        "live WAL segment {index} follows stale checkpoint debris",
                    )));
                }
                match live {
                    None if *index != first_segment => {
                        return Err(EarthQubeError::Persist(format!(
                            "stale manifest: the WAL chain should start at segment \
                             {first_segment} but the first live segment is {index}"
                        )));
                    }
                    Some((previous, _, _)) if *index != previous + 1 => {
                        return Err(EarthQubeError::Persist(format!(
                            "WAL segment chain is missing segment {} (found {index} after \
                             {previous})",
                            previous + 1
                        )));
                    }
                    Some((previous, _, true)) => {
                        return Err(EarthQubeError::Persist(format!(
                            "sealed WAL segment {previous} carries a torn record tail"
                        )));
                    }
                    _ => {}
                }
                records.extend(segment_records);
                live = Some((*index, valid_len, torn));
            }
            SegmentScan::Stale | SegmentScan::TornHeader => {
                // Debris from an interrupted checkpoint: legal only as a
                // trailing run, past every live segment.
                orphans_seen = true;
            }
        }
    }
    let tail = match live {
        Some((index, valid_len, _)) => ChainTail::Reopen { index, valid_len },
        None => ChainTail::Create { index: first_segment },
    };
    Ok(SegmentChain { records, tail })
}

// ---------------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------------

/// Deletes every WAL segment below `first_segment` — they are covered by
/// the just-published checkpoint.  Returns how many were deleted.  Runs
/// strictly after the manifest rename: a crash before it merely leaves
/// retired segments behind for the next checkpoint to sweep.
pub(crate) fn retire_segments(dir: &Path, first_segment: u32) -> Result<u64, EarthQubeError> {
    fail_point!("wal-retire");
    let mut retired = 0;
    for (index, path) in list_segment_files(dir)? {
        if index < first_segment {
            std::fs::remove_file(&path)
                .map_err(|e| io_error("retiring a covered WAL segment", e))?;
            retired += 1;
        }
    }
    if retired > 0 {
        sync_dir(dir)?;
    }
    Ok(retired)
}

/// Deletes every chunk file the published manifest does not reference —
/// leftovers of superseded or crashed checkpoints.  Returns how many were
/// deleted.
pub(crate) fn sweep_orphan_chunks(dir: &Path, manifest: &Manifest) -> Result<u64, EarthQubeError> {
    fail_point!("chunk-gc");
    let mut swept = 0;
    let entries =
        std::fs::read_dir(dir).map_err(|e| io_error("listing the persistence directory", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_error("listing the persistence directory", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.ends_with(".eqc") {
            continue;
        }
        if manifest.chunks.iter().any(|c| c.file == name) {
            continue;
        }
        std::fs::remove_file(entry.path())
            .map_err(|e| io_error("sweeping an orphan checkpoint chunk", e))?;
        swept += 1;
    }
    if swept > 0 {
        sync_dir(dir)?;
    }
    Ok(swept)
}

// ---------------------------------------------------------------------------
// Directory lock
// ---------------------------------------------------------------------------

/// The advisory exclusive lock an attached server holds on its persistence
/// directory for the lifetime of the attachment.  Dropping it (or crashing)
/// releases the lock at the OS level, so a dead server never wedges its
/// directory.
pub(crate) struct DirLock {
    _file: File,
}

impl std::fmt::Debug for DirLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirLock").finish_non_exhaustive()
    }
}

/// Takes the directory's advisory exclusive lock, failing fast if another
/// live server instance holds it.  Two writers appending framed records at
/// independent offsets would corrupt the log, and two checkpointers would
/// race the manifest — so attachment (and recovery, which leads to
/// attachment) takes this lock first.
pub(crate) fn lock_dir(dir: &Path) -> Result<DirLock, EarthQubeError> {
    let file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(false)
        .open(dir.join(LOCK_FILE))
        .map_err(|e| io_error("opening the directory lock", e))?;
    file.try_lock().map_err(|e| {
        EarthQubeError::Persist(format!(
            "the persistence directory is held by another live server instance \
             (drop it before recovering the same directory): {e}"
        ))
    })?;
    Ok(DirLock { _file: file })
}

/// Opens `dir` and syncs it, making freshly created/renamed directory
/// entries (the published manifest, new segments) durable on filesystems
/// that require an explicit directory fsync.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), EarthQubeError> {
    let handle = File::open(dir).map_err(|e| io_error("opening the persistence directory", e))?;
    handle.sync_all().map_err(|e| io_error("syncing the persistence directory", e))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scratch(PathBuf);

    impl Scratch {
        fn new(name: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("eq_persist_{name}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            Scratch(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn segment_file_names_roundtrip() {
        assert_eq!(segment_file_name(0), "wal.0000.eqw");
        assert_eq!(segment_file_name(12345), "wal.12345.eqw");
        assert_eq!(parse_segment_file_name("wal.0000.eqw"), Some(0));
        assert_eq!(parse_segment_file_name("wal.12345.eqw"), Some(12345));
        assert_eq!(parse_segment_file_name("wal.lock"), None);
        assert_eq!(parse_segment_file_name("wal.eqw"), None);
        assert_eq!(parse_segment_file_name("wal.12.eqw"), None, "indexes are zero-padded to 4");
        assert_eq!(parse_segment_file_name("wal.00a0.eqw"), None);
        assert_eq!(parse_segment_file_name("chunk-000001-000.eqc"), None);
    }

    #[test]
    fn chunk_files_roundtrip_and_reject_corruption() {
        let dir = Scratch::new("chunk_roundtrip");
        let body = encode_images_chunk(0, &[]);
        let entry =
            write_chunk_file(dir.path(), "chunk-000001-000.eqc", "images:0", &body).unwrap();
        assert_eq!(entry.file, "chunk-000001-000.eqc");
        assert_eq!(entry.kind, "images:0");
        match read_chunk_file(dir.path(), &entry).unwrap() {
            ChunkPayload::Images { start, images } => {
                assert_eq!(start, 0);
                assert!(images.is_empty());
            }
            _ => panic!("decoded the wrong payload kind"),
        }
        // A flipped byte in the body must be caught by the CRC.
        let path = dir.path().join(&entry.file);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_chunk_file(dir.path(), &entry).is_err());
        // A manifest entry whose kind disagrees with the payload is refused.
        std::fs::write(&path, {
            let body = encode_images_chunk(0, &[]);
            let mut w = Writer::new();
            w.raw(CHUNK_MAGIC);
            w.u64(body.len() as u64);
            w.raw(&body);
            w.u32(crc32(&body));
            w.into_bytes()
        })
        .unwrap();
        let mislabelled = ChunkEntry { kind: "shard:0".into(), ..entry.clone() };
        assert!(read_chunk_file(dir.path(), &mislabelled).is_err());
        // Truncations at every prefix are refused, never mis-decoded.
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(read_chunk_file(dir.path(), &entry).is_err(), "prefix {cut} accepted");
        }
    }

    #[test]
    fn manifest_publish_is_atomic_and_readable() {
        let dir = Scratch::new("manifest");
        assert!(read_manifest(dir.path()).unwrap().is_none());
        let manifest = Manifest {
            seq: 3,
            generation: 0xDEAD_BEEF,
            first_segment: 2,
            chunks: vec![ChunkEntry {
                file: "chunk-000003-000.eqc".into(),
                kind: "static".into(),
                len: 10,
                crc: 1,
            }],
        };
        let bytes = write_manifest_file(dir.path(), &manifest).unwrap();
        assert!(bytes > 0);
        let back = read_manifest(dir.path()).unwrap().unwrap();
        assert_eq!(back, manifest);
        assert!(
            !dir.path().join(MANIFEST_TMP_FILE).exists(),
            "the scratch file must be renamed away"
        );
        // Overwriting publishes the newer manifest.
        let newer = Manifest { seq: 4, ..manifest };
        write_manifest_file(dir.path(), &newer).unwrap();
        assert_eq!(read_manifest(dir.path()).unwrap().unwrap().seq, 4);
    }

    #[test]
    fn segment_scan_classifies_crash_shapes() {
        let dir = Scratch::new("segment_scan");
        let path = dir.path().join(segment_file_name(0));
        let mut writer = WalWriter::create(&path, 7, 0).unwrap();
        writer.append(&encode_feedback_record("hello", None)).unwrap();
        writer.append(&encode_feedback_record("world", Some("cat"))).unwrap();
        writer.sync().unwrap();
        drop(writer);

        let clean_len = std::fs::metadata(&path).unwrap().len();
        match read_segment(&path, 7, 0).unwrap() {
            SegmentScan::Valid { records, valid_len, torn } => {
                assert_eq!(records.len(), 2);
                assert_eq!(valid_len, clean_len);
                assert!(!torn);
            }
            _ => panic!("clean segment must scan as valid"),
        }
        // Wrong generation: stale.
        assert!(matches!(read_segment(&path, 8, 0).unwrap(), SegmentScan::Stale));
        // Header index disagreeing with the file name: hard error.
        assert!(read_segment(&path, 7, 1).is_err());
        // Torn tail: the last record is dropped, the prefix survives.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        match read_segment(&path, 7, 0).unwrap() {
            SegmentScan::Valid { records, valid_len, torn } => {
                assert_eq!(records.len(), 1);
                assert!(valid_len < clean_len);
                assert!(torn);
            }
            _ => panic!("torn segment must keep its intact prefix"),
        }
        // Torn header: shorter than the fixed header.
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(read_segment(&path, 7, 0).unwrap(), SegmentScan::TornHeader));
        // Bad magic: hard error.
        std::fs::write(&path, b"NOTAWAL!xxxxxxxx").unwrap();
        assert!(read_segment(&path, 7, 0).is_err());
    }

    #[test]
    fn segment_chain_validates_contiguity() {
        let dir = Scratch::new("chain");
        for index in 0..3u32 {
            let mut writer =
                WalWriter::create(&dir.path().join(segment_file_name(index)), 9, index).unwrap();
            writer.append(&encode_feedback_record(&format!("seg{index}"), None)).unwrap();
            writer.sync().unwrap();
        }
        let chain = read_segment_chain(dir.path(), 9, 0).unwrap();
        assert_eq!(chain.records.len(), 3);
        assert!(matches!(chain.tail, ChainTail::Reopen { index: 2, .. }));
        // Retired segments below first_segment are ignored.
        let chain = read_segment_chain(dir.path(), 9, 1).unwrap();
        assert_eq!(chain.records.len(), 2);
        // A missing middle segment is a hard error, not a silent skip.
        std::fs::remove_file(dir.path().join(segment_file_name(1))).unwrap();
        assert!(read_segment_chain(dir.path(), 9, 0).is_err());
        // ... and a chain that starts past first_segment means the manifest
        // is stale: also a hard error.
        assert!(read_segment_chain(dir.path(), 9, 1).is_err());
        // A trailing stale-generation segment is checkpoint debris: ignored.
        let chain = read_segment_chain(dir.path(), 9, 2).unwrap();
        assert_eq!(chain.records.len(), 1);
        WalWriter::create(&dir.path().join(segment_file_name(3)), 77, 3).unwrap();
        let chain = read_segment_chain(dir.path(), 9, 2).unwrap();
        assert_eq!(chain.records.len(), 1);
        assert!(matches!(chain.tail, ChainTail::Reopen { index: 2, .. }));
        // No live segment at all: recovery creates one at first_segment.
        let chain = read_segment_chain(dir.path(), 9, 4).unwrap();
        assert!(chain.records.is_empty());
        assert!(matches!(chain.tail, ChainTail::Create { index: 4 }));
    }

    #[test]
    fn retirement_deletes_only_covered_segments() {
        let dir = Scratch::new("retire");
        for index in 0..4u32 {
            WalWriter::create(&dir.path().join(segment_file_name(index)), 5, index).unwrap();
        }
        assert_eq!(retire_segments(dir.path(), 2).unwrap(), 2);
        let left: Vec<u32> =
            list_segment_files(dir.path()).unwrap().into_iter().map(|(i, _)| i).collect();
        assert_eq!(left, vec![2, 3]);
        assert_eq!(retire_segments(dir.path(), 2).unwrap(), 0, "retirement is idempotent");
        assert_eq!(next_free_segment_index(dir.path()).unwrap(), 4);
    }

    #[test]
    fn orphan_chunks_are_swept() {
        let dir = Scratch::new("sweep");
        let body = encode_images_chunk(0, &[]);
        let keep = write_chunk_file(dir.path(), "chunk-000001-000.eqc", "images:0", &body).unwrap();
        write_chunk_file(dir.path(), "chunk-000000-000.eqc", "images:0", &body).unwrap();
        let manifest = Manifest { seq: 1, generation: 1, first_segment: 0, chunks: vec![keep] };
        assert_eq!(sweep_orphan_chunks(dir.path(), &manifest).unwrap(), 1);
        assert!(dir.path().join("chunk-000001-000.eqc").exists());
        assert!(!dir.path().join("chunk-000000-000.eqc").exists());
    }

    #[test]
    fn dir_lock_is_exclusive_per_holder() {
        let dir = Scratch::new("dirlock");
        let held = lock_dir(dir.path()).unwrap();
        assert!(lock_dir(dir.path()).is_err(), "a second holder must be refused");
        drop(held);
        assert!(lock_dir(dir.path()).is_ok(), "the lock dies with its holder");
    }

    #[test]
    fn generations_avoid_everything_on_disk() {
        let dir = Scratch::new("gen");
        let seed = b"static chunk bytes";
        let first = unique_generation(dir.path(), seed);
        WalWriter::create(&dir.path().join(segment_file_name(0)), first, 0).unwrap();
        let second = unique_generation(dir.path(), seed);
        assert_ne!(first, second, "a new lineage must not reuse a generation still on disk");
    }
}
