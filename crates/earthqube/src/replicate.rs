//! Replication & failover: read replicas over the `eq_proto` wire.
//!
//! One **primary** [`QueryServer`] streams its write-ahead log to N
//! replicas over the same framed RPC transport the query tier already
//! speaks — replication needs no second port, no second protocol, and no
//! second durability format:
//!
//! * **Pull-based log shipping.**  A [`Replica`] pulls raw WAL record
//!   payloads from the primary by `(generation, segment, offset)` position
//!   ([`eq_proto::RequestBody::ReplPull`]), applies them through the same
//!   code path recovery uses, and appends them to its *own* WAL at the
//!   same positions — the mirrored log is byte-identical, so the replica's
//!   durable WAL position *is* its replication cursor and crash-resume
//!   needs no extra bookkeeping.
//! * **Snapshot seeding.**  A replica whose position the primary can no
//!   longer serve (fresh directory, retired segments, or a foreign
//!   generation after failover) ships the primary's checkpoint instead:
//!   manifest bytes plus chunk files over
//!   [`eq_proto::RequestBody::ReplChunk`], then recovers locally and
//!   resumes pulling from the manifest's first segment.
//! * **Read service, write fencing.**  Replicas serve every read
//!   (search / similar / filtered / stats) with byte-identical responses;
//!   writes are rejected with the typed
//!   [`eq_proto::ErrorCode::NotPrimary`].
//! * **Failover.**  [`Replica::promote`] cuts the applied state into a
//!   full checkpoint under a **fresh WAL generation** and only then starts
//!   accepting writes.  A resurrected old primary still carries the old
//!   generation: its pulls answer `reseed`, and its unreplicated suffix is
//!   discarded when it re-seeds — split-brain cannot merge.
//! * **Cluster client.**  [`ClusterClient`] fans reads across every
//!   endpoint round-robin (with per-endpoint failure cooldown), routes
//!   writes to the discovered primary, and retries *safe* transient
//!   failures — connection refused, [`EarthQubeError::Overloaded`],
//!   [`EarthQubeError::NotPrimary`] after a promotion — under the capped,
//!   jittered exponential backoff of [`RetryPolicy`].  A transport error
//!   after a write was sent is **not** retried: the write may have
//!   applied, and replaying it could duplicate state.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

use crate::engine::SearchResponse;
use crate::filtered::{FilteredResponse, PrefilterMode};
use crate::ingest::IngestReport;
use crate::net::EqClient;
use crate::persist;
use crate::query::ImageQuery;
use crate::serve::{QueryServer, ServerStats};
use crate::EarthQubeError;

use eq_bigearthnet::patch::Patch;

/// Bytes a replica asks for per pull (the primary additionally caps the
/// reply server-side).
const REPL_PULL_BYTES: u64 = 4 * 1024 * 1024;

/// Bytes a seeding replica asks for per chunk slice.
const SEED_SLICE_BYTES: u64 = 4 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Wire-adjacent data types
// ---------------------------------------------------------------------------

/// A server's replication role and durable WAL position — the payload of
/// [`eq_proto::RequestBody::ReplState`], and the replication handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplState {
    /// Whether the server accepts writes.
    pub primary: bool,
    /// Whether the server is attached to a persistence directory (a
    /// detached server cannot serve or follow replication).
    pub attached: bool,
    /// The WAL generation of the current lineage (0 when detached).
    pub generation: u32,
    /// The first segment the published manifest still needs.
    pub first_segment: u32,
    /// The live (currently appended-to) segment.
    pub segment: u32,
    /// The durable byte length of the live segment.
    pub offset: u64,
}

/// One replication pull's worth of WAL records — the payload of
/// [`eq_proto::ResponseBody::ReplRecords`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplBatch {
    /// The primary cannot serve the requested position; the replica must
    /// discard its lineage and re-seed from a snapshot.  All other fields
    /// except `generation` / `primary_*` are meaningless.
    pub reseed: bool,
    /// The primary's WAL generation.
    pub generation: u32,
    /// Raw record payloads, in log order (possibly empty when caught up).
    pub entries: Vec<Vec<u8>>,
    /// The batch reaches the end of a *sealed* segment: after applying,
    /// the replica must rotate to `next_segment`.
    pub rotate: bool,
    /// The segment to pull from next.
    pub next_segment: u32,
    /// The offset to pull from next.
    pub next_offset: u64,
    /// The primary's live segment at reply time (for lag accounting).
    pub primary_segment: u32,
    /// The primary's durable live-segment length at reply time.
    pub primary_offset: u64,
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Bounded retry with capped exponential backoff and deterministic jitter.
///
/// Shared by [`EqClient::connect_with_retry`], the [`Replica`] sync loop
/// and [`ClusterClient`]: attempt `n` (zero-based) sleeps a uniformly
/// jittered duration in `[d/2, d]` where `d = base_delay · 2ⁿ` capped at
/// `max_delay`, so synchronised clients spread out instead of stampeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (at least 1; 1 means no retry).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(640),
            jitter_seed: 0xEA57_0B5E,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff).
    pub fn no_retries() -> Self {
        RetryPolicy { attempts: 1, ..RetryPolicy::default() }
    }

    /// The jittered sleep before retry number `attempt` (zero-based):
    /// uniform in `[d/2, d]` with `d = base_delay · 2^attempt`, capped at
    /// `max_delay`.
    pub fn backoff_delay(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let base = self.base_delay.as_nanos().min(u128::from(u64::MAX)) as u64;
        let cap = self.max_delay.as_nanos().min(u128::from(u64::MAX)) as u64;
        let exp = base.checked_shl(attempt.min(32)).unwrap_or(u64::MAX).min(cap);
        if exp == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(rng.gen_range(exp / 2..=exp))
    }

    /// Whether `error` is transient for an *idempotent* operation:
    /// transport faults (the connection may simply be refused or broken)
    /// and typed admission-control rejections.  Writes must apply a
    /// narrower test — see the [`ClusterClient`] write path.
    pub fn is_transient(error: &EarthQubeError) -> bool {
        matches!(error, EarthQubeError::Net(_) | EarthQubeError::Overloaded(_))
    }
}

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

/// A replica's sync progress snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicaSync {
    /// WAL records applied over this replica's lifetime.
    pub records_applied: u64,
    /// Pull round trips made.
    pub batches: u64,
    /// Times the primary answered `reseed`.
    pub reseeds: u64,
    /// The lineage generation being followed.
    pub generation: u32,
    /// The replica's durable segment position.
    pub segment: u32,
    /// The replica's durable offset within `segment`.
    pub offset: u64,
    /// The primary's live segment at the last pull.
    pub primary_segment: u32,
    /// The primary's durable live-segment length at the last pull.
    pub primary_offset: u64,
}

impl ReplicaSync {
    /// Whether the replica had fully caught up with the primary's durable
    /// position as of the last pull.
    pub fn caught_up(&self) -> bool {
        self.segment == self.primary_segment && self.offset >= self.primary_offset
    }

    /// Whole segments the replica is behind the primary's live segment.
    pub fn lag_segments(&self) -> u32 {
        self.primary_segment.saturating_sub(self.segment)
    }

    /// Bytes behind within the live segment — exact only when
    /// [`lag_segments`](Self::lag_segments) is zero.
    pub fn lag_bytes(&self) -> u64 {
        if self.segment == self.primary_segment {
            self.primary_offset.saturating_sub(self.offset)
        } else {
            self.primary_offset
        }
    }
}

/// The outcome of one [`Replica::sync_once`] pull/apply round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncStatus {
    /// Applied this many records (and possibly rotated).
    Applied(u64),
    /// Nothing new: the replica is at the primary's durable position.
    CaughtUp,
    /// The primary can no longer serve this replica's position (retired
    /// segments, or a foreign generation after failover).  Re-bootstrap
    /// the replica — [`Replica::bootstrap`] re-seeds from a snapshot.
    ReseedRequired,
}

/// A read replica: a local [`QueryServer`] in replica mode plus the sync
/// cursor following one primary.
///
/// The replica's server serves reads (wrap it in a
/// [`NetServer`](crate::net::NetServer) via [`server`](Self::server)) while
/// the owner drives [`sync_once`](Self::sync_once) /
/// [`run`](Self::run) — typically from a dedicated thread.  On failover,
/// [`promote`](Self::promote) consumes the replica (ending its sync by
/// construction) and turns the server into a fenced-off new primary.
pub struct Replica {
    server: Arc<QueryServer>,
    primary_addr: String,
    replica_id: u64,
    policy: RetryPolicy,
    rng: StdRng,
    client: Option<EqClient>,
    generation: u32,
    segment: u32,
    offset: u64,
    records_applied: u64,
    batches: u64,
    reseeds: u64,
    primary_segment: u32,
    primary_offset: u64,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("primary_addr", &self.primary_addr)
            .field("replica_id", &self.replica_id)
            .field("generation", &self.generation)
            .field("segment", &self.segment)
            .field("offset", &self.offset)
            .finish_non_exhaustive()
    }
}

impl Replica {
    /// Builds a replica of the primary at `primary_addr` over the local
    /// directory `dir`: recovers locally when the directory already holds
    /// a usable lineage, seeds a snapshot from the primary otherwise (or
    /// when the primary disowns the recovered position), switches the
    /// server to replica mode and applies a first catch-up batch.
    ///
    /// `replica_id` identifies this replica to the primary's WAL-retention
    /// floor; give each replica of one primary a distinct id.
    ///
    /// # Errors
    /// Fails with the connection error when the primary stays unreachable
    /// past the retry budget, or with [`EarthQubeError::Persist`] when
    /// neither local recovery nor snapshot seeding produces a server.
    pub fn bootstrap(
        dir: &Path,
        primary_addr: &str,
        replica_id: u64,
        policy: RetryPolicy,
    ) -> Result<Self, EarthQubeError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| persist::io_error("creating the replica directory", e))?;
        let mut rng = StdRng::seed_from_u64(policy.jitter_seed ^ replica_id);
        let mut client = EqClient::connect_with_retry(primary_addr, &policy)?;
        // A usable local lineage spares the snapshot transfer entirely —
        // the common case for a replica restarting after a crash.
        let mut server = match QueryServer::recover(dir) {
            Ok(server) => server,
            Err(_) => {
                seed_dir(&mut client, dir, &policy, &mut rng)?;
                QueryServer::recover(dir)?
            }
        };
        server.set_replica_mode();
        let mut state = server.repl_state();
        let probe = client.repl_pull(
            replica_id,
            state.generation,
            state.segment,
            state.offset,
            REPL_PULL_BYTES,
        )?;
        let mut reseeds = 0;
        let (applied, batch) = if probe.reseed {
            // The recovered lineage is foreign (failover happened) or its
            // position was retired: discard it and seed afresh.  Dropping
            // the server releases the directory lock the re-recover needs.
            reseeds = 1;
            drop(server);
            seed_dir(&mut client, dir, &policy, &mut rng)?;
            server = QueryServer::recover(dir)?;
            server.set_replica_mode();
            state = server.repl_state();
            let batch = client.repl_pull(
                replica_id,
                state.generation,
                state.segment,
                state.offset,
                REPL_PULL_BYTES,
            )?;
            if batch.reseed {
                return Err(EarthQubeError::Persist(
                    "the primary disowned a snapshot it just served; is it checkpointing \
                     faster than this replica can seed?"
                        .into(),
                ));
            }
            let applied = server.apply_replicated(&batch.entries, batch.rotate)?;
            (applied, batch)
        } else {
            let applied = server.apply_replicated(&probe.entries, probe.rotate)?;
            (applied, probe)
        };
        Ok(Replica {
            server: Arc::new(server),
            primary_addr: primary_addr.to_string(),
            replica_id,
            policy,
            rng,
            client: Some(client),
            generation: batch.generation,
            segment: batch.next_segment,
            offset: batch.next_offset,
            records_applied: applied,
            batches: 1,
            reseeds,
            primary_segment: batch.primary_segment,
            primary_offset: batch.primary_offset,
        })
    }

    /// The replica's query server — share it with a serving front end
    /// (e.g. [`NetServer::bind`](crate::net::NetServer::bind)); it serves
    /// reads and rejects writes with [`EarthQubeError::NotPrimary`].
    pub fn server(&self) -> &Arc<QueryServer> {
        &self.server
    }

    /// This replica's id on the primary's retention floor.
    pub fn replica_id(&self) -> u64 {
        self.replica_id
    }

    /// The current sync progress snapshot.
    pub fn sync_state(&self) -> ReplicaSync {
        ReplicaSync {
            records_applied: self.records_applied,
            batches: self.batches,
            reseeds: self.reseeds,
            generation: self.generation,
            segment: self.segment,
            offset: self.offset,
            primary_segment: self.primary_segment,
            primary_offset: self.primary_offset,
        }
    }

    /// Runs `op` against the primary connection, reconnecting and retrying
    /// transient failures under the policy.  Pulls are idempotent, so the
    /// broad transient test applies.
    fn with_client<T>(
        &mut self,
        op: impl Fn(&mut EqClient) -> Result<T, EarthQubeError>,
    ) -> Result<T, EarthQubeError> {
        let mut last: Option<EarthQubeError> = None;
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff_delay(attempt - 1, &mut self.rng));
            }
            if self.client.is_none() {
                match EqClient::connect(self.primary_addr.as_str()) {
                    Ok(client) => self.client = Some(client),
                    Err(e) => {
                        last = Some(e);
                        continue;
                    }
                }
            }
            let Some(client) = self.client.as_mut() else { continue };
            match op(client) {
                Ok(value) => return Ok(value),
                Err(e) if RetryPolicy::is_transient(&e) => {
                    // The connection state is suspect after any transport
                    // fault; reconnect on the next attempt.
                    self.client = None;
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| EarthQubeError::Net("the retry budget is zero".into())))
    }

    /// One pull/apply round trip.
    ///
    /// # Errors
    /// Transport failures past the retry budget surface as
    /// [`EarthQubeError::Net`]; a local apply failure (WAL I/O, or records
    /// that no longer fit this replica's state) as
    /// [`EarthQubeError::Persist`] — the latter generally means the
    /// replica should be re-bootstrapped.
    pub fn sync_once(&mut self) -> Result<SyncStatus, EarthQubeError> {
        let (id, generation, segment, offset) =
            (self.replica_id, self.generation, self.segment, self.offset);
        let batch =
            self.with_client(|c| c.repl_pull(id, generation, segment, offset, REPL_PULL_BYTES))?;
        self.batches += 1;
        self.primary_segment = batch.primary_segment;
        self.primary_offset = batch.primary_offset;
        if batch.reseed {
            self.reseeds += 1;
            return Ok(SyncStatus::ReseedRequired);
        }
        if batch.entries.is_empty() && !batch.rotate {
            self.segment = batch.next_segment;
            self.offset = batch.next_offset;
            return Ok(SyncStatus::CaughtUp);
        }
        let applied = self.server.apply_replicated(&batch.entries, batch.rotate)?;
        self.records_applied += applied;
        self.segment = batch.next_segment;
        self.offset = batch.next_offset;
        Ok(SyncStatus::Applied(applied))
    }

    /// Pulls until the replica reaches the primary's durable position.
    ///
    /// # Errors
    /// Like [`sync_once`](Self::sync_once); a `reseed` verdict surfaces as
    /// [`EarthQubeError::Persist`] (re-bootstrap to recover).
    pub fn catch_up(&mut self) -> Result<ReplicaSync, EarthQubeError> {
        loop {
            match self.sync_once()? {
                SyncStatus::Applied(_) => {}
                SyncStatus::CaughtUp => return Ok(self.sync_state()),
                SyncStatus::ReseedRequired => return Err(reseed_error()),
            }
        }
    }

    /// A continuous sync loop for a dedicated thread: pulls until `stop`
    /// is set, sleeping `idle` whenever caught up, and riding out
    /// transient pull failures beyond the per-call retry budget (the
    /// primary being down is normal from a replica's point of view).
    ///
    /// # Errors
    /// Returns early on a local apply failure or a `reseed` verdict; both
    /// need the owner's intervention.
    pub fn run(
        &mut self,
        stop: &AtomicBool,
        idle: Duration,
    ) -> Result<ReplicaSync, EarthQubeError> {
        while !stop.load(Ordering::Acquire) {
            match self.sync_once() {
                Ok(SyncStatus::Applied(_)) => {}
                Ok(SyncStatus::CaughtUp) => std::thread::sleep(idle),
                Ok(SyncStatus::ReseedRequired) => return Err(reseed_error()),
                Err(e) if RetryPolicy::is_transient(&e) => std::thread::sleep(idle),
                Err(e) => return Err(e),
            }
        }
        Ok(self.sync_state())
    }

    /// Promotes this replica to primary and returns its server, now
    /// accepting writes under a fresh, fencing WAL generation (see
    /// [`QueryServer::promote`]).  Consuming the replica ends its sync by
    /// construction; call [`catch_up`](Self::catch_up) first when the old
    /// primary is still reachable, so no acknowledged write is left
    /// behind.
    ///
    /// A [`NetServer`](crate::net::NetServer) already serving this
    /// replica's reads keeps working across the promotion — the returned
    /// server is the same shared instance, now also taking writes.
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Persist`] if the promotion checkpoint
    /// fails; the server is then detached and **not** promoted.
    pub fn promote(self) -> Result<Arc<QueryServer>, EarthQubeError> {
        self.server.promote()?;
        Ok(self.server)
    }
}

fn reseed_error() -> EarthQubeError {
    EarthQubeError::Persist(
        "the primary can no longer serve this replica's position; re-bootstrap the replica \
         to seed a fresh snapshot"
            .into(),
    )
}

/// Ships the primary's current checkpoint into `dir`: every chunk file the
/// manifest references, then the manifest itself (tmp + rename, so a crash
/// mid-seed never leaves a manifest pointing at missing chunks).  Existing
/// WAL segments and the old manifest are removed first — the snapshot
/// replaces the lineage wholesale.
///
/// A checkpoint completing on the primary mid-transfer invalidates chunk
/// names we are still fetching; the primary answers those with
/// `BadRequest`, and the whole transfer restarts against the new manifest
/// (bounded by the retry budget).
fn seed_dir(
    client: &mut EqClient,
    dir: &Path,
    policy: &RetryPolicy,
    rng: &mut StdRng,
) -> Result<(), EarthQubeError> {
    let mut last: Option<EarthQubeError> = None;
    for attempt in 0..policy.attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(policy.backoff_delay(attempt - 1, rng));
        }
        match seed_dir_once(client, dir) {
            Ok(()) => return Ok(()),
            // BadRequest: a chunk vanished mid-transfer (the primary
            // checkpointed); transient faults: the transport hiccuped.
            // Both warrant a fresh attempt against the current manifest.
            Err(e)
                if matches!(e, EarthQubeError::BadRequest(_)) || RetryPolicy::is_transient(&e) =>
            {
                last = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| EarthQubeError::Net("the retry budget is zero".into())))
}

fn seed_dir_once(client: &mut EqClient, dir: &Path) -> Result<(), EarthQubeError> {
    let manifest_bytes = client.repl_manifest()?;
    let manifest = eq_wire::manifest::decode_manifest(&manifest_bytes).map_err(persist::corrupt)?;
    // Invalidate the old lineage before touching its files: removing the
    // manifest first means a crash at any later point leaves a directory
    // that simply seeds from scratch again.
    let old_manifest = dir.join(persist::MANIFEST_FILE);
    if old_manifest.exists() {
        std::fs::remove_file(&old_manifest)
            .map_err(|e| persist::io_error("removing the superseded manifest", e))?;
    }
    for (_, path) in persist::list_segment_files(dir)? {
        std::fs::remove_file(&path)
            .map_err(|e| persist::io_error("removing a superseded WAL segment", e))?;
    }
    for chunk in &manifest.chunks {
        let mut bytes = Vec::new();
        loop {
            let (total, part) =
                client.repl_chunk(&chunk.file, bytes.len() as u64, SEED_SLICE_BYTES)?;
            if part.is_empty() && (bytes.len() as u64) < total {
                return Err(EarthQubeError::Net(format!(
                    "chunk {} transfer stalled at {} of {total} bytes",
                    chunk.file,
                    bytes.len()
                )));
            }
            bytes.extend_from_slice(&part);
            if bytes.len() as u64 >= total {
                break;
            }
        }
        if bytes.len() as u64 != chunk.len {
            // The chunk changed size under us — the manifest was replaced
            // mid-transfer.  BadRequest triggers a re-fetch of the
            // manifest in the caller's retry loop.
            return Err(EarthQubeError::BadRequest(format!(
                "chunk {} is {} bytes, the manifest promised {}",
                chunk.file,
                bytes.len(),
                chunk.len
            )));
        }
        let path = dir.join(&chunk.file);
        std::fs::write(&path, &bytes)
            .map_err(|e| persist::io_error("writing a seeded chunk", e))?;
        let file = std::fs::File::open(&path)
            .map_err(|e| persist::io_error("reopening a seeded chunk to sync", e))?;
        file.sync_all().map_err(|e| persist::io_error("syncing a seeded chunk", e))?;
    }
    // Publish last: recovery trusts any directory whose manifest exists,
    // so the manifest must only appear once every chunk it references is
    // durable.  (Chunk content integrity is CRC-checked at recovery.)
    persist::write_manifest_file(dir, &manifest)?;
    persist::sweep_orphan_chunks(dir, &manifest)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Cluster client
// ---------------------------------------------------------------------------

/// How long a read endpoint sits out after a transport failure before the
/// round-robin considers it again.
const ENDPOINT_COOLDOWN: Duration = Duration::from_millis(500);

struct Endpoint {
    addr: String,
    client: Option<EqClient>,
    cooldown_until: Option<Instant>,
}

impl Endpoint {
    fn cooling(&self, now: Instant) -> bool {
        self.cooldown_until.is_some_and(|until| now < until)
    }
}

/// A cluster-aware blocking client over a primary and its replicas.
///
/// Reads fan out **round-robin** across all endpoints (replicas serve them
/// byte-identically); an endpoint that fails a transport-level call is put
/// on a short cooldown and the read retries elsewhere.  Writes go to the
/// discovered primary; [`EarthQubeError::NotPrimary`] triggers
/// re-discovery (the primary moved — a failover), connection failures and
/// [`EarthQubeError::Overloaded`] back off and retry under the
/// [`RetryPolicy`].  A transport error *after* a write was sent is
/// returned as-is: the write may have applied, and blind replay could
/// duplicate it.
pub struct ClusterClient {
    endpoints: Vec<Endpoint>,
    policy: RetryPolicy,
    rng: StdRng,
    primary: Option<usize>,
    next_read: usize,
}

impl std::fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterClient")
            .field("endpoints", &self.endpoints.iter().map(|e| e.addr.as_str()).collect::<Vec<_>>())
            .field("primary", &self.primary)
            .finish_non_exhaustive()
    }
}

impl ClusterClient {
    /// Builds a client over `addrs` (primary and replicas, in any order).
    /// Connections are opened lazily, so unreachable endpoints only cost
    /// their first read attempt.
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::BadRequest`] on an empty endpoint
    /// list.
    pub fn new<A: Into<String>>(
        addrs: impl IntoIterator<Item = A>,
        policy: RetryPolicy,
    ) -> Result<Self, EarthQubeError> {
        let endpoints: Vec<Endpoint> = addrs
            .into_iter()
            .map(|addr| Endpoint { addr: addr.into(), client: None, cooldown_until: None })
            .collect();
        if endpoints.is_empty() {
            return Err(EarthQubeError::BadRequest(
                "a cluster client needs at least one endpoint".into(),
            ));
        }
        let rng = StdRng::seed_from_u64(policy.jitter_seed);
        Ok(ClusterClient { endpoints, policy, rng, primary: None, next_read: 0 })
    }

    /// The configured endpoint addresses, in construction order.
    pub fn addresses(&self) -> Vec<String> {
        self.endpoints.iter().map(|e| e.addr.clone()).collect()
    }

    /// The address of the endpoint currently believed to be the primary,
    /// probing the cluster if none is known yet.
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Net`] when no reachable endpoint
    /// reports itself primary.
    pub fn primary_addr(&mut self) -> Result<String, EarthQubeError> {
        let i = match self.primary {
            Some(i) => i,
            None => self.discover_primary()?,
        };
        Ok(self.endpoints[i].addr.clone())
    }

    /// Probes every endpoint's replication state and records which one is
    /// primary.  Used automatically by the write path; public so a caller
    /// can force re-discovery after orchestrating a failover.
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Net`] when no reachable endpoint
    /// reports itself primary.
    pub fn discover_primary(&mut self) -> Result<usize, EarthQubeError> {
        for i in 0..self.endpoints.len() {
            if self.connect_endpoint(i).is_err() {
                continue;
            }
            let Some(client) = self.endpoints[i].client.as_mut() else { continue };
            match client.repl_state() {
                Ok(state) if state.primary => {
                    self.primary = Some(i);
                    return Ok(i);
                }
                Ok(_) => {}
                Err(_) => self.endpoints[i].client = None,
            }
        }
        self.primary = None;
        Err(EarthQubeError::Net(format!(
            "no reachable endpoint of {} reports itself primary",
            self.endpoints.len()
        )))
    }

    fn connect_endpoint(&mut self, i: usize) -> Result<(), EarthQubeError> {
        if self.endpoints[i].client.is_none() {
            let client = EqClient::connect(self.endpoints[i].addr.as_str())?;
            self.endpoints[i].client = Some(client);
        }
        Ok(())
    }

    /// The next endpoint for a read: round-robin, preferring endpoints not
    /// on cooldown; when every endpoint is cooling, takes the next one
    /// anyway (refusing to even try would turn a blip into an outage).
    fn pick_read_endpoint(&mut self) -> usize {
        let n = self.endpoints.len();
        let now = Instant::now();
        for step in 0..n {
            let i = (self.next_read + step) % n;
            if !self.endpoints[i].cooling(now) {
                self.next_read = (i + 1) % n;
                return i;
            }
        }
        let i = self.next_read % n;
        self.next_read = (i + 1) % n;
        i
    }

    /// Runs an idempotent read, fanning across endpoints with bounded
    /// retries.  Server-side answers — including typed errors like
    /// [`EarthQubeError::UnknownImage`] — return immediately; only
    /// transport faults and admission rejections rotate/retry.
    fn read_call<T>(
        &mut self,
        mut op: impl FnMut(&mut EqClient) -> Result<T, EarthQubeError>,
    ) -> Result<T, EarthQubeError> {
        let mut last: Option<EarthQubeError> = None;
        let attempts = self.policy.attempts.max(1).max(self.endpoints.len() as u32);
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff_delay(attempt - 1, &mut self.rng));
            }
            let i = self.pick_read_endpoint();
            if let Err(e) = self.connect_endpoint(i) {
                self.endpoints[i].cooldown_until = Some(Instant::now() + ENDPOINT_COOLDOWN);
                last = Some(e);
                continue;
            }
            let Some(client) = self.endpoints[i].client.as_mut() else { continue };
            match op(client) {
                Ok(value) => {
                    self.endpoints[i].cooldown_until = None;
                    return Ok(value);
                }
                Err(e @ EarthQubeError::Net(_)) => {
                    // Reads are idempotent: retrying a torn read elsewhere
                    // is always safe.
                    self.endpoints[i].client = None;
                    self.endpoints[i].cooldown_until = Some(Instant::now() + ENDPOINT_COOLDOWN);
                    last = Some(e);
                }
                Err(e @ EarthQubeError::Overloaded(_)) => {
                    // The endpoint is healthy but shedding load; rotate
                    // without benching it.
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| EarthQubeError::Net("the retry budget is zero".into())))
    }

    /// Runs a write against the primary with the *narrow* retry rule:
    /// connection establishment failures, [`EarthQubeError::Overloaded`]
    /// and [`EarthQubeError::NotPrimary`] (all guaranteed not to have
    /// executed) retry; a transport error after the request was sent does
    /// not — the write may have applied.
    fn write_call<T>(
        &mut self,
        mut op: impl FnMut(&mut EqClient) -> Result<T, EarthQubeError>,
    ) -> Result<T, EarthQubeError> {
        let mut last: Option<EarthQubeError> = None;
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff_delay(attempt - 1, &mut self.rng));
            }
            let i = match self.primary {
                Some(i) => i,
                None => match self.discover_primary() {
                    Ok(i) => i,
                    Err(e) => {
                        last = Some(e);
                        continue;
                    }
                },
            };
            if let Err(e) = self.connect_endpoint(i) {
                // The believed primary is unreachable — it may have died;
                // re-discover on the next attempt.
                self.primary = None;
                last = Some(e);
                continue;
            }
            let Some(client) = self.endpoints[i].client.as_mut() else { continue };
            match op(client) {
                Ok(value) => return Ok(value),
                Err(e @ EarthQubeError::NotPrimary(_)) => {
                    // The primary moved (failover); rediscover and retry —
                    // the write was typed-rejected, never executed.
                    self.primary = None;
                    last = Some(e);
                }
                Err(e @ EarthQubeError::Overloaded(_)) => {
                    last = Some(e);
                }
                Err(e @ EarthQubeError::Net(_)) => {
                    // Ambiguous: the request may have been executed before
                    // the transport died.  Surface it; the caller owns the
                    // dedup decision.
                    self.endpoints[i].client = None;
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| EarthQubeError::Net("the retry budget is zero".into())))
    }

    /// Cluster counterpart of [`EqClient::search`] (read fan-out).
    ///
    /// # Errors
    /// The server-side error, or [`EarthQubeError::Net`] past the budget.
    pub fn search(&mut self, query: &ImageQuery) -> Result<SearchResponse, EarthQubeError> {
        self.read_call(|c| c.search(query))
    }

    /// Cluster counterpart of [`EqClient::similar_to`] (read fan-out).
    ///
    /// # Errors
    /// The server-side error, or [`EarthQubeError::Net`] past the budget.
    pub fn similar_to(&mut self, name: &str, k: usize) -> Result<SearchResponse, EarthQubeError> {
        self.read_call(|c| c.similar_to(name, k))
    }

    /// Cluster counterpart of [`EqClient::similar_to_filtered`] (read
    /// fan-out).
    ///
    /// # Errors
    /// The server-side error, or [`EarthQubeError::Net`] past the budget.
    pub fn similar_to_filtered(
        &mut self,
        name: &str,
        k: usize,
        query: &ImageQuery,
        mode: PrefilterMode,
    ) -> Result<FilteredResponse, EarthQubeError> {
        self.read_call(|c| c.similar_to_filtered(name, k, query, mode))
    }

    /// Cluster counterpart of [`EqClient::similar_within_filtered`] (read
    /// fan-out).
    ///
    /// # Errors
    /// The server-side error, or [`EarthQubeError::Net`] past the budget.
    pub fn similar_within_filtered(
        &mut self,
        name: &str,
        radius: u32,
        query: &ImageQuery,
        mode: PrefilterMode,
    ) -> Result<FilteredResponse, EarthQubeError> {
        self.read_call(|c| c.similar_within_filtered(name, radius, query, mode))
    }

    /// Cluster counterpart of [`EqClient::stats`] (read fan-out — note the
    /// counters are the *answering endpoint's*, not cluster-wide).
    ///
    /// # Errors
    /// The server-side error, or [`EarthQubeError::Net`] past the budget.
    pub fn stats(&mut self) -> Result<ServerStats, EarthQubeError> {
        self.read_call(|c| c.stats())
    }

    /// Cluster counterpart of [`EqClient::ingest`]: routed to the primary
    /// with failover-aware retry.
    ///
    /// # Errors
    /// The server-side error; [`EarthQubeError::Net`] when the primary
    /// stays undiscoverable past the budget, or when the transport failed
    /// after the request was sent (the write may have applied — do not
    /// blindly replay).
    pub fn ingest(&mut self, patches: &[Patch]) -> Result<IngestReport, EarthQubeError> {
        self.write_call(|c| c.ingest(patches))
    }

    /// Cluster counterpart of [`EqClient::submit_feedback`]: routed to the
    /// primary with failover-aware retry.
    ///
    /// # Errors
    /// As for [`ingest`](Self::ingest).
    pub fn submit_feedback(
        &mut self,
        text: &str,
        category: Option<&str>,
    ) -> Result<i64, EarthQubeError> {
        self.write_call(|c| c.submit_feedback(text, category))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter_seed: 7,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut prev_cap = Duration::ZERO;
        for attempt in 0..8 {
            let d = policy.backoff_delay(attempt, &mut rng);
            let cap = Duration::from_millis(100).min(Duration::from_millis(10 * (1 << attempt)));
            assert!(d <= cap, "attempt {attempt}: {d:?} over cap {cap:?}");
            assert!(d >= cap / 2, "attempt {attempt}: {d:?} under half-cap {cap:?}");
            assert!(cap >= prev_cap);
            prev_cap = cap;
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for attempt in 0..6 {
            assert_eq!(
                policy.backoff_delay(attempt, &mut a),
                policy.backoff_delay(attempt, &mut b)
            );
        }
    }

    #[test]
    fn transient_classification() {
        assert!(RetryPolicy::is_transient(&EarthQubeError::Net("refused".into())));
        assert!(RetryPolicy::is_transient(&EarthQubeError::Overloaded("full".into())));
        assert!(!RetryPolicy::is_transient(&EarthQubeError::NotPrimary("moved".into())));
        assert!(!RetryPolicy::is_transient(&EarthQubeError::BadRequest("bad".into())));
        assert!(!RetryPolicy::is_transient(&EarthQubeError::UnknownImage("x".into())));
    }

    #[test]
    fn replica_sync_lag_accounting() {
        let caught_up = ReplicaSync {
            segment: 3,
            offset: 400,
            primary_segment: 3,
            primary_offset: 400,
            ..ReplicaSync::default()
        };
        assert!(caught_up.caught_up());
        assert_eq!(caught_up.lag_segments(), 0);
        assert_eq!(caught_up.lag_bytes(), 0);

        let behind = ReplicaSync {
            segment: 2,
            offset: 900,
            primary_segment: 3,
            primary_offset: 250,
            ..ReplicaSync::default()
        };
        assert!(!behind.caught_up());
        assert_eq!(behind.lag_segments(), 1);
        assert_eq!(behind.lag_bytes(), 250);

        let same_segment = ReplicaSync {
            segment: 3,
            offset: 100,
            primary_segment: 3,
            primary_offset: 250,
            ..ReplicaSync::default()
        };
        assert_eq!(same_segment.lag_bytes(), 150);
    }

    #[test]
    fn cluster_client_rejects_empty_endpoint_list() {
        let err = ClusterClient::new(Vec::<String>::new(), RetryPolicy::default());
        assert!(matches!(err, Err(EarthQubeError::BadRequest(_))));
    }

    #[test]
    fn no_retries_policy_is_single_attempt() {
        assert_eq!(RetryPolicy::no_retries().attempts, 1);
    }
}
