//! Concurrent query serving: the [`QueryServer`] wraps the EarthQube read
//! path in shared state so many analyst sessions can search the archive in
//! parallel while ingest traffic proceeds on an isolated write path.
//!
//! The paper positions EarthQube as the query back-end of AgoraEO, serving
//! interactive CBIR and metadata search to many users at once; the
//! [`EarthQube`] facade by itself executes one query at a
//! time.  This module adds the serving tier:
//!
//! * **Sharded CBIR index** — the Hamming codes live in an
//!   [`eq_hashindex::ShardedHashIndex`]: N independently-locked shards with
//!   fan-out/merge search, so similarity queries from different workers
//!   never contend on a single index lock and an ingest write only blocks
//!   the one shard it touches.
//! * **Catalog lock** — the document store, the metadata table and the
//!   name→code map sit behind one `parking_lot::RwLock`.  Queries take the
//!   read side (shared, concurrent); ingest and feedback take the write
//!   side.  Holding the read lock across a query gives every query a
//!   consistent snapshot even while ingest is running.
//! * **Result cache** — a bounded LRU keyed by a fingerprint of the query
//!   (the full query is stored and compared, so a fingerprint collision is
//!   a miss, never a wrong answer).  The cache is invalidated wholesale on
//!   every ingest, inside the catalog write section, so readers can never
//!   re-insert a stale entry.
//! * **Worker pool** — [`QueryServer::run_workload`] fans a batch of
//!   [`QueryRequest`]s over K scoped threads (`std::thread::scope`); all
//!   query entry points take `&self`, so workers share the server by plain
//!   reference.
//! * **Pooled search scratch** — every k-NN query checks a
//!   [`SearchScratch`] (bounded top-k heap + neighbour buffer) out of a
//!   per-server pool and returns it afterwards, so no full candidate list
//!   is ever materialised or sorted and steady-state serving does zero
//!   search-path allocation ([`prewarm_scratch`](QueryServer::prewarm_scratch)
//!   sizes the pool to the worker count; `NetServer` does this on bind).
//!
//! Determinism: a workload executed through the server returns exactly the
//! same [`SearchResponse`]s as the sequential engine, regardless of worker
//! count (the sharded index merge is order-insensitive and the catalog
//! snapshot is identical) — the umbrella crate's `concurrent_serving` test
//! asserts byte-identical result panels.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use eq_agora::AssetRegistry;
use eq_bigearthnet::patch::{Patch, PatchId, PatchMetadata};
use eq_bigearthnet::Archive;
use eq_docstore::{Collection, CollectionDelta, Database, Document};
use eq_hashindex::{BinaryCode, HashTableIndex, Neighbor, SearchScratch, ShardedHashIndex};
use eq_milan::Milan;
use eq_wire::manifest::{ChunkEntry, Manifest};
use parking_lot::{Mutex, RwLock};

use crate::engine::{EarthQube, EarthQubeConfig, SearchResponse};
use crate::feedback::{FeedbackEntry, FeedbackService};
use crate::filtered::{matching_item_mask, FilteredResponse, PrefilterMode};
use crate::ingest::{insert_patch_docs, prepare_patch_docs, IngestReport};
use crate::persist::{self, ChainTail, DirLock, WalRecord, WalWriter};
use crate::query::ImageQuery;
use crate::replicate::{ReplBatch, ReplState};
use crate::schema::collections;
use crate::EarthQubeError;

/// Rotate the live WAL segment once it outgrows this many bytes
/// (overridable per server with [`QueryServer::set_segment_limit`]).
const DEFAULT_SEGMENT_LIMIT: u64 = 4 * 1024 * 1024;

/// Rewrite a collection in full once this many delta chunks have stacked
/// on top of its base — recovery cost stays bounded and superseded deltas
/// get swept.
const DELTA_COMPACT_THRESHOLD: usize = 8;

/// Server-side cap on the summed record-payload bytes of one replication
/// pull batch, regardless of what the replica asks for — comfortably
/// under `eq_proto::MAX_FRAME_LEN` with framing overhead to spare.
const REPL_MAX_BATCH_BYTES: u64 = 8 * 1024 * 1024;

/// Server-side cap on one chunk-fetch slice, same rationale.
const REPL_MAX_SLICE_BYTES: u64 = 8 * 1024 * 1024;

/// How long a replica's last pull keeps its WAL segments from being
/// retired by checkpoints.  A replica silent for longer is presumed dead;
/// if it comes back it re-seeds from the snapshot instead.
const REPL_RETENTION_TTL: Duration = Duration::from_secs(120);

/// A pulling replica's last-acknowledged segment, with the time it was
/// seen — the retention floor prunes entries older than
/// [`REPL_RETENTION_TTL`].
struct ReplicaMark {
    segment: u32,
    seen: Instant,
}

/// Configuration of the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of independently-locked shards of the CBIR index.
    pub shards: usize,
    /// Maximum number of cached query results; `0` disables the cache.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { shards: 8, cache_capacity: 256 }
    }
}

impl ServeConfig {
    /// A configuration with the result cache disabled (used by benchmarks
    /// that measure raw query throughput).
    pub fn uncached(shards: usize) -> Self {
        Self { shards, cache_capacity: 0 }
    }
}

/// One request of a batched query workload.
#[derive(Debug, Clone)]
pub enum QueryRequest {
    /// A query-panel metadata search (§3.1).
    Metadata(ImageQuery),
    /// "Retrieve similar images" for an archive image (§3.3).
    SimilarTo {
        /// The query image's patch name.
        name: String,
        /// Number of neighbours to retrieve.
        k: usize,
    },
    /// Query-by-new-example: an external patch encoded on the fly (§4).
    NewExample {
        /// The uploaded patch.
        patch: Box<Patch>,
        /// Number of neighbours to retrieve.
        k: usize,
    },
}

/// A point-in-time snapshot of the serving counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Total queries attempted (cache hits and failed queries included).
    pub queries_served: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that missed the cache and were computed.
    pub cache_misses: u64,
    /// Entries currently held by the result cache.
    pub cache_entries: usize,
    /// Images currently indexed (initial build plus live ingest).
    pub archive_size: usize,
    /// Images appended through [`QueryServer::ingest`].
    pub ingested_images: u64,
    /// Items per CBIR index shard, in shard order.
    pub shard_occupancy: Vec<usize>,
}

impl ServerStats {
    /// Fraction of queries answered from the cache (`0.0` when no query
    /// has been served yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Renders the snapshot as a short text report (for the examples).
    pub fn render(&self) -> String {
        format!(
            "{} queries served ({} cache hits, {} misses, hit rate {:.0}%)\n\
             {} images indexed ({} ingested live), {} cached results\n\
             shard occupancy: {:?}\n",
            self.queries_served,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.archive_size,
            self.ingested_images,
            self.cache_entries,
            self.shard_occupancy,
        )
    }
}

/// Cache key: the full request identity, stored alongside each entry and
/// compared on lookup so a 64-bit fingerprint collision degrades to a
/// cache miss instead of returning the wrong result.
#[derive(Debug, Clone, PartialEq)]
enum CacheKey {
    Metadata(ImageQuery),
    Similar(String, usize),
    ByCode(BinaryCode, usize),
    /// Filtered k-NN: the query-panel filter (as the full `ImageQuery`)
    /// and the prefilter mode are part of the request identity — two
    /// modes may resolve the same mask through different plans, and the
    /// cached response carries that plan.
    SimilarFiltered {
        name: String,
        k: usize,
        query: ImageQuery,
        mode: PrefilterMode,
    },
    /// Filtered radius search; same identity rules as `SimilarFiltered`.
    WithinFiltered {
        name: String,
        radius: u32,
        query: ImageQuery,
        mode: PrefilterMode,
    },
}

fn fingerprint(key: &CacheKey) -> u64 {
    let mut h = DefaultHasher::new();
    match key {
        CacheKey::Metadata(query) => {
            0u8.hash(&mut h);
            // `ImageQuery` contains floats (shapes), so it cannot derive
            // `Hash`; its `Debug` rendering round-trips every float exactly
            // and is therefore a faithful fingerprint source.
            format!("{query:?}").hash(&mut h);
        }
        CacheKey::Similar(name, k) => {
            1u8.hash(&mut h);
            name.hash(&mut h);
            k.hash(&mut h);
        }
        CacheKey::ByCode(code, k) => {
            2u8.hash(&mut h);
            code.hash(&mut h);
            k.hash(&mut h);
        }
        CacheKey::SimilarFiltered { name, k, query, mode } => {
            3u8.hash(&mut h);
            name.hash(&mut h);
            k.hash(&mut h);
            format!("{query:?}").hash(&mut h);
            (*mode as u8).hash(&mut h);
        }
        CacheKey::WithinFiltered { name, radius, query, mode } => {
            4u8.hash(&mut h);
            name.hash(&mut h);
            radius.hash(&mut h);
            format!("{query:?}").hash(&mut h);
            (*mode as u8).hash(&mut h);
        }
    }
    h.finish()
}

/// What the cache stores: plain responses for the unfiltered paths, the
/// full response-plus-plan for filtered queries (the plan is part of the
/// response surface — `FilteredResponse` reports which strategy resolved
/// the mask).  The `CacheKey` kinds map one-to-one onto the variants, so
/// a lookup through the right key can only see its own shape.
#[derive(Clone)]
enum CachedResponse {
    Plain(SearchResponse),
    Filtered(FilteredResponse),
}

struct CacheEntry {
    key: CacheKey,
    last_used: u64,
    response: CachedResponse,
}

/// One independently-locked slice of the result cache: a bounded LRU map
/// from query fingerprint to cached response.
struct CacheShard {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, CacheEntry>,
}

impl CacheShard {
    fn new(capacity: usize) -> Self {
        Self { capacity, tick: 0, entries: HashMap::with_capacity(capacity.min(1024)) }
    }

    fn get(&mut self, fp: u64, key: &CacheKey) -> Option<CachedResponse> {
        self.tick += 1;
        let entry = self.entries.get_mut(&fp)?;
        if entry.key != *key {
            return None;
        }
        entry.last_used = self.tick;
        Some(entry.response.clone())
    }

    fn put(&mut self, fp: u64, key: CacheKey, response: CachedResponse) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&fp) && self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(fp, CacheEntry { key, last_used: self.tick, response });
    }
}

/// The bounded LRU result cache, split into fingerprint-routed shards so a
/// cache hit (which must touch the LRU recency stamp, i.e. write) only
/// locks one slice of the cache instead of serialising every worker on a
/// single lock.  Small caches stay single-sharded so eviction remains
/// strict global LRU.
struct ResultCache {
    shards: Vec<RwLock<CacheShard>>,
}

impl ResultCache {
    /// Capacities at or above this are split over eight shards.
    const SHARD_THRESHOLD: usize = 64;

    fn new(capacity: usize) -> Self {
        let n = if capacity >= Self::SHARD_THRESHOLD { 8 } else { 1 };
        let base = capacity / n;
        let remainder = capacity % n;
        Self {
            shards: (0..n)
                .map(|i| {
                    RwLock::with_name(
                        CacheShard::new(base + usize::from(i < remainder)),
                        "cache-shard",
                    )
                })
                .collect(),
        }
    }

    fn shard(&self, fp: u64) -> &RwLock<CacheShard> {
        &self.shards[(fp % self.shards.len() as u64) as usize]
    }

    fn get(&self, fp: u64, key: &CacheKey) -> Option<CachedResponse> {
        self.shard(fp).write().get(fp, key)
    }

    fn put(&self, fp: u64, key: CacheKey, response: CachedResponse) {
        self.shard(fp).write().put(fp, key, response);
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.write().entries.clear();
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().entries.len()).sum()
    }
}

/// The query counters, kept together behind one lock so that
/// [`QueryServer::stats`] can snapshot all three in a single pass.  Each
/// query updates them exactly once, *at its outcome*, so at every instant
/// `queries_served == cache_hits + cache_misses + failed queries` — a
/// snapshot can never observe a query that was counted as served but not
/// yet classified.  (An earlier revision kept three independent atomics
/// bumped at different points of the query; a mid-workload snapshot could
/// then see a hit rate computed from counters belonging to different sets
/// of queries.)
#[derive(Debug, Default)]
struct QueryCounters {
    served: u64,
    hits: u64,
    misses: u64,
}

/// Per-query scratch state checked out of the server's pool for the
/// duration of one CBIR query: the bounded top-k selection heap plus the
/// (small, ≤ k+1) neighbour buffer the post-filter writes into.  Both are
/// reused across queries, so a steady-state k-NN query performs **zero
/// search-path allocation** — the selection is a size-k heap, never a full
/// candidate list, and the buffers come back warm from the pool.
#[derive(Default)]
struct QueryScratch {
    search: SearchScratch,
    neighbors: Vec<Neighbor>,
}

/// Everything the write path mutates, behind one lock so every query sees
/// a consistent snapshot of store, metadata and code table.
struct Catalog {
    database: Database,
    metadata: Vec<PatchMetadata>,
    name_to_code: HashMap<String, BinaryCode>,
    id_to_name: Vec<String>,
    feedback: FeedbackService,
}

impl Catalog {
    /// The query-panel search — delegates to the same function as
    /// [`EarthQube::search`], which is what keeps the two byte-identical.
    fn metadata_search(
        &self,
        query: &ImageQuery,
        page_size: usize,
    ) -> Result<SearchResponse, EarthQubeError> {
        crate::engine::metadata_search(&self.database, query, page_size)
    }

    /// Result-panel/statistics assembly for a list of index hits —
    /// delegates to the same function as the sequential CBIR response path.
    fn response_from_neighbors(
        &self,
        neighbors: &[Neighbor],
        page_size: usize,
    ) -> Result<SearchResponse, EarthQubeError> {
        let ranked: Vec<(usize, u32)> =
            neighbors.iter().map(|n| (n.id as usize, n.distance)).collect();
        crate::engine::response_from_ranked(&self.metadata, &ranked, page_size)
    }
}

/// The concurrent EarthQube serving layer.
///
/// Every query entry point takes `&self`, so a server shared by reference
/// (or inside an `Arc`) serves many threads at once; [`ingest`] and
/// [`submit_feedback`] are the write path and take the catalog write lock
/// internally — they also only need `&self`.
///
/// [`ingest`]: Self::ingest
/// [`submit_feedback`]: Self::submit_feedback
pub struct QueryServer {
    config: EarthQubeConfig,
    serve: ServeConfig,
    model: Milan,
    index: ShardedHashIndex,
    catalog: RwLock<Catalog>,
    cache: ResultCache,
    registry: AssetRegistry,
    counters: Mutex<QueryCounters>,
    ingested_images: AtomicU64,
    /// Pool of per-query scratch state.  A query pops a scratch (or makes
    /// one if the pool momentarily runs dry), searches without holding the
    /// pool lock, and returns it — so concurrent workers never share a
    /// scratch and steady-state serving stops allocating once the pool has
    /// one warm scratch per worker (see
    /// [`prewarm_scratch`](Self::prewarm_scratch)).
    scratch_pool: Mutex<Vec<QueryScratch>>,
    /// The persistence attachment (manifest state + live WAL segment),
    /// installed by [`checkpoint`](Self::checkpoint) / [`recover`](Self::recover);
    /// `None` for a purely in-memory server.
    /// Lock order: always after the catalog write lock, never before.
    wal: Mutex<Option<Attachment>>,
    /// Serialises whole checkpoints (manual calls and the background
    /// checkpointer) without blocking queries or ingest: the catalog/wal
    /// locks are only held for the brief state cut, not for the chunk I/O.
    /// Lock order: before the catalog lock, never inside it.
    ckpt_serial: Mutex<()>,
    /// The background checkpointer thread, if one is running.  Never held
    /// while taking any other server lock.
    checkpointer: Mutex<Option<CheckpointerHandle>>,
    /// WAL segment rotation threshold in bytes (see
    /// [`set_segment_limit`](Self::set_segment_limit)).
    segment_limit: AtomicU64,
    ckpt_passes: AtomicU64,
    ckpt_completed: AtomicU64,
    ckpt_skipped: AtomicU64,
    ckpt_failures: AtomicU64,
    /// `true` while this server accepts writes.  Cleared by
    /// [`set_replica_mode`](Self::set_replica_mode), restored by
    /// [`promote`](Self::promote); the network tier rejects ingest and
    /// feedback with [`EarthQubeError::NotPrimary`] while it is `false`,
    /// so every durable record originates on exactly one primary.
    primary: AtomicBool,
    /// Segments recently acknowledged by pulling replicas, keyed by
    /// replica id.  Checkpoints clamp WAL segment retirement to the
    /// minimum live mark so a briefly-lagging replica catches up from
    /// retained segments instead of re-seeding.
    /// Lock order: after `ckpt-serial` (the checkpoint paths consult the
    /// floor); never held while taking any other server lock.
    repl_floor: Mutex<HashMap<u64, ReplicaMark>>,
}

/// The server's live connection to a persistence directory: the exclusive
/// directory lock, the manifest bookkeeping needed to cut the *next*
/// incremental checkpoint, and the open tail segment of the WAL.
struct Attachment {
    dir: PathBuf,
    /// Sequence number of the manifest currently published in `dir`.
    seq: u64,
    /// Generation tag stamped into every segment of this lineage.
    generation: u32,
    /// First WAL segment the published manifest still needs on recovery.
    first_segment: u32,
    /// Index of the live (tail) segment `writer` appends to.
    segment_index: u32,
    /// Current byte length of the live segment (header included).
    segment_bytes: u64,
    writer: WalWriter,
    /// The chunk list of the published manifest — the base the next
    /// incremental manifest is derived from.
    chunks: Vec<ChunkEntry>,
    /// How many images (dense-id prefix) the published chunks cover; the
    /// next incremental checkpoint persists the tail from here.
    persisted_images: usize,
    _lock: DirLock,
}

impl Attachment {
    /// Seals the live segment and opens the next one.  The caller must
    /// have synced the live segment first: rotation only ever happens at a
    /// batch boundary, so sealed segments are always clean-ended and a
    /// torn tail can only exist in the final segment of the chain.
    fn rotate(&mut self) -> Result<(), EarthQubeError> {
        let next = self.segment_index + 1;
        let writer = WalWriter::create(
            &self.dir.join(persist::segment_file_name(next)),
            self.generation,
            next,
        )?;
        self.writer = writer;
        self.segment_index = next;
        self.segment_bytes = persist::SEGMENT_HEADER_LEN;
        Ok(())
    }
}

/// What kind of work a [`QueryServer::checkpoint`] call ended up doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// A full snapshot: every collection, every image, every index shard.
    Full,
    /// Only the state dirtied since the previous checkpoint was written.
    Incremental,
    /// Nothing was dirty; no bytes were written.
    Skipped,
}

/// What a [`QueryServer::checkpoint`] call wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Which checkpoint path ran.
    pub kind: CheckpointKind,
    /// Bytes written to chunk files plus the manifest.
    pub bytes_written: u64,
    /// Number of chunk files written.
    pub chunks_written: u64,
    /// WAL segments retired (deleted) because the new manifest no longer
    /// needs them.
    pub segments_retired: u64,
}

/// Counters of the background checkpointer (separate from [`ServerStats`],
/// whose shape is frozen into the wire protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointerStats {
    /// Wake-ups of the background thread.
    pub passes: u64,
    /// Passes that wrote a checkpoint (full or incremental).
    pub completed: u64,
    /// Passes that found nothing dirty (or no attachment) and skipped.
    pub skipped: u64,
    /// Passes whose checkpoint attempt failed.
    pub failures: u64,
}

struct CheckpointerHandle {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

/// Collects chunk files for one checkpoint: assigns ordinals, sums bytes.
struct ChunkSink<'a> {
    dir: &'a Path,
    seq: u64,
    ordinal: u32,
    bytes_written: u64,
    chunks: Vec<ChunkEntry>,
}

impl ChunkSink<'_> {
    fn push(&mut self, kind: &str, body: &[u8]) -> Result<(), EarthQubeError> {
        let name = persist::chunk_file_name(self.seq, self.ordinal);
        let entry = persist::write_chunk_file(self.dir, &name, kind, body)?;
        self.ordinal += 1;
        self.bytes_written += entry.len;
        self.chunks.push(entry);
        Ok(())
    }
}

/// How one dirty collection is persisted by an incremental checkpoint.
enum CollectionPlan {
    /// Rewrite the whole collection (schema changed, or too many stacked
    /// deltas — see [`DELTA_COMPACT_THRESHOLD`]).
    Full(Box<Collection>),
    /// Append a delta chunk over the existing base.
    Delta(CollectionDelta),
}

/// Everything an incremental checkpoint clones out of the brief locked
/// cut, so chunk encoding and I/O can run without any server lock held.
struct IncrementalCut {
    seq: u64,
    generation: u32,
    first_segment: u32,
    base_chunks: Vec<ChunkEntry>,
    collections: Vec<(String, CollectionPlan)>,
    drained: Vec<(String, eq_docstore::DirtyLog)>,
    shard_ids: Vec<usize>,
    shards: Vec<(u32, HashTableIndex)>,
    images_start: usize,
    images: Vec<(PatchMetadata, BinaryCode)>,
}

impl std::fmt::Debug for QueryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryServer")
            .field("serve", &self.serve)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl QueryServer {
    /// Builds the sequential engine over the archive, then converts it into
    /// a server with [`from_engine`](Self::from_engine).
    ///
    /// # Errors
    /// Propagates engine build errors.
    pub fn build(
        archive: &Archive,
        config: EarthQubeConfig,
        serve: ServeConfig,
    ) -> Result<Self, EarthQubeError> {
        Self::from_engine(EarthQube::build(archive, config)?, serve)
    }

    /// Converts a built [`EarthQube`] engine into a concurrent server,
    /// re-indexing its CBIR codes into the sharded index.  The conversion
    /// preserves the trained model and every code byte-for-byte, so server
    /// responses are identical to the consumed engine's.
    ///
    /// # Errors
    /// Fails if the engine has no CBIR service.
    pub fn from_engine(engine: EarthQube, serve: ServeConfig) -> Result<Self, EarthQubeError> {
        let EarthQube { config, database, metadata, cbir, feedback, registry } = engine;
        let cbir = cbir.ok_or(EarthQubeError::CbirNotReady)?;
        let (model, name_to_code, id_to_name) = cbir.into_parts();
        // Normalize the configuration once, so the value the server reports,
        // uses and *persists* is the value in effect (a raw `shards: 0`
        // would checkpoint fine but be rejected as corrupt on recovery).
        let serve = ServeConfig { shards: serve.shards.max(1), ..serve };
        let index = ShardedHashIndex::new(model.code_bits(), serve.shards);
        for (id, name) in id_to_name.iter().enumerate() {
            let code = name_to_code
                .get(name)
                .cloned()
                .ok_or_else(|| EarthQubeError::UnknownImage(name.clone()))?;
            index.insert(id as u64, code);
        }
        Ok(Self {
            config,
            serve,
            model,
            index,
            catalog: RwLock::with_name(
                Catalog { database, metadata, name_to_code, id_to_name, feedback },
                "catalog",
            ),
            cache: ResultCache::new(serve.cache_capacity),
            registry,
            counters: Mutex::with_name(QueryCounters::default(), "counters"),
            ingested_images: AtomicU64::new(0),
            scratch_pool: Mutex::with_name(Vec::new(), "scratch_pool"),
            wal: Mutex::with_name(None, "wal"),
            ckpt_serial: Mutex::with_name((), "ckpt-serial"),
            checkpointer: Mutex::with_name(None, "checkpointer"),
            segment_limit: AtomicU64::new(DEFAULT_SEGMENT_LIMIT),
            ckpt_passes: AtomicU64::new(0),
            ckpt_completed: AtomicU64::new(0),
            ckpt_skipped: AtomicU64::new(0),
            ckpt_failures: AtomicU64::new(0),
            primary: AtomicBool::new(true),
            repl_floor: Mutex::with_name(HashMap::new(), "repl-floor"),
        })
    }

    /// The engine configuration the server was built with.
    pub fn config(&self) -> &EarthQubeConfig {
        &self.config
    }

    /// The serving-layer configuration.
    pub fn serve_config(&self) -> ServeConfig {
        self.serve
    }

    /// The AgoraEO asset registry the consumed engine registered itself in
    /// (carried over by [`from_engine`](Self::from_engine)).
    pub fn registry(&self) -> &AssetRegistry {
        &self.registry
    }

    /// Number of images currently indexed.
    pub fn archive_size(&self) -> usize {
        self.catalog.read().metadata.len()
    }

    /// The metadata of an indexed image (cloned out of the catalog lock).
    pub fn metadata_of(&self, name: &str) -> Option<PatchMetadata> {
        self.catalog.read().metadata.iter().find(|m| m.name == name).cloned()
    }

    /// A snapshot of the serving counters.
    ///
    /// The three query counters are read in one pass under their shared
    /// lock, so the snapshot is internally consistent even mid-workload:
    /// `queries_served` always equals `cache_hits + cache_misses` plus the
    /// failed queries, and the derived hit rate never mixes counters from
    /// different instants.
    pub fn stats(&self) -> ServerStats {
        let (queries_served, cache_hits, cache_misses) = {
            let counters = self.counters.lock();
            (counters.served, counters.hits, counters.misses)
        };
        ServerStats {
            queries_served,
            cache_hits,
            cache_misses,
            cache_entries: self.cache.len(),
            archive_size: self.archive_size(),
            ingested_images: self.ingested_images.load(Ordering::Relaxed),
            shard_occupancy: self.index.shard_occupancy(),
        }
    }

    /// Runs a query-panel metadata search (the concurrent counterpart of
    /// [`EarthQube::search`]).
    ///
    /// # Errors
    /// Fails on an invalid query or a store error.
    pub fn search(&self, query: &ImageQuery) -> Result<SearchResponse, EarthQubeError> {
        query.validate()?;
        let page_size = self.config.page_size;
        self.cached(CacheKey::Metadata(query.clone()), |catalog| {
            catalog.metadata_search(query, page_size)
        })
    }

    /// "Retrieve similar images" for an archive image (the concurrent
    /// counterpart of [`EarthQube::similar_to`]).
    ///
    /// # Errors
    /// Fails if the image is unknown.
    pub fn similar_to(&self, name: &str, k: usize) -> Result<SearchResponse, EarthQubeError> {
        let page_size = self.config.page_size;
        self.cached(CacheKey::Similar(name.to_string(), k), |catalog| {
            let code = catalog
                .name_to_code
                .get(name)
                .ok_or_else(|| EarthQubeError::UnknownImage(name.to_string()))?;
            self.with_scratch(|scratch| {
                // Ask for one extra hit because the query image itself is
                // indexed, then drop it — same policy as the sequential
                // CBIR service.  The bounded selection keeps at most k+1
                // candidates; no full result list is built or sorted.
                let hits = self.index.knn_with(code, k + 1, &mut scratch.search);
                scratch.neighbors.clear();
                scratch.neighbors.extend(hits.iter().copied().filter(|n| {
                    catalog.id_to_name.get(n.id as usize).map(String::as_str) != Some(name)
                }));
                scratch.neighbors.truncate(k);
                catalog.response_from_neighbors(&scratch.neighbors, page_size)
            })
        })
    }

    /// Query-by-new-example: encodes the external patch on the fly (the
    /// concurrent counterpart of [`EarthQube::search_by_new_example`]).
    ///
    /// # Errors
    /// Propagates store errors from result assembly.
    pub fn search_by_new_example(
        &self,
        patch: &Patch,
        k: usize,
    ) -> Result<SearchResponse, EarthQubeError> {
        // Encoding needs no lock: the model is immutable shared state.
        let code = self.model.hash_patch(patch);
        self.search_by_code(&code, k)
    }

    /// The k most similar archive images to an arbitrary binary code.
    ///
    /// # Errors
    /// Propagates store errors from result assembly.
    pub fn search_by_code(
        &self,
        code: &BinaryCode,
        k: usize,
    ) -> Result<SearchResponse, EarthQubeError> {
        let page_size = self.config.page_size;
        self.cached(CacheKey::ByCode(code.clone(), k), |catalog| {
            self.with_scratch(|scratch| {
                let neighbors = self.index.knn_with(code, k, &mut scratch.search);
                catalog.response_from_neighbors(neighbors, page_size)
            })
        })
    }

    /// Filtered "retrieve similar images" (the concurrent counterpart of
    /// [`EarthQube::similar_to_filtered`]): the `k` nearest neighbours
    /// among the images matching the query-panel filter.
    ///
    /// The filter resolves to a dense-id mask under the catalog read lock
    /// (bitmap prefilter or post-filter scan, per `mode`), then the masked
    /// bounded top-k runs across the index shards.  Filtered responses —
    /// plan included — go through the result cache like every other query:
    /// the filter, the mode, the image and `k` are all part of the cache
    /// key, and ingest invalidation covers them the same way.
    ///
    /// # Errors
    /// Fails on an invalid query, an unknown image or a store error.
    pub fn similar_to_filtered(
        &self,
        name: &str,
        k: usize,
        query: &ImageQuery,
        mode: PrefilterMode,
    ) -> Result<FilteredResponse, EarthQubeError> {
        query.validate()?;
        let page_size = self.config.page_size;
        let key =
            CacheKey::SimilarFiltered { name: name.to_string(), k, query: query.clone(), mode };
        self.cached_filtered(key, |catalog| {
            let coll = catalog.database.collection(collections::METADATA)?;
            let (mask, plan) = matching_item_mask(coll, &query.to_filter(), mode);
            let code = catalog
                .name_to_code
                .get(name)
                .ok_or_else(|| EarthQubeError::UnknownImage(name.to_string()))?;
            let response = self.with_scratch(|scratch| {
                // One extra hit in case the query image itself passes the
                // filter — same policy as the unfiltered path.
                let hits = self.index.knn_masked_with(code, k + 1, &mask, &mut scratch.search);
                scratch.neighbors.clear();
                scratch.neighbors.extend(hits.iter().copied().filter(|n| {
                    catalog.id_to_name.get(n.id as usize).map(String::as_str) != Some(name)
                }));
                scratch.neighbors.truncate(k);
                catalog.response_from_neighbors(&scratch.neighbors, page_size)
            })?;
            Ok(FilteredResponse { response, plan })
        })
    }

    /// Filtered radius search (the concurrent counterpart of
    /// [`EarthQube::similar_within_filtered`]): every image within the
    /// Hamming radius that also matches the query-panel filter, excluding
    /// the query image itself.
    ///
    /// # Errors
    /// Fails on an invalid query, an unknown image or a store error.
    pub fn similar_within_filtered(
        &self,
        name: &str,
        radius: u32,
        query: &ImageQuery,
        mode: PrefilterMode,
    ) -> Result<FilteredResponse, EarthQubeError> {
        query.validate()?;
        let page_size = self.config.page_size;
        let key =
            CacheKey::WithinFiltered { name: name.to_string(), radius, query: query.clone(), mode };
        self.cached_filtered(key, |catalog| {
            let coll = catalog.database.collection(collections::METADATA)?;
            let (mask, plan) = matching_item_mask(coll, &query.to_filter(), mode);
            let code = catalog
                .name_to_code
                .get(name)
                .ok_or_else(|| EarthQubeError::UnknownImage(name.to_string()))?;
            let response = self.with_scratch(|scratch| {
                scratch.neighbors.clear();
                self.index.radius_search_masked_into(code, radius, &mask, &mut scratch.neighbors);
                eq_hashindex::sort_neighbors(&mut scratch.neighbors);
                scratch.neighbors.retain(|n| {
                    catalog.id_to_name.get(n.id as usize).map(String::as_str) != Some(name)
                });
                catalog.response_from_neighbors(&scratch.neighbors, page_size)
            })?;
            Ok(FilteredResponse { response, plan })
        })
    }

    /// Checks a scratch out of the pool for the duration of `f`.  The pool
    /// lock is only held for the pop and the push, never across the search
    /// itself, so workers contend for nanoseconds, not query time.
    fn with_scratch<R>(&self, f: impl FnOnce(&mut QueryScratch) -> R) -> R {
        let mut scratch = self.scratch_pool.lock().pop().unwrap_or_default();
        let result = f(&mut scratch);
        // lint:allow(hot-path) returns the scratch to a pool prewarmed to the worker count: steady-state pushes land in reserved capacity
        self.scratch_pool.lock().push(scratch);
        result
    }

    /// Pre-populates the scratch pool with `workers` entries, so a serving
    /// tier that pins its worker count (e.g. `NetServer`) never constructs
    /// a scratch on the query path — after each worker's first query the
    /// pooled buffers are warm and steady-state serving is allocation-free
    /// on the search path.
    pub fn prewarm_scratch(&self, workers: usize) {
        let mut pool = self.scratch_pool.lock();
        while pool.len() < workers {
            pool.push(QueryScratch::default());
        }
    }

    /// Executes one workload request.
    ///
    /// # Errors
    /// Propagates the underlying query error.
    pub fn execute(&self, request: &QueryRequest) -> Result<SearchResponse, EarthQubeError> {
        match request {
            QueryRequest::Metadata(query) => self.search(query),
            QueryRequest::SimilarTo { name, k } => self.similar_to(name, *k),
            QueryRequest::NewExample { patch, k } => self.search_by_new_example(patch, *k),
        }
    }

    /// Executes a batch of requests on `workers` scoped threads, returning
    /// the per-request results in request order.
    ///
    /// The batch is split into contiguous chunks, one per worker; each
    /// worker shares the server by reference (`std::thread::scope`), so
    /// queries proceed concurrently against the shared read path while any
    /// concurrent [`ingest`](Self::ingest) serialises through the catalog
    /// write lock.
    pub fn run_workload(
        &self,
        requests: &[QueryRequest],
        workers: usize,
    ) -> Vec<Result<SearchResponse, EarthQubeError>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let workers = workers.clamp(1, requests.len());
        let chunk = requests.len().div_ceil(workers);
        let mut results: Vec<Option<Result<SearchResponse, EarthQubeError>>> =
            (0..requests.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (reqs, outs) in requests.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (request, out) in reqs.iter().zip(outs.iter_mut()) {
                        *out = Some(self.execute(request));
                    }
                });
            }
        });
        results
            .into_iter()
            // lint:allow(panic) infallible: chunks() and chunks_mut() with the same size partition 0..len identically
            .map(|r| r.expect("every request is assigned to exactly one worker"))
            .collect()
    }

    /// Appends patches to the live archive: the write path.
    ///
    /// The expensive per-patch work — encoding with the model, serialising
    /// band data, rendering RGB — happens *before* the catalog write lock
    /// is taken, so concurrent queries are only blocked for the cheap
    /// bookkeeping: the duplicate check, the three document inserts, the
    /// index insert and the cache invalidation.
    ///
    /// When the server is attached to a persistence directory (via
    /// [`checkpoint`](Self::checkpoint), [`recover`](Self::recover) or
    /// [`open`](Self::open)), every applied patch is appended to the
    /// write-ahead log *inside the same write-lock section*, so the
    /// per-patch rollback atomicity carries over to disk: a patch is either
    /// fully applied and fully logged, or neither.
    ///
    /// # Errors
    /// A batch naming an already-indexed image is rejected up front, before
    /// any work.  On a mid-batch store error, patches preceding the failure
    /// remain ingested (each patch is applied atomically, and the cache is
    /// invalidated whenever at least one patch was applied).  A WAL I/O
    /// failure surfaces as [`EarthQubeError::Persist`] and detaches the
    /// log: the server keeps serving from memory, but durability is lost
    /// until the next successful [`checkpoint`](Self::checkpoint).
    pub fn ingest(&self, patches: &[Patch]) -> Result<IngestReport, EarthQubeError> {
        if !self.is_primary() {
            return Err(EarthQubeError::NotPrimary(
                "replicas only apply records replicated from the primary".into(),
            ));
        }
        // Cheap pre-screen under a short read lock, so a doomed batch does
        // not pay the heavy phase below.  The check under the write lock
        // stays authoritative (an ingest racing in between is still caught).
        {
            let catalog = self.catalog.read();
            for patch in patches {
                if catalog.name_to_code.contains_key(&patch.meta.name) {
                    return Err(EarthQubeError::BadRequest(format!(
                        "image {} is already in the archive",
                        patch.meta.name
                    )));
                }
            }
        }

        // Heavy phase, outside any lock: the model and the serialisation
        // code are immutable shared state.
        let prepared: Vec<(BinaryCode, Document, Document)> = patches
            .iter()
            .map(|patch| {
                let code = self.model.hash_patch(patch);
                let (image_doc, rendered_doc) = prepare_patch_docs(patch, &patch.meta.name);
                (code, image_doc, rendered_doc)
            })
            .collect();

        // Cheap phase, under the catalog write lock.
        let mut catalog = self.catalog.write();
        let catalog = &mut *catalog;
        let mut wal = self.wal.lock();
        let mut report = IngestReport { metadata_docs: 0, image_docs: 0, rendered_docs: 0 };
        let mut result = Ok(());
        for (patch, (code, image_doc, rendered_doc)) in patches.iter().zip(prepared) {
            if catalog.name_to_code.contains_key(&patch.meta.name) {
                result = Err(EarthQubeError::BadRequest(format!(
                    "image {} is already in the archive",
                    patch.meta.name
                )));
                break;
            }
            // Re-assign the dense id: appended patches take the next slot.
            let mut meta = patch.meta.clone();
            meta.id = PatchId(catalog.metadata.len() as u32);
            // Encode the WAL record while the documents are still borrowable
            // (applying consumes them); it is only written once the patch
            // has actually been applied, so a rolled-back patch never
            // reaches the log.
            let wal_payload = wal
                .as_ref()
                .map(|_| persist::encode_ingest_record(&meta, &code, &image_doc, &rendered_doc));
            if let Err(e) = apply_ingest(catalog, &self.index, meta, code, image_doc, rendered_doc)
            {
                result = Err(e);
                break;
            }
            report.metadata_docs += 1;
            report.image_docs += 1;
            report.rendered_docs += 1;
            self.ingested_images.fetch_add(1, Ordering::Relaxed);
            if let (Some(att), Some(payload)) = (wal.as_mut(), wal_payload) {
                match att.writer.append(&payload) {
                    Ok(bytes) => att.segment_bytes += bytes,
                    Err(e) => {
                        // The patch is applied in memory but could not be
                        // made durable; detach the log so later appends
                        // cannot write after a gap, and surface the failure.
                        *wal = None;
                        result = Err(e);
                        break;
                    }
                }
            }
        }
        // One fdatasync covers the whole batch: records are appended per
        // patch above, but only this sync makes them crash-durable.  It
        // runs even when the batch stopped early — the applied prefix
        // "remains ingested" per the contract above, so its records must
        // reach stable storage too.  A sync failure detaches the log; the
        // original batch error (if any) stays the reported one.
        if report.metadata_docs > 0 {
            if let Some(att) = wal.as_mut() {
                // lint:allow(lock) durability inside the write-lock section IS the ingest atomicity contract (see the method docs)
                if let Err(e) = att.writer.sync() {
                    *wal = None;
                    if result.is_ok() {
                        result = Err(e);
                    }
                } else if att.segment_bytes >= self.segment_limit.load(Ordering::Relaxed) {
                    // Rotate only *between* synced batches, so a sealed
                    // segment is always clean-ended (recovery treats a torn
                    // tail in a non-final segment as corruption).  Rotation
                    // here is best-effort: on failure the oversized segment
                    // simply stays live and the next batch retries.
                    let _ = att.rotate();
                }
            }
        }
        // Invalidate while still holding the catalog write lock: a reader
        // can only insert a cache entry while holding the read lock (see
        // `cached`), so no stale result can slip in after this clear.  A
        // no-op ingest (empty batch, duplicate rejected up front) changed
        // nothing, so it must not evict anyone's cached results either.
        if report.metadata_docs > 0 {
            self.cache.clear();
        }
        result.map(|_| report)
    }

    /// Submits anonymous feedback through the write path (logged to the
    /// WAL like ingest, so feedback survives a crash too).
    ///
    /// # Errors
    /// Fails if the text is empty, or with [`EarthQubeError::Persist`] if
    /// the WAL append fails (the log detaches, see [`ingest`](Self::ingest)).
    pub fn submit_feedback(
        &self,
        text: &str,
        category: Option<&str>,
    ) -> Result<i64, EarthQubeError> {
        if !self.is_primary() {
            return Err(EarthQubeError::NotPrimary(
                "replicas only apply records replicated from the primary".into(),
            ));
        }
        let mut catalog = self.catalog.write();
        let catalog = &mut *catalog;
        let feedback = catalog.feedback;
        let id = feedback.submit(&mut catalog.database, text, category)?;
        let mut wal = self.wal.lock();
        if let Some(att) = wal.as_mut() {
            let logged = att
                .writer
                .append(&persist::encode_feedback_record(text, category))
                .and_then(|bytes| {
                    att.segment_bytes += bytes;
                    // lint:allow(lock) feedback must be crash-durable before the lock drops, same contract as ingest
                    att.writer.sync()
                });
            if let Err(e) = logged {
                *wal = None;
                // Unlike ingest (whose contract keeps the applied prefix),
                // feedback failure means "not stored": roll the entry back
                // so a retrying caller cannot store it twice.
                if let Ok(coll) =
                    catalog.database.collection_mut(crate::schema::collections::FEEDBACK)
                {
                    let _ = coll.delete_by_key(&eq_docstore::Value::Int(id));
                }
                return Err(e);
            }
        }
        Ok(id)
    }

    /// Lists all stored feedback.
    ///
    /// # Errors
    /// Fails if the feedback collection is missing.
    pub fn list_feedback(&self) -> Result<Vec<FeedbackEntry>, EarthQubeError> {
        let catalog = self.catalog.read();
        catalog.feedback.list(&catalog.database)
    }

    /// Cache-or-compute for the unfiltered query paths; see
    /// [`cached_with`](Self::cached_with) for the locking contract.
    fn cached<F>(&self, key: CacheKey, compute: F) -> Result<SearchResponse, EarthQubeError>
    where
        F: FnOnce(&Catalog) -> Result<SearchResponse, EarthQubeError>,
    {
        self.cached_with(
            key,
            CachedResponse::Plain,
            |cached| match cached {
                CachedResponse::Plain(r) => Some(r),
                CachedResponse::Filtered(_) => None,
            },
            compute,
        )
    }

    /// Cache-or-compute for the filtered query paths: the cache stores the
    /// full [`FilteredResponse`] (response *and* plan — replaying a hit
    /// reports the same strategy the original computation chose).
    fn cached_filtered<F>(
        &self,
        key: CacheKey,
        compute: F,
    ) -> Result<FilteredResponse, EarthQubeError>
    where
        F: FnOnce(&Catalog) -> Result<FilteredResponse, EarthQubeError>,
    {
        self.cached_with(
            key,
            CachedResponse::Filtered,
            |cached| match cached {
                CachedResponse::Filtered(r) => Some(r),
                CachedResponse::Plain(_) => None,
            },
            compute,
        )
    }

    /// Cache-or-compute: every cached query flows through here.
    ///
    /// The catalog read lock is held across both the computation *and* the
    /// cache insert.  [`ingest`](Self::ingest) clears the cache while
    /// holding the catalog *write* lock, so any entry inserted here is
    /// either computed over the post-ingest catalog or cleared by the very
    /// ingest it predates — stale entries cannot survive.
    ///
    /// `unwrap` maps a stored [`CachedResponse`] back to this path's
    /// response shape; `CacheKey` equality already guarantees the shapes
    /// match, so the `None` arm (treated as a miss) is pure defence.
    fn cached_with<R, F>(
        &self,
        key: CacheKey,
        wrap: fn(R) -> CachedResponse,
        unwrap: fn(CachedResponse) -> Option<R>,
        compute: F,
    ) -> Result<R, EarthQubeError>
    where
        R: Clone,
        F: FnOnce(&Catalog) -> Result<R, EarthQubeError>,
    {
        let caching = self.serve.cache_capacity > 0;
        let fp = fingerprint(&key);
        if caching {
            if let Some(hit) = self.cache.get(fp, &key).and_then(unwrap) {
                let mut counters = self.counters.lock();
                counters.served += 1;
                counters.hits += 1;
                return Ok(hit);
            }
        }
        let catalog = self.catalog.read();
        let result = compute(&catalog);
        match &result {
            // A miss is only counted once something was actually computed,
            // so error traffic (e.g. unknown image names) does not drag the
            // reported hit rate down; errors bump `served` alone.  Each
            // outcome updates all its counters under one lock acquisition,
            // which is what keeps `stats()` snapshots consistent.
            Ok(response) if caching => {
                self.cache.put(fp, key, wrap(response.clone()));
                let mut counters = self.counters.lock();
                counters.served += 1;
                counters.misses += 1;
            }
            _ => self.counters.lock().served += 1,
        }
        drop(catalog);
        result
    }

    // -- durable storage tier ---------------------------------------------

    /// Checkpoints the serving state into `dir` and (re)attaches the server
    /// to it: every subsequent [`ingest`](Self::ingest) and
    /// [`submit_feedback`](Self::submit_feedback) is appended to the
    /// write-ahead log there, so [`recover`](Self::recover) restores
    /// exactly the pre-crash state.
    ///
    /// The first checkpoint into a directory is **full**: every chunk is
    /// written and a fresh manifest + WAL lineage is started.  Once
    /// attached, later checkpoints into the same directory are
    /// **incremental**: only collections, index shards and the image tail
    /// dirtied since the previous checkpoint are written, the manifest is
    /// atomically republished, and WAL segments the new manifest no longer
    /// needs are retired (deleted).  A checkpoint with nothing dirty is
    /// [`CheckpointKind::Skipped`] and writes no bytes.
    ///
    /// The catalog write lock is only held for the brief state *cut*
    /// (draining dirty logs, cloning touched shards, sealing the live WAL
    /// segment); all chunk encoding and file I/O happens after the locks
    /// are released, so queries and ingest keep flowing while the
    /// checkpoint writes — this is what the `e12_checkpoint_stall`
    /// experiment measures.
    ///
    /// Crash safety: the atomic rename of the manifest is the commit
    /// point.  A crash before it leaves the old manifest in force (the new
    /// chunk files are unreferenced orphans, swept by the next successful
    /// checkpoint); a crash after it leaves at worst retired-but-undeleted
    /// segments and orphan chunks, which recovery ignores.
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Persist`] on I/O errors.  A failure
    /// before the manifest rename restores the drained dirty state, so the
    /// next checkpoint retries the same work over the old base.
    pub fn checkpoint(&self, dir: &Path) -> Result<CheckpointStats, EarthQubeError> {
        // A replica never checkpoints: the incremental cut rotates the
        // live segment, which would desynchronise the replica's mirrored
        // WAL position from the primary's.  Promotion runs the one
        // checkpoint a replica ever takes, through its own path.
        if !self.is_primary() {
            return Err(EarthQubeError::NotPrimary(
                "a read replica never checkpoints; promote it first".into(),
            ));
        }
        std::fs::create_dir_all(dir)
            .map_err(|e| persist::io_error("creating the persistence directory", e))?;
        let _serial = self.ckpt_serial.lock();
        let attached_here = self.wal.lock().as_ref().is_some_and(|att| att.dir == dir);
        if attached_here {
            self.checkpoint_incremental(dir)
        } else {
            self.checkpoint_full(dir)
        }
    }

    /// The full-checkpoint path: writes every chunk under the catalog
    /// write lock, starts a new WAL lineage (fresh generation tag), and
    /// installs the attachment.  Interrupted earlier lineages may have
    /// left segments behind; stamping a unique generation *and* starting
    /// the segment numbering above every file on disk keeps recovery from
    /// ever confusing their records with this lineage's.
    fn checkpoint_full(&self, dir: &Path) -> Result<CheckpointStats, EarthQubeError> {
        // Attaching needs the directory's exclusive lock; take it up front
        // so a directory already served by another live instance is
        // refused before any state is cut.  (If this server itself holds
        // the directory under a different path spelling, this fails too —
        // checkpoint into the attached directory via the same path.)
        let lock = persist::lock_dir(dir)?;
        let seq = persist::read_manifest(dir)?.map_or(1, |m| m.seq + 1);

        let mut catalog = self.catalog.write();
        let mut wal = self.wal.lock();
        let mut codes: Vec<&BinaryCode> = Vec::with_capacity(catalog.id_to_name.len());
        for name in &catalog.id_to_name {
            codes.push(catalog.name_to_code.get(name).ok_or_else(|| {
                EarthQubeError::Persist(format!(
                    "catalog is internally inconsistent: indexed image {name} has no stored code"
                ))
            })?);
        }
        let static_body = persist::encode_static_chunk(&self.config, self.serve, &self.model);
        let generation = persist::unique_generation(dir, &static_body);
        let first_segment = persist::next_free_segment_index(dir)?;

        let mut sink = ChunkSink { dir, seq, ordinal: 0, bytes_written: 0, chunks: Vec::new() };
        sink.push(&persist::kind_static(), &static_body)?;
        for collection in catalog.database.collections() {
            sink.push(
                &persist::kind_collection(collection.name()),
                &persist::encode_collection_chunk(collection),
            )?;
        }
        let images: Vec<(&PatchMetadata, &BinaryCode)> =
            catalog.metadata.iter().zip(codes.iter().copied()).collect();
        sink.push(&persist::kind_images(0), &persist::encode_images_chunk(0, &images))?;
        for shard in 0..self.serve.shards {
            let table = self.index.clone_shard(shard);
            sink.push(
                &persist::kind_shard(shard as u32),
                &persist::encode_shard_chunk(shard as u32, &table),
            )?;
        }
        // Create the lineage's first segment before the manifest names it,
        // so a published manifest always finds its chain on disk.
        let writer = WalWriter::create(
            &dir.join(persist::segment_file_name(first_segment)),
            generation,
            first_segment,
        )?;
        let manifest = Manifest { seq, generation, first_segment, chunks: sink.chunks.clone() };
        let manifest_bytes = persist::write_manifest_file(dir, &manifest)?;

        // Committed: the snapshot covers every dirty bit accumulated so far.
        catalog.database.clear_dirty();
        let _ = self.index.take_dirty_shards();
        let persisted_images = catalog.metadata.len();
        let chunks_written = sink.chunks.len() as u64;
        let bytes_written = sink.bytes_written + manifest_bytes;
        // Replacing the attachment drops any previous one (detaching from
        // its old directory and releasing that directory's lock).
        *wal = Some(Attachment {
            dir: dir.to_path_buf(),
            seq,
            generation,
            first_segment,
            segment_index: first_segment,
            segment_bytes: persist::SEGMENT_HEADER_LEN,
            writer,
            chunks: sink.chunks,
            persisted_images,
            _lock: lock,
        });
        drop(wal);
        drop(catalog);

        // Post-publish GC: debris from earlier lineages (their segments
        // sort below `first_segment`, their chunks are unreferenced).
        let segments_retired = persist::retire_segments(dir, first_segment)?;
        persist::sweep_orphan_chunks(dir, &manifest)?;
        Ok(CheckpointStats {
            kind: CheckpointKind::Full,
            bytes_written,
            chunks_written,
            segments_retired,
        })
    }

    /// The incremental path: cut the dirty state under the locks, write
    /// delta/replacement chunks without them, republish the manifest, then
    /// retire covered WAL segments and sweep superseded chunks.
    fn checkpoint_incremental(&self, dir: &Path) -> Result<CheckpointStats, EarthQubeError> {
        // ---- The cut: brief, under the catalog write + wal locks ----
        let cut = {
            let mut catalog = self.catalog.write();
            let catalog = &mut *catalog;
            let mut wal = self.wal.lock();
            let Some(att) = wal.as_mut() else {
                return Err(EarthQubeError::Persist(
                    "the persistence attachment was detached mid-checkpoint".into(),
                ));
            };
            let n_images = catalog.metadata.len();
            if !catalog.database.is_dirty()
                && self.index.dirty_shards().is_empty()
                && att.persisted_images == n_images
            {
                return Ok(CheckpointStats {
                    kind: CheckpointKind::Skipped,
                    bytes_written: 0,
                    chunks_written: 0,
                    segments_retired: 0,
                });
            }
            // Clone the unpersisted image tail first: it is the only
            // fallible step, and it must run before any dirty state is
            // drained so an error here leaves nothing to restore.
            let images_start = att.persisted_images;
            let mut images = Vec::with_capacity(n_images - images_start);
            for meta in &catalog.metadata[images_start..] {
                let code = catalog.name_to_code.get(&meta.name).cloned().ok_or_else(|| {
                    EarthQubeError::Persist(format!(
                        "catalog is internally inconsistent: indexed image {} has no stored code",
                        meta.name
                    ))
                })?;
                images.push((meta.clone(), code));
            }
            let mut names: Vec<String> =
                catalog.database.dirty_collection_names().iter().map(|s| s.to_string()).collect();
            names.sort_unstable();
            let mut collections = Vec::with_capacity(names.len());
            let mut drained = Vec::with_capacity(names.len());
            for name in names {
                let collection = catalog.database.collection_mut(&name)?;
                let log = collection.take_dirty();
                let stacked =
                    att.chunks.iter().filter(|c| c.kind == persist::kind_delta(&name)).count();
                let plan = if log.schema_changed() || stacked >= DELTA_COMPACT_THRESHOLD {
                    CollectionPlan::Full(Box::new(collection.clone()))
                } else {
                    CollectionPlan::Delta(collection.capture_delta(&log))
                };
                drained.push((name.clone(), log));
                collections.push((name, plan));
            }
            let shard_ids = self.index.take_dirty_shards();
            let shards: Vec<(u32, HashTableIndex)> =
                shard_ids.iter().map(|&s| (s as u32, self.index.clone_shard(s))).collect();
            // Seal the live segment: records before the cut are covered by
            // the chunks drained above, records after it land in the fresh
            // segment the new manifest starts from.
            if let Err(e) = att.rotate() {
                // Nothing was persisted; put the drained dirty state back.
                for (name, log) in drained {
                    if let Ok(c) = catalog.database.collection_mut(&name) {
                        c.restore_dirty(log);
                    }
                }
                self.index.mark_shards_dirty(&shard_ids);
                return Err(e);
            }
            IncrementalCut {
                seq: att.seq + 1,
                generation: att.generation,
                first_segment: att.segment_index,
                base_chunks: att.chunks.clone(),
                collections,
                drained,
                shard_ids,
                shards,
                images_start,
                images,
            }
        };

        // ---- Chunk I/O and manifest publish: no server lock held ----
        let mut sink =
            ChunkSink { dir, seq: cut.seq, ordinal: 0, bytes_written: 0, chunks: Vec::new() };
        let published: Result<(Manifest, u64), EarthQubeError> = (|| {
            for (name, plan) in &cut.collections {
                match plan {
                    CollectionPlan::Full(collection) => sink.push(
                        &persist::kind_collection(name),
                        &persist::encode_collection_chunk(collection),
                    )?,
                    CollectionPlan::Delta(delta) => {
                        sink.push(&persist::kind_delta(name), &persist::encode_delta_chunk(delta))?
                    }
                }
            }
            for (shard, table) in &cut.shards {
                sink.push(
                    &persist::kind_shard(*shard),
                    &persist::encode_shard_chunk(*shard, table),
                )?;
            }
            if !cut.images.is_empty() {
                let refs: Vec<(&PatchMetadata, &BinaryCode)> =
                    cut.images.iter().map(|(m, c)| (m, c)).collect();
                sink.push(
                    &persist::kind_images(cut.images_start as u64),
                    &persist::encode_images_chunk(cut.images_start as u64, &refs),
                )?;
            }
            // Derive the new manifest from the published base: a full
            // collection rewrite supersedes its old base and deltas, a
            // rewritten shard supersedes its old chunk, everything new is
            // appended (order only matters within one collection: base
            // before deltas, which append-at-end preserves).
            let mut chunks = cut.base_chunks.clone();
            for (name, plan) in &cut.collections {
                if matches!(plan, CollectionPlan::Full(_)) {
                    let full_kind = persist::kind_collection(name);
                    let delta_kind = persist::kind_delta(name);
                    chunks.retain(|c| c.kind != full_kind && c.kind != delta_kind);
                }
            }
            for (shard, _) in &cut.shards {
                let kind = persist::kind_shard(*shard);
                chunks.retain(|c| c.kind != kind);
            }
            chunks.extend(sink.chunks.iter().cloned());
            let manifest = Manifest {
                seq: cut.seq,
                generation: cut.generation,
                first_segment: cut.first_segment,
                chunks,
            };
            let manifest_bytes = persist::write_manifest_file(dir, &manifest)?;
            Ok((manifest, manifest_bytes))
        })();

        let (manifest, manifest_bytes) = match published {
            Ok(ok) => ok,
            Err(e) => {
                // Pre-publish failure: the old manifest is still in force
                // (even if the rename itself is what failed, the next
                // manifest is derived from the old chunk list again, so
                // its deltas apply over the old base either way).  Restore
                // the drained dirty state for the retry.
                {
                    let mut catalog = self.catalog.write();
                    for (name, log) in cut.drained {
                        if let Ok(c) = catalog.database.collection_mut(&name) {
                            c.restore_dirty(log);
                        }
                    }
                }
                self.index.mark_shards_dirty(&cut.shard_ids);
                return Err(e);
            }
        };

        // Committed: advance the attachment to the new manifest.
        {
            let mut wal = self.wal.lock();
            if let Some(att) = wal.as_mut() {
                att.seq = cut.seq;
                att.first_segment = cut.first_segment;
                att.chunks = manifest.chunks.clone();
                att.persisted_images = cut.images_start + cut.images.len();
            }
        }
        // Post-publish GC.  Failures propagate but must NOT restore the
        // dirty state: the manifest is committed, and restoring would
        // re-apply the same deltas over the already-advanced base.
        // Retirement is clamped to the replication floor: segments a
        // recently-active replica still needs stay on disk even though
        // the manifest no longer requires them for recovery.
        let segments_retired =
            persist::retire_segments(dir, self.replication_floor(cut.first_segment))?;
        persist::sweep_orphan_chunks(dir, &manifest)?;
        Ok(CheckpointStats {
            kind: CheckpointKind::Incremental,
            bytes_written: sink.bytes_written + manifest_bytes,
            chunks_written: sink.chunks.len() as u64,
            segments_retired,
        })
    }

    /// Restores a server from a persistence directory: reads the manifest,
    /// loads its chunks (base collections, stacked deltas, image ranges,
    /// index shards), replays every intact record of the manifest's WAL
    /// segment chain through the same apply path live ingest uses,
    /// truncates a torn tail in the final segment, and re-attaches.
    ///
    /// Recovery is idempotent: recovering the same directory again (with no
    /// writes in between) yields a byte-identically answering server.
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Persist`] if the directory holds no
    /// manifest, a referenced chunk or mid-chain segment is missing or
    /// corrupt, or the directory is already served by a live instance.
    pub fn recover(dir: &Path) -> Result<Self, EarthQubeError> {
        // Take the directory lock first: a directory serves exactly one
        // live instance at a time.
        let lock = persist::lock_dir(dir)?;
        let manifest = persist::read_manifest(dir)?.ok_or_else(|| {
            EarthQubeError::Persist(format!("{} holds no checkpoint manifest", dir.display()))
        })?;
        let state = persist::read_snapshot(dir, &manifest)?;
        let persisted_images = state.images.len();

        let mut metadata = Vec::with_capacity(state.images.len());
        let mut name_to_code = HashMap::with_capacity(state.images.len());
        let mut id_to_name = Vec::with_capacity(state.images.len());
        for (meta, code) in state.images {
            name_to_code.insert(meta.name.clone(), code);
            id_to_name.push(meta.name.clone());
            metadata.push(meta);
        }
        let registry = crate::engine::build_registry(&state.config);
        let server = Self {
            config: state.config,
            serve: state.serve,
            model: state.model,
            index: state.index,
            catalog: RwLock::with_name(
                Catalog {
                    database: state.database,
                    metadata,
                    name_to_code,
                    id_to_name,
                    feedback: FeedbackService::new(),
                },
                "catalog",
            ),
            cache: ResultCache::new(state.serve.cache_capacity),
            registry,
            counters: Mutex::with_name(QueryCounters::default(), "counters"),
            ingested_images: AtomicU64::new(0),
            scratch_pool: Mutex::with_name(Vec::new(), "scratch_pool"),
            wal: Mutex::with_name(None, "wal"),
            ckpt_serial: Mutex::with_name((), "ckpt-serial"),
            checkpointer: Mutex::with_name(None, "checkpointer"),
            segment_limit: AtomicU64::new(DEFAULT_SEGMENT_LIMIT),
            ckpt_passes: AtomicU64::new(0),
            ckpt_completed: AtomicU64::new(0),
            ckpt_skipped: AtomicU64::new(0),
            ckpt_failures: AtomicU64::new(0),
            primary: AtomicBool::new(true),
            repl_floor: Mutex::with_name(HashMap::new(), "repl-floor"),
        };

        let chain = persist::read_segment_chain(dir, manifest.generation, manifest.first_segment)?;
        {
            let mut catalog = server.catalog.write();
            let catalog = &mut *catalog;
            for record in chain.records {
                match record {
                    WalRecord::Ingest { meta, code, image_doc, rendered_doc } => {
                        if meta.id.0 as usize != catalog.metadata.len() {
                            return Err(EarthQubeError::Persist(format!(
                                "WAL record for {} carries dense id {}, expected {}",
                                meta.name,
                                meta.id.0,
                                catalog.metadata.len()
                            )));
                        }
                        apply_ingest(catalog, &server.index, meta, code, image_doc, rendered_doc)
                            .map_err(|e| {
                            EarthQubeError::Persist(format!(
                                "WAL record does not apply to the snapshot state: {e}"
                            ))
                        })?;
                        server.ingested_images.fetch_add(1, Ordering::Relaxed);
                    }
                    WalRecord::Feedback { text, category } => {
                        let feedback = catalog.feedback;
                        feedback
                            .submit(&mut catalog.database, &text, category.as_deref())
                            .map_err(|e| {
                                EarthQubeError::Persist(format!(
                                    "WAL feedback record does not apply: {e}"
                                ))
                            })?;
                    }
                }
            }
            // Replay re-marked the touched collections and shards dirty —
            // deliberately so: the replayed records still live only in WAL
            // segments, and the next incremental checkpoint folds them
            // into chunks (after which their segments retire).
        }
        let (segment_index, segment_bytes, writer) = match chain.tail {
            ChainTail::Reopen { index, valid_len } => {
                let writer = WalWriter::open_truncated(
                    &dir.join(persist::segment_file_name(index)),
                    valid_len,
                )?;
                (index, valid_len, writer)
            }
            ChainTail::Create { index } => {
                let writer = WalWriter::create(
                    &dir.join(persist::segment_file_name(index)),
                    manifest.generation,
                    index,
                )?;
                (index, persist::SEGMENT_HEADER_LEN, writer)
            }
        };
        *server.wal.lock() = Some(Attachment {
            dir: dir.to_path_buf(),
            seq: manifest.seq,
            generation: manifest.generation,
            first_segment: manifest.first_segment,
            segment_index,
            segment_bytes,
            writer,
            chunks: manifest.chunks,
            persisted_images,
            _lock: lock,
        });
        Ok(server)
    }

    /// Opens a persistent server in `dir`: recovers the existing manifest
    /// (plus WAL segments) if one is present, otherwise builds the server
    /// from the archive and writes the initial full checkpoint.  This is
    /// the cold-start entry point the `e9_cold_start` experiment measures —
    /// after the first run, restarts skip ingestion, training and encoding
    /// entirely.
    ///
    /// On a warm start the **persisted** configuration wins: `config` and
    /// `serve` only apply when the directory is empty (they are part of
    /// what the manifest's chunks restore — the model architecture in
    /// particular cannot change under recovered weights).  To apply a new
    /// configuration, rebuild into a fresh directory.
    ///
    /// # Errors
    /// Propagates build, recovery and checkpoint errors.
    pub fn open(
        dir: &Path,
        archive: &Archive,
        config: EarthQubeConfig,
        serve: ServeConfig,
    ) -> Result<Self, EarthQubeError> {
        if dir.join(persist::MANIFEST_FILE).exists() {
            Self::recover(dir)
        } else {
            let server = Self::build(archive, config, serve)?;
            server.checkpoint(dir)?;
            Ok(server)
        }
    }

    /// Overrides the WAL segment rotation threshold, in bytes (default
    /// 4 MiB).  Smaller segments retire sooner after a checkpoint at the
    /// cost of more files; mainly useful for tests and experiments.
    pub fn set_segment_limit(&self, bytes: u64) {
        self.segment_limit.store(bytes.max(persist::SEGMENT_HEADER_LEN + 1), Ordering::Relaxed);
    }

    // -- background checkpointer ------------------------------------------

    /// Starts the background checkpointer: a thread that wakes every
    /// `interval` (or immediately on [`trigger_checkpoint`](Self::trigger_checkpoint))
    /// and runs [`checkpoint_if_dirty`](Self::checkpoint_if_dirty).  The
    /// thread holds only a [`Weak`] reference, so it never keeps a dropped
    /// server alive; it exits when the server is dropped or
    /// [`stop_checkpointer`](Self::stop_checkpointer) is called.
    ///
    /// # Errors
    /// Fails if a checkpointer is already running or the thread cannot be
    /// spawned.
    pub fn start_checkpointer(self: &Arc<Self>, interval: Duration) -> Result<(), EarthQubeError> {
        let mut slot = self.checkpointer.lock();
        if slot.is_some() {
            return Err(EarthQubeError::BadRequest(
                "a background checkpointer is already running".into(),
            ));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let weak: Weak<Self> = Arc::downgrade(self);
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("eq-checkpointer".into())
            .spawn(move || loop {
                std::thread::park_timeout(interval);
                if thread_stop.load(Ordering::Acquire) {
                    break;
                }
                let Some(server) = weak.upgrade() else { break };
                server.ckpt_passes.fetch_add(1, Ordering::Relaxed);
                match server.checkpoint_if_dirty() {
                    Ok(Some(_)) => {
                        server.ckpt_completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(None) => {
                        server.ckpt_skipped.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        server.ckpt_failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
            .map_err(|e| {
                EarthQubeError::Persist(format!("spawning the checkpointer thread: {e}"))
            })?;
        *slot = Some(CheckpointerHandle { stop, thread });
        Ok(())
    }

    /// Stops and joins the background checkpointer, if one is running.  An
    /// in-flight checkpoint pass finishes first; no new pass starts.
    pub fn stop_checkpointer(&self) {
        let handle = self.checkpointer.lock().take();
        if let Some(CheckpointerHandle { stop, thread }) = handle {
            stop.store(true, Ordering::Release);
            thread.thread().unpark();
            // The last `Arc` can die *inside* a checkpointer pass, in
            // which case drop (and thus this method) runs on the
            // checkpointer thread itself — joining would self-deadlock.
            if thread.thread().id() != std::thread::current().id() {
                let _ = thread.join();
            }
        }
    }

    /// Wakes the background checkpointer immediately instead of waiting
    /// for its next interval tick.  A no-op if none is running.
    pub fn trigger_checkpoint(&self) {
        if let Some(handle) = self.checkpointer.lock().as_ref() {
            handle.thread.thread().unpark();
        }
    }

    /// Checkpoints into the attached directory if (and only if) anything
    /// is dirty; returns `None` when the server is detached or clean.
    /// This is the body of one background-checkpointer pass, callable
    /// directly for a final synchronous flush (e.g. on server shutdown).
    ///
    /// # Errors
    /// Propagates [`checkpoint`](Self::checkpoint) errors.
    pub fn checkpoint_if_dirty(&self) -> Result<Option<CheckpointStats>, EarthQubeError> {
        // Replicas are always "dirty" (their state runs ahead of the
        // seeded snapshot by design) but must never checkpoint — their
        // durability is the mirrored WAL itself.
        if !self.is_primary() {
            return Ok(None);
        }
        let attached_dir = self.wal.lock().as_ref().map(|att| att.dir.clone());
        let Some(dir) = attached_dir else { return Ok(None) };
        let stats = self.checkpoint(&dir)?;
        Ok(match stats.kind {
            CheckpointKind::Skipped => None,
            _ => Some(stats),
        })
    }

    /// A snapshot of the background-checkpointer counters.
    pub fn checkpointer_stats(&self) -> CheckpointerStats {
        CheckpointerStats {
            passes: self.ckpt_passes.load(Ordering::Relaxed),
            completed: self.ckpt_completed.load(Ordering::Relaxed),
            skipped: self.ckpt_skipped.load(Ordering::Relaxed),
            failures: self.ckpt_failures.load(Ordering::Relaxed),
        }
    }

    // -- replication ------------------------------------------------------

    /// Whether this server accepts writes.  Every server starts as a
    /// primary; [`set_replica_mode`](Self::set_replica_mode) clears the
    /// flag and [`promote`](Self::promote) restores it.
    pub fn is_primary(&self) -> bool {
        self.primary.load(Ordering::Acquire)
    }

    /// Turns the server into a read replica: the network tier rejects
    /// ingest and feedback with [`EarthQubeError::NotPrimary`], checkpoints
    /// are refused, and [`apply_replicated`](Self::apply_replicated)
    /// becomes the only write path.
    pub fn set_replica_mode(&self) {
        self.primary.store(false, Ordering::Release);
    }

    /// The persistence directory this server is attached to, if any.
    pub fn attached_dir(&self) -> Option<PathBuf> {
        self.wal.lock().as_ref().map(|att| att.dir.clone())
    }

    /// The server's replication role and durable WAL position — the
    /// replication handshake, and what a promoted replica reports to
    /// clients probing for the primary.
    pub fn repl_state(&self) -> ReplState {
        let wal = self.wal.lock();
        match wal.as_ref() {
            Some(att) => ReplState {
                primary: self.is_primary(),
                attached: true,
                generation: att.generation,
                first_segment: att.first_segment,
                segment: att.segment_index,
                offset: att.segment_bytes,
            },
            None => ReplState {
                primary: self.is_primary(),
                attached: false,
                generation: 0,
                first_segment: 0,
                segment: 0,
                offset: 0,
            },
        }
    }

    /// The raw bytes of the published manifest, for shipping a snapshot to
    /// a seeding replica.  The manifest is published by atomic rename, so
    /// an unlocked read observes a complete old or new file, never a torn
    /// one.
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Persist`] when detached or on I/O.
    pub fn repl_manifest_bytes(&self) -> Result<Vec<u8>, EarthQubeError> {
        let dir = self.attached_dir().ok_or_else(|| {
            EarthQubeError::Persist("serving replication requires a persistence attachment".into())
        })?;
        std::fs::read(dir.join(persist::MANIFEST_FILE))
            .map_err(|e| persist::io_error("reading the manifest for replication", e))
    }

    /// One slice of a checkpoint chunk file, for snapshot seeding.  `file`
    /// must be a chunk the *current* attachment's manifest references —
    /// which both confines the read to real chunk files (no path
    /// traversal) and turns a mid-seed checkpoint race into a clean error
    /// the seeder answers by refetching the manifest.
    ///
    /// # Errors
    /// [`EarthQubeError::BadRequest`] for an unreferenced file name,
    /// [`EarthQubeError::Persist`] when detached or on I/O.
    pub fn repl_chunk_bytes(
        &self,
        file: &str,
        offset: u64,
        max_bytes: u64,
    ) -> Result<(u64, Vec<u8>), EarthQubeError> {
        let dir = {
            let wal = self.wal.lock();
            let Some(att) = wal.as_ref() else {
                return Err(EarthQubeError::Persist(
                    "serving replication requires a persistence attachment".into(),
                ));
            };
            if !att.chunks.iter().any(|c| c.file == file) {
                return Err(EarthQubeError::BadRequest(format!(
                    "{file:?} is not a chunk of the current manifest"
                )));
            }
            att.dir.clone()
        };
        let bytes = std::fs::read(dir.join(file))
            .map_err(|e| persist::io_error("reading a chunk for replication", e))?;
        let total = bytes.len() as u64;
        let start = offset.min(total) as usize;
        let end = offset.saturating_add(max_bytes.min(REPL_MAX_SLICE_BYTES)).min(total) as usize;
        Ok((total, bytes[start..end].to_vec()))
    }

    /// Serves one replication pull: WAL record payloads at and after the
    /// replica's `(generation, segment, offset)` position.
    ///
    /// The attachment state is snapshotted under the wal lock; the segment
    /// file is then read **unlocked** — safe because record bytes below
    /// the snapshotted length are fully written (appends happen inside the
    /// lock), segments only grow, and every reply position is re-validated
    /// on the next pull.  A position this primary cannot serve (foreign
    /// generation after a failover, or a segment already retired) is
    /// answered with `reseed` rather than an error: the verdict is
    /// authoritative, the replica must discard its lineage and re-seed.
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Persist`] when detached or on I/O
    /// reading a segment that should exist.
    pub fn repl_pull(
        &self,
        replica_id: u64,
        generation: u32,
        segment: u32,
        offset: u64,
        max_bytes: u64,
    ) -> Result<ReplBatch, EarthQubeError> {
        let (dir, att_generation, first_segment, live_segment, live_len) = {
            let wal = self.wal.lock();
            let Some(att) = wal.as_ref() else {
                return Err(EarthQubeError::Persist(
                    "serving replication requires a persistence attachment".into(),
                ));
            };
            (
                att.dir.clone(),
                att.generation,
                att.first_segment,
                att.segment_index,
                att.segment_bytes,
            )
        };
        let reseed = ReplBatch {
            reseed: true,
            generation: att_generation,
            entries: Vec::new(),
            rotate: false,
            next_segment: 0,
            next_offset: 0,
            primary_segment: live_segment,
            primary_offset: live_len,
        };
        if generation != att_generation
            || segment < first_segment
            || segment > live_segment
            || offset < persist::SEGMENT_HEADER_LEN
        {
            return Ok(reseed);
        }
        self.note_replica_position(replica_id, segment);
        let bytes = match std::fs::read(dir.join(persist::segment_file_name(segment))) {
            Ok(bytes) => bytes,
            // Retired between the snapshot above and this read: a
            // checkpoint raced us and the position is gone for good.
            Err(_) => return Ok(reseed),
        };
        let sealed = segment < live_segment;
        let end = if sealed { bytes.len() as u64 } else { live_len };
        if offset > end {
            return Ok(reseed);
        }
        let (entries, valid_end) =
            persist::scan_record_payloads(&bytes, offset, end, max_bytes.min(REPL_MAX_BATCH_BYTES));
        let rotate = sealed && valid_end >= end;
        let (next_segment, next_offset) =
            if rotate { (segment + 1, persist::SEGMENT_HEADER_LEN) } else { (segment, valid_end) };
        Ok(ReplBatch {
            reseed: false,
            generation: att_generation,
            entries,
            rotate,
            next_segment,
            next_offset,
            primary_segment: live_segment,
            primary_offset: live_len,
        })
    }

    /// Applies one pulled batch on a replica: every record runs through
    /// the same apply path as recovery, then its raw payload is appended
    /// to the replica's own WAL — re-framed deterministically, so the
    /// mirrored log is byte-identical to the primary's and the replica's
    /// durable position *is* its replication position (crash-resume needs
    /// no extra bookkeeping).  With `rotate`, the live segment is sealed
    /// and the next one opened after the batch, mirroring the primary's
    /// rotation point exactly.
    ///
    /// # Errors
    /// [`EarthQubeError::BadRequest`] on a primary (replicas only),
    /// [`EarthQubeError::Persist`] on an undecodable or diverging record
    /// (the caller should re-seed) or on WAL I/O failure (the attachment
    /// detaches, same contract as [`ingest`](Self::ingest)).
    pub fn apply_replicated(
        &self,
        entries: &[Vec<u8>],
        rotate: bool,
    ) -> Result<u64, EarthQubeError> {
        if self.is_primary() {
            return Err(EarthQubeError::BadRequest(
                "apply_replicated is only legal in replica mode".into(),
            ));
        }
        // Decode before taking any lock: a corrupt batch is rejected
        // whole, so the applied state and the mirrored WAL never diverge.
        let mut records = Vec::with_capacity(entries.len());
        for payload in entries {
            records.push(persist::decode_record(payload).map_err(|e| {
                EarthQubeError::Persist(format!("invalid replicated WAL record: {e}"))
            })?);
        }
        let mut catalog = self.catalog.write();
        let catalog = &mut *catalog;
        let mut wal = self.wal.lock();
        let mut applied = 0u64;
        let mut ingested = false;
        let mut result = Ok(());
        for (payload, record) in entries.iter().zip(records) {
            match record {
                WalRecord::Ingest { meta, code, image_doc, rendered_doc } => {
                    if meta.id.0 as usize != catalog.metadata.len() {
                        result = Err(EarthQubeError::Persist(format!(
                            "replicated record for {} carries dense id {}, expected {}",
                            meta.name,
                            meta.id.0,
                            catalog.metadata.len()
                        )));
                        break;
                    }
                    let name = meta.name.clone();
                    if let Err(e) =
                        apply_ingest(catalog, &self.index, meta, code, image_doc, rendered_doc)
                    {
                        result = Err(EarthQubeError::Persist(format!(
                            "replicated record for {name} does not apply: {e}"
                        )));
                        break;
                    }
                    self.ingested_images.fetch_add(1, Ordering::Relaxed);
                    ingested = true;
                }
                WalRecord::Feedback { text, category } => {
                    let feedback = catalog.feedback;
                    if let Err(e) =
                        feedback.submit(&mut catalog.database, &text, category.as_deref())
                    {
                        result = Err(EarthQubeError::Persist(format!(
                            "replicated feedback record does not apply: {e}"
                        )));
                        break;
                    }
                }
            }
            let Some(att) = wal.as_mut() else {
                result = Err(EarthQubeError::Persist(
                    "the replica lost its persistence attachment".into(),
                ));
                break;
            };
            match att.writer.append(payload) {
                Ok(bytes) => att.segment_bytes += bytes,
                Err(e) => {
                    *wal = None;
                    result = Err(e);
                    break;
                }
            }
            applied += 1;
        }
        if applied > 0 {
            if let Some(att) = wal.as_mut() {
                // lint:allow(lock) replicated records must be crash-durable before the pull is acknowledged, same contract as ingest
                if let Err(e) = att.writer.sync() {
                    *wal = None;
                    if result.is_ok() {
                        result = Err(e);
                    }
                }
            }
        }
        // Rotate only after a fully-applied, synced batch — a partial
        // batch stays on the live segment so the durable position matches
        // exactly what was applied.
        if result.is_ok() && rotate {
            if let Some(att) = wal.as_mut() {
                result = att.rotate();
            }
        }
        if ingested {
            self.cache.clear();
        }
        result.map(|_| applied)
    }

    /// Promotes a replica to primary.  The replica's applied state is cut
    /// into a **full** checkpoint of its attached directory, which stamps
    /// a *fresh* WAL generation and starts the segment numbering above
    /// every file on disk — so a resurrected old primary (or a replica
    /// still following it) presenting the old generation is fenced: its
    /// pulls answer `reseed`, and its unreplicated suffix is discarded by
    /// re-seeding.  Only then does the server start accepting writes.
    ///
    /// The caller must have stopped this replica's own pull loop first
    /// (see `replicate::Replica::promote`, which does).
    ///
    /// # Errors
    /// Fails with [`EarthQubeError::Persist`] when detached or if the
    /// promotion checkpoint fails — the server then stays a replica and
    /// is left *detached*; durability requires a successful retry.
    pub fn promote(&self) -> Result<(), EarthQubeError> {
        if self.is_primary() {
            return Ok(());
        }
        let _serial = self.ckpt_serial.lock();
        // Drop the attachment first: the full checkpoint re-locks the
        // directory and replaces the lineage wholesale.  The replica has
        // no other writer (its pull loop is stopped, and ingest is still
        // rejected until the flag flips below), so nothing can slip into
        // the gap.
        let dir = match self.wal.lock().take() {
            Some(att) => att.dir.clone(),
            None => {
                return Err(EarthQubeError::Persist(
                    "promotion requires a persistence attachment".into(),
                ))
            }
        };
        self.checkpoint_full(&dir)?;
        self.primary.store(true, Ordering::Release);
        Ok(())
    }

    /// Records a replica's pull position for the retention floor.
    fn note_replica_position(&self, replica_id: u64, segment: u32) {
        let mut marks = self.repl_floor.lock();
        marks.insert(replica_id, ReplicaMark { segment, seen: Instant::now() });
    }

    /// The lowest WAL segment a recently-active replica still needs, or
    /// `fallback` when none are live.  Prunes marks older than
    /// [`REPL_RETENTION_TTL`], so a dead replica cannot pin segments (and
    /// thus disk) forever.
    fn replication_floor(&self, fallback: u32) -> u32 {
        let now = Instant::now();
        let mut marks = self.repl_floor.lock();
        marks.retain(|_, mark| now.duration_since(mark.seen) <= REPL_RETENTION_TTL);
        marks.values().map(|mark| mark.segment).min().map_or(fallback, |min| min.min(fallback))
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.stop_checkpointer();
    }
}

/// Applies one prepared patch to the catalog and the CBIR index — the
/// shared core of live [`QueryServer::ingest`] and WAL replay, which is
/// what guarantees a recovered server is byte-identical to one that never
/// crashed.  The caller must hold the catalog write lock and have assigned
/// the dense id.
fn apply_ingest(
    catalog: &mut Catalog,
    index: &ShardedHashIndex,
    meta: PatchMetadata,
    code: BinaryCode,
    image_doc: Document,
    rendered_doc: Document,
) -> Result<(), EarthQubeError> {
    insert_patch_docs(&mut catalog.database, &meta, image_doc, rendered_doc)?;
    index.insert(meta.id.0 as u64, code.clone());
    catalog.name_to_code.insert(meta.name.clone(), code);
    catalog.id_to_name.push(meta.name.clone());
    catalog.metadata.push(meta);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_bigearthnet::{ArchiveGenerator, GeneratorConfig};

    fn server(n: usize, seed: u64, serve: ServeConfig) -> (QueryServer, Archive) {
        let archive = ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate();
        let mut config = EarthQubeConfig::fast(seed);
        config.train_model = false;
        (QueryServer::build(&archive, config, serve).unwrap(), archive)
    }

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryServer>();
    }

    #[test]
    fn server_responses_match_the_sequential_engine() {
        let archive = ArchiveGenerator::new(GeneratorConfig::tiny(40, 91)).unwrap().generate();
        let mut config = EarthQubeConfig::fast(91);
        config.train_model = false;
        let engine = EarthQube::build(&archive, config.clone()).unwrap();
        let srv = QueryServer::build(&archive, config, ServeConfig::default()).unwrap();

        let query = ImageQuery::all();
        assert_eq!(srv.search(&query).unwrap(), engine.search(&query).unwrap());

        let name = &archive.patches()[3].meta.name;
        assert_eq!(srv.similar_to(name, 7).unwrap(), engine.similar_to(name, 7).unwrap());

        let external =
            ArchiveGenerator::new(GeneratorConfig::tiny(1, 555)).unwrap().generate_patch(0);
        assert_eq!(
            srv.search_by_new_example(&external, 5).unwrap(),
            engine.search_by_new_example(&external, 5).unwrap()
        );

        // Filtered similarity search: server == engine, for every planner
        // mode, for both k-NN and radius — and bitmap == post-filter.
        let filter = ImageQuery::all().with_seasons(vec![
            eq_bigearthnet::patch::Season::Summer,
            eq_bigearthnet::patch::Season::Winter,
        ]);
        for mode in
            [PrefilterMode::Auto, PrefilterMode::ForceBitmap, PrefilterMode::ForcePostFilter]
        {
            assert_eq!(
                srv.similar_to_filtered(name, 7, &filter, mode).unwrap(),
                engine.similar_to_filtered(name, 7, &filter, mode).unwrap(),
                "knn mode {mode:?}"
            );
            assert_eq!(
                srv.similar_within_filtered(name, 24, &filter, mode).unwrap(),
                engine.similar_within_filtered(name, 24, &filter, mode).unwrap(),
                "radius mode {mode:?}"
            );
        }
        assert_eq!(
            srv.similar_to_filtered(name, 7, &filter, PrefilterMode::ForceBitmap).unwrap().response,
            srv.similar_to_filtered(name, 7, &filter, PrefilterMode::ForcePostFilter)
                .unwrap()
                .response,
        );
        assert!(matches!(
            srv.similar_to_filtered("ghost", 3, &filter, PrefilterMode::Auto),
            Err(EarthQubeError::UnknownImage(_))
        ));

        // The asset registry is carried over from the consumed engine.
        assert!(srv.registry().pipeline("earthqube-cbir").is_some());
        assert_eq!(srv.registry().discover_by_kind(eq_agora::AssetKind::Service).len(), 1);
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let (srv, archive) = server(30, 92, ServeConfig::default());
        let name = &archive.patches()[0].meta.name;
        let first = srv.similar_to(name, 5).unwrap();
        let second = srv.similar_to(name, 5).unwrap();
        assert_eq!(first, second);
        let stats = srv.stats();
        assert_eq!(stats.queries_served, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(stats.cache_entries, 1);
        // A different k is a different fingerprint.
        let _ = srv.similar_to(name, 6).unwrap();
        assert_eq!(srv.stats().cache_entries, 2);
    }

    #[test]
    fn filtered_queries_hit_the_cache_and_ingest_invalidates_them() {
        let (srv, archive) = server(30, 96, ServeConfig::default());
        let name = &archive.patches()[0].meta.name;
        let filter = ImageQuery::all().with_seasons(vec![
            eq_bigearthnet::patch::Season::Summer,
            eq_bigearthnet::patch::Season::Winter,
        ]);

        // Second identical filtered query is a hit with an identical
        // response, plan included.
        let first = srv.similar_to_filtered(name, 5, &filter, PrefilterMode::Auto).unwrap();
        let second = srv.similar_to_filtered(name, 5, &filter, PrefilterMode::Auto).unwrap();
        assert_eq!(first, second);
        let stats = srv.stats();
        assert_eq!(stats.queries_served, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_entries, 1);

        // The mode, k, filter and request kind are all part of the key.
        srv.similar_to_filtered(name, 5, &filter, PrefilterMode::ForcePostFilter).unwrap();
        srv.similar_to_filtered(name, 6, &filter, PrefilterMode::Auto).unwrap();
        srv.similar_to_filtered(name, 5, &ImageQuery::all(), PrefilterMode::Auto).unwrap();
        srv.similar_within_filtered(name, 24, &filter, PrefilterMode::Auto).unwrap();
        assert_eq!(srv.stats().cache_entries, 5);
        assert_eq!(srv.stats().cache_hits, 1, "distinct filtered keys must all miss");

        // Radius queries replay from the cache too.
        let within = srv.similar_within_filtered(name, 24, &filter, PrefilterMode::Auto).unwrap();
        assert_eq!(srv.stats().cache_hits, 2);

        // Ingest clears filtered entries like every other entry: the next
        // filtered query recomputes over the post-ingest catalog.
        let extra = ArchiveGenerator::new(GeneratorConfig::tiny(3, 778)).unwrap().generate();
        srv.ingest(extra.patches()).unwrap();
        assert_eq!(srv.stats().cache_entries, 0, "ingest must clear the cache");
        let recomputed =
            srv.similar_within_filtered(name, 24, &filter, PrefilterMode::Auto).unwrap();
        assert_eq!(srv.stats().cache_hits, 2, "post-ingest filtered query must recompute");
        assert!(recomputed.response.total() >= within.response.total());
    }

    #[test]
    fn cache_is_bounded_and_evicts_least_recently_used() {
        let (srv, archive) = server(20, 93, ServeConfig { shards: 2, cache_capacity: 2 });
        let names: Vec<&String> = archive.patches().iter().map(|p| &p.meta.name).collect();
        srv.similar_to(names[0], 3).unwrap();
        srv.similar_to(names[1], 3).unwrap();
        srv.similar_to(names[0], 3).unwrap(); // refresh entry 0
        srv.similar_to(names[2], 3).unwrap(); // evicts entry 1
        assert_eq!(srv.stats().cache_entries, 2);
        srv.similar_to(names[0], 3).unwrap(); // still cached
        let stats = srv.stats();
        assert_eq!(stats.cache_hits, 2);
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let (srv, archive) = server(15, 94, ServeConfig::uncached(4));
        let name = &archive.patches()[0].meta.name;
        srv.similar_to(name, 5).unwrap();
        srv.similar_to(name, 5).unwrap();
        let stats = srv.stats();
        assert_eq!(stats.cache_entries, 0);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.queries_served, 2);
    }

    #[test]
    fn ingest_appends_and_invalidates_the_cache() {
        let (srv, _) = server(25, 95, ServeConfig::default());
        let before = srv.search(&ImageQuery::all()).unwrap();
        assert_eq!(before.total(), 25);
        assert_eq!(srv.stats().cache_entries, 1);

        let extra = ArchiveGenerator::new(GeneratorConfig::tiny(3, 777)).unwrap().generate();
        let report = srv.ingest(extra.patches()).unwrap();
        assert_eq!(report.metadata_docs, 3);
        assert_eq!(srv.stats().cache_entries, 0, "ingest must clear the cache");
        assert_eq!(srv.archive_size(), 28);

        let after = srv.search(&ImageQuery::all()).unwrap();
        assert_eq!(after.total(), 28, "the cached pre-ingest result must not be served");

        // The appended images are retrievable by similarity and metadata.
        let new_name = &extra.patches()[0].meta.name;
        assert!(srv.metadata_of(new_name).is_some());
        let hits = srv.similar_to(new_name, 4).unwrap();
        assert!(hits.total() > 0);
        assert_eq!(srv.stats().ingested_images, 3);
    }

    #[test]
    fn duplicate_ingest_is_rejected() {
        let (srv, archive) = server(10, 96, ServeConfig::default());
        let err = srv.ingest(&archive.patches()[..1]).unwrap_err();
        assert!(matches!(err, EarthQubeError::BadRequest(_)));
        assert_eq!(srv.archive_size(), 10);
    }

    #[test]
    fn no_op_ingest_keeps_the_cache_warm() {
        let (srv, archive) = server(10, 101, ServeConfig::default());
        srv.search(&ImageQuery::all()).unwrap();
        assert_eq!(srv.stats().cache_entries, 1);
        // Neither an empty batch nor an up-front duplicate rejection
        // changed any state, so neither may evict cached results.
        srv.ingest(&[]).unwrap();
        assert_eq!(srv.stats().cache_entries, 1);
        srv.ingest(&archive.patches()[..1]).unwrap_err();
        assert_eq!(srv.stats().cache_entries, 1);
    }

    #[test]
    fn workload_runs_across_worker_counts() {
        let (srv, archive) = server(30, 97, ServeConfig::uncached(4));
        let mut requests: Vec<QueryRequest> = archive
            .patches()
            .iter()
            .take(9)
            .map(|p| QueryRequest::SimilarTo { name: p.meta.name.clone(), k: 5 })
            .collect();
        requests.push(QueryRequest::Metadata(ImageQuery::all()));
        let sequential: Vec<_> = requests.iter().map(|r| srv.execute(r).unwrap()).collect();
        for workers in [1, 2, 4, 32] {
            let results = srv.run_workload(&requests, workers);
            assert_eq!(results.len(), requests.len());
            for (got, want) in results.into_iter().zip(&sequential) {
                assert_eq!(&got.unwrap(), want, "workload results must not depend on workers");
            }
        }
        assert!(srv.run_workload(&[], 4).is_empty());
    }

    #[test]
    fn workload_surfaces_per_request_errors() {
        let (srv, _) = server(10, 98, ServeConfig::default());
        let requests = vec![
            QueryRequest::SimilarTo { name: "ghost".into(), k: 3 },
            QueryRequest::Metadata(ImageQuery::all()),
        ];
        let results = srv.run_workload(&requests, 2);
        assert!(matches!(results[0], Err(EarthQubeError::UnknownImage(_))));
        assert_eq!(results[1].as_ref().unwrap().total(), 10);
    }

    #[test]
    fn feedback_flows_through_the_write_path() {
        let (srv, _) = server(8, 99, ServeConfig::default());
        srv.submit_feedback("fast!", Some("reaction")).unwrap();
        srv.submit_feedback("more bands please", None).unwrap();
        assert_eq!(srv.list_feedback().unwrap().len(), 2);
        assert!(matches!(srv.submit_feedback(" ", None), Err(EarthQubeError::BadRequest(_))));
    }

    #[test]
    fn stats_render_is_human_readable() {
        let (srv, archive) = server(12, 100, ServeConfig::default());
        srv.similar_to(&archive.patches()[0].meta.name, 3).unwrap();
        let text = srv.stats().render();
        assert!(text.contains("1 queries served"));
        assert!(text.contains("12 images indexed"));
        assert!(text.contains("shard occupancy"));
        assert!(!format!("{srv:?}").is_empty());
    }

    /// A scratch directory that cleans up after itself, so repeated test
    /// runs never see a stale snapshot.
    struct ScratchDir(std::path::PathBuf);

    impl ScratchDir {
        fn new(name: &str) -> Self {
            let path = std::env::temp_dir().join(format!("eq_serve_{name}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            ScratchDir(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn checkpoint_and_recover_roundtrip_byte_identically() {
        let dir = ScratchDir::new("roundtrip");
        let archive = ArchiveGenerator::new(GeneratorConfig::tiny(30, 201)).unwrap().generate();
        let mut config = EarthQubeConfig::fast(201);
        config.milan.epochs = 3;
        let srv = QueryServer::build(&archive, config, ServeConfig::default()).unwrap();
        srv.checkpoint(dir.path()).unwrap();

        // Post-checkpoint writes land in the WAL and must survive recovery.
        let extra = ArchiveGenerator::new(GeneratorConfig::tiny(4, 919)).unwrap().generate();
        srv.ingest(extra.patches()).unwrap();
        srv.submit_feedback("persist me", Some("reaction")).unwrap();

        // Capture the live server's answers, then drop it: recovery takes
        // the WAL file lock, which refuses to coexist with a live writer.
        let name = &extra.patches()[1].meta.name;
        let external =
            ArchiveGenerator::new(GeneratorConfig::tiny(1, 3131)).unwrap().generate_patch(0);
        let expected_size = srv.archive_size();
        let expected_feedback = srv.list_feedback().unwrap();
        let expected_occupancy = srv.stats().shard_occupancy;
        let expected_all = srv.search(&ImageQuery::all()).unwrap();
        let expected_similar = srv.similar_to(name, 6).unwrap();
        let expected_new_example = srv.search_by_new_example(&external, 5).unwrap();
        drop(srv);

        let back = QueryServer::recover(dir.path()).unwrap();
        assert_eq!(back.archive_size(), expected_size);
        assert_eq!(back.stats().ingested_images, 4, "WAL replay counts as live ingest");
        assert_eq!(back.list_feedback().unwrap(), expected_feedback);
        assert_eq!(back.stats().shard_occupancy, expected_occupancy);

        // Byte-identical responses, including the model-dependent
        // query-by-new-example path (the model weights round-tripped).
        assert_eq!(back.search(&ImageQuery::all()).unwrap(), expected_all);
        assert_eq!(back.similar_to(name, 6).unwrap(), expected_similar);
        assert_eq!(back.search_by_new_example(&external, 5).unwrap(), expected_new_example);
        // The registry is rebuilt from the configuration.
        assert!(back.registry().pipeline("earthqube-cbir").is_some());
    }

    #[test]
    fn open_builds_cold_and_recovers_warm() {
        let dir = ScratchDir::new("open");
        let archive = ArchiveGenerator::new(GeneratorConfig::tiny(12, 202)).unwrap().generate();
        let mut config = EarthQubeConfig::fast(202);
        config.train_model = false;
        let first = QueryServer::open(dir.path(), &archive, config.clone(), ServeConfig::default())
            .unwrap();
        first
            .ingest(
                ArchiveGenerator::new(GeneratorConfig::tiny(2, 920)).unwrap().generate().patches(),
            )
            .unwrap();
        drop(first);
        // Second open must recover (14 images), not rebuild (12).
        let second =
            QueryServer::open(dir.path(), &archive, config, ServeConfig::default()).unwrap();
        assert_eq!(second.archive_size(), 14);
    }

    /// Regression test for the checkpoint crash-atomicity window: a crash
    /// *between* publishing a new manifest and retiring the covered WAL
    /// segments leaves an already-covered segment on disk.  Recovery must
    /// ignore it — replaying it would double-apply (or fail on) writes the
    /// new checkpoint's chunks already contain.
    #[test]
    fn covered_segment_from_an_interrupted_retirement_is_ignored() {
        let dir = ScratchDir::new("stale_wal");
        let (srv, _) = server(10, 205, ServeConfig::default());
        let full = srv.checkpoint(dir.path()).unwrap();
        assert_eq!(full.kind, CheckpointKind::Full);
        // One logged ingest lands in the first segment of the lineage.
        let extra = ArchiveGenerator::new(GeneratorConfig::tiny(2, 922)).unwrap().generate();
        srv.ingest(extra.patches()).unwrap();
        // A full checkpoint into an empty directory starts its lineage at
        // segment 0.
        let first = dir.path().join(persist::segment_file_name(0));
        let covered = std::fs::read(&first).unwrap();
        // Second checkpoint: incremental, covers the ingest and retires
        // the segment.  Simulate the crash window by restoring it.
        let incr = srv.checkpoint(dir.path()).unwrap();
        assert_eq!(incr.kind, CheckpointKind::Incremental);
        assert!(incr.segments_retired >= 1, "the covered segment must retire");
        let expected = srv.search(&ImageQuery::all()).unwrap();
        drop(srv); // releases the directory lock
        std::fs::write(&first, &covered).unwrap();

        let recovered = QueryServer::recover(dir.path()).unwrap();
        assert_eq!(recovered.archive_size(), 12, "covered segment must not double-apply");
        assert_eq!(recovered.search(&ImageQuery::all()).unwrap(), expected);
    }

    /// The incremental path: a second checkpoint after a small ingest
    /// writes deltas (a fraction of the full snapshot), retires the
    /// covered segment, and a third checkpoint with nothing dirty skips.
    #[test]
    fn incremental_checkpoints_write_deltas_and_skip_when_clean() {
        let dir = ScratchDir::new("incremental");
        let (srv, _) = server(30, 208, ServeConfig::default());
        let full = srv.checkpoint(dir.path()).unwrap();
        assert_eq!(full.kind, CheckpointKind::Full);
        assert!(full.bytes_written > 0);

        let extra = ArchiveGenerator::new(GeneratorConfig::tiny(1, 923)).unwrap().generate();
        srv.ingest(extra.patches()).unwrap();
        let incr = srv.checkpoint(dir.path()).unwrap();
        assert_eq!(incr.kind, CheckpointKind::Incremental);
        assert!(incr.bytes_written > 0);
        assert!(
            incr.bytes_written * 10 < full.bytes_written,
            "a 1-patch incremental checkpoint ({} B) must write <10% of the full \
             snapshot ({} B)",
            incr.bytes_written,
            full.bytes_written
        );
        assert!(incr.segments_retired >= 1);

        let skipped = srv.checkpoint(dir.path()).unwrap();
        assert_eq!(skipped.kind, CheckpointKind::Skipped);
        assert_eq!(skipped.bytes_written, 0);

        // The incremental chain recovers to the same answers.
        let expected = srv.search(&ImageQuery::all()).unwrap();
        drop(srv);
        let back = QueryServer::recover(dir.path()).unwrap();
        assert_eq!(back.archive_size(), 31);
        assert_eq!(back.search(&ImageQuery::all()).unwrap(), expected);
    }

    /// Segment rotation: with a tiny limit every batch seals a segment,
    /// the files stack up, recovery replays the whole chain, and the next
    /// checkpoint retires all of them.
    #[test]
    fn rotated_segments_replay_in_order_and_retire() {
        let dir = ScratchDir::new("rotate");
        let (srv, _) = server(6, 209, ServeConfig::default());
        srv.checkpoint(dir.path()).unwrap();
        srv.set_segment_limit(1); // rotate after every synced batch
        for seed in [931u64, 932, 933] {
            let extra = ArchiveGenerator::new(GeneratorConfig::tiny(1, seed)).unwrap().generate();
            srv.ingest(extra.patches()).unwrap();
        }
        let segments = |dir: &Path| {
            let mut n = 0;
            for entry in std::fs::read_dir(dir).unwrap() {
                let name = entry.unwrap().file_name();
                if name.to_string_lossy().ends_with(".eqw") {
                    n += 1;
                }
            }
            n
        };
        assert!(segments(dir.path()) >= 3, "each batch must seal its segment");
        let expected = srv.search(&ImageQuery::all()).unwrap();
        drop(srv);

        let back = QueryServer::recover(dir.path()).unwrap();
        assert_eq!(back.archive_size(), 9);
        assert_eq!(back.search(&ImageQuery::all()).unwrap(), expected);
        let stats = back.checkpoint(dir.path()).unwrap();
        assert_eq!(stats.kind, CheckpointKind::Incremental);
        assert!(stats.segments_retired >= 3, "the sealed chain must retire wholesale");
        assert_eq!(segments(dir.path()), 1, "only the fresh live segment remains");
    }

    /// The background checkpointer: flushes dirty state on its own, counts
    /// its passes, and shuts down cleanly (also via `Drop`).
    #[test]
    fn background_checkpointer_flushes_dirty_state() {
        let dir = ScratchDir::new("checkpointer");
        let (srv, _) = server(8, 210, ServeConfig::default());
        let srv = std::sync::Arc::new(srv);
        srv.checkpoint(dir.path()).unwrap();
        srv.start_checkpointer(Duration::from_secs(3600)).unwrap();
        assert!(srv.start_checkpointer(Duration::from_secs(3600)).is_err(), "one at a time");

        let extra = ArchiveGenerator::new(GeneratorConfig::tiny(2, 924)).unwrap().generate();
        srv.ingest(extra.patches()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while srv.checkpointer_stats().completed == 0 {
            assert!(std::time::Instant::now() < deadline, "checkpointer never flushed");
            srv.trigger_checkpoint();
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = srv.checkpointer_stats();
        assert!(stats.passes >= 1);
        assert_eq!(stats.failures, 0);
        srv.stop_checkpointer();
        // Idempotent, and a fresh one can start afterwards.
        srv.stop_checkpointer();
        srv.start_checkpointer(Duration::from_secs(3600)).unwrap();
        drop(srv); // Drop stops the second checkpointer

        let back = QueryServer::recover(dir.path()).unwrap();
        assert_eq!(back.archive_size(), 10, "the background flush covered the ingest");
    }

    /// A detached server (never checkpointed) reports no checkpointable
    /// state, and `checkpoint_if_dirty` is a clean no-op.
    #[test]
    fn checkpoint_if_dirty_is_a_noop_when_detached() {
        let (srv, _) = server(5, 211, ServeConfig::default());
        assert_eq!(srv.checkpoint_if_dirty().unwrap(), None);
    }

    /// The WAL file lock: a directory serves exactly one live writer, so a
    /// second instance appending interleaved records can never corrupt the
    /// log.  The lock dies with its holder (flock semantics), so a crashed
    /// server never wedges its directory.
    #[test]
    fn concurrent_recovery_of_the_same_directory_is_refused() {
        let dir = ScratchDir::new("lock");
        let (srv, _) = server(8, 206, ServeConfig::default());
        srv.checkpoint(dir.path()).unwrap();
        assert!(matches!(QueryServer::recover(dir.path()), Err(EarthQubeError::Persist(_))));
        drop(srv);
        assert!(QueryServer::recover(dir.path()).is_ok());
    }

    /// `shards: 0` is normalized at construction, so the value the server
    /// reports and persists is the one in effect — its own snapshot must
    /// always recover.
    #[test]
    fn zero_shard_config_is_normalized_and_roundtrips() {
        let dir = ScratchDir::new("zero_shards");
        let (srv, _) = server(6, 207, ServeConfig { shards: 0, cache_capacity: 16 });
        assert_eq!(srv.serve_config().shards, 1);
        srv.checkpoint(dir.path()).unwrap();
        drop(srv);
        let back = QueryServer::recover(dir.path()).unwrap();
        assert_eq!(back.serve_config().shards, 1);
    }

    #[test]
    fn recovering_nothing_is_a_clean_error() {
        let dir = ScratchDir::new("empty");
        assert!(matches!(QueryServer::recover(dir.path()), Err(EarthQubeError::Persist(_))));
    }

    #[test]
    fn recovered_server_keeps_logging_new_writes() {
        let dir = ScratchDir::new("relog");
        let (srv, _) = server(10, 203, ServeConfig::default());
        srv.checkpoint(dir.path()).unwrap();
        drop(srv); // releases the WAL lock for the recovering instance
        let first = QueryServer::recover(dir.path()).unwrap();
        first
            .ingest(
                ArchiveGenerator::new(GeneratorConfig::tiny(3, 921)).unwrap().generate().patches(),
            )
            .unwrap();
        drop(first);
        let second = QueryServer::recover(dir.path()).unwrap();
        assert_eq!(second.archive_size(), 13, "writes after recovery must be durable too");
    }

    /// Regression test for the stats-snapshot race: counters are updated
    /// once per query outcome under a single lock, so at *every* instant a
    /// snapshot must satisfy `queries_served == cache_hits + cache_misses`
    /// (the workload below has no failing queries).  The pre-fix code
    /// bumped `queries_served` at query entry and the hit/miss counter at
    /// the outcome, so a concurrent snapshot could observe in-flight
    /// queries as served-but-unclassified and report a skewed hit rate.
    #[test]
    fn stats_snapshots_are_consistent_mid_workload() {
        let (srv, archive) = server(16, 204, ServeConfig::default());
        let names: Vec<String> = archive.patches().iter().map(|p| p.meta.name.clone()).collect();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let srv = &srv;
                let names = &names;
                scope.spawn(move || {
                    for i in 0..150usize {
                        let name = &names[(t * 37 + i) % names.len()];
                        srv.similar_to(name, 3 + (i % 3)).unwrap();
                    }
                });
            }
            let srv = &srv;
            scope.spawn(move || {
                for _ in 0..400 {
                    let stats = srv.stats();
                    assert_eq!(
                        stats.queries_served,
                        stats.cache_hits + stats.cache_misses,
                        "snapshot mixes counters from different instants"
                    );
                    let rate = stats.cache_hit_rate();
                    assert!((0.0..=1.0).contains(&rate));
                }
            });
        });
        let stats = srv.stats();
        assert_eq!(stats.queries_served, 600);
        assert_eq!(stats.cache_hits + stats.cache_misses, 600);
    }

    #[test]
    fn fingerprints_distinguish_request_kinds() {
        let a = CacheKey::Similar("p".into(), 5);
        let b = CacheKey::Similar("p".into(), 6);
        let c = CacheKey::Metadata(ImageQuery::all());
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }
}
