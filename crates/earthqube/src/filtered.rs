//! Bitmap-prefiltered similarity search (experiment E13): combine the
//! query panel's metadata filter with CBIR so "similar images" can be
//! restricted to, say, agricultural patches in Austria acquired in summer.
//!
//! Two execution strategies produce byte-identical results:
//!
//! * **Bitmap prefilter** — compile the filter's indexable prefix against
//!   the metadata collection's posting bitmaps
//!   ([`Collection::compile_prefilter`](eq_docstore::Collection::compile_prefilter)),
//!   evaluate the residual filter only on the bitmap's survivors, and map
//!   the matching documents to an [`IdMask`] over dense patch ids.  The
//!   Hamming kernels then skip every masked-out row *before* paying for a
//!   distance computation.
//! * **Scan-then-post-filter** — evaluate the full filter on every
//!   metadata document (the pre-bitmap baseline), then run the same masked
//!   kernels over the resulting mask.
//!
//! Both strategies compute the *exact* set of filter-matching images
//! before any distance work, so the downstream k-NN / radius selection
//! sees the same mask either way — that is what makes the responses
//! byte-identical (pinned by `tests/proptest_filtered.rs`) and what keeps
//! the bounded top-k correct: a superset mask fed to a size-`k` heap could
//! surface images the residual would later reject, silently shrinking the
//! result below `k`.
//!
//! The planner picks between them from the compiled bitmap's cardinality:
//! a selective filter (candidates ≤ half the collection) pays one posting
//! walk plus residual checks on the candidates, while a broad filter falls
//! back to the full scan whose per-document cost needs no posting walk.

use eq_docstore::{Collection, Filter, Value};
use eq_hashindex::{Bitmap, IdMask};

use crate::engine::SearchResponse;
use crate::schema::fields;

/// How a filtered similarity search chooses its execution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefilterMode {
    /// Cost-based choice: use the bitmap prefilter when the filter
    /// compiles to a candidate set no larger than half the collection,
    /// otherwise scan-then-post-filter.
    #[default]
    Auto,
    /// Use the bitmap prefilter whenever the filter compiles to a bitmap
    /// at all (benchmark / test knob).
    ForceBitmap,
    /// Always scan-then-post-filter (benchmark / test knob).
    ForcePostFilter,
}

/// The strategy a filtered similarity search actually executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterStrategy {
    /// Posting-bitmap candidates, residual on survivors only.
    BitmapPrefilter,
    /// Full metadata scan with per-document filter evaluation.
    PostFilter,
}

/// How a filtered similarity search was planned and executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilteredPlan {
    /// The strategy that ran.
    pub strategy: FilterStrategy,
    /// Cardinality of the compiled candidate bitmap (`None` when nothing
    /// in the filter was indexable).  Reported for both strategies — it is
    /// the number the planner based its decision on.
    pub candidates: Option<u64>,
    /// Whether a residual filter had to run on the candidates (`false`
    /// means the bitmap alone was exact).
    pub residual: bool,
    /// Exact number of archive images matching the filter — the universe
    /// the similarity search ranked.
    pub matching: usize,
}

/// A filtered similarity search response: the ordinary result panel plus
/// the planning report.
#[derive(Debug, Clone, PartialEq)]
pub struct FilteredResponse {
    /// The result panel, statistics and (absent) metadata plan — the same
    /// shape the unfiltered CBIR paths return.
    pub response: SearchResponse,
    /// How the filter was executed.
    pub plan: FilteredPlan,
}

/// Resolves a metadata filter to the exact set of matching dense patch
/// ids, as an [`IdMask`] the masked Hamming kernels consume, plus the
/// planning report.  Shared by the sequential engine and the concurrent
/// server — both delegating here is what keeps them byte-identical.
pub(crate) fn matching_item_mask(
    coll: &Collection,
    filter: &Filter,
    mode: PrefilterMode,
) -> (IdMask, FilteredPlan) {
    let plan = coll.compile_prefilter(filter);
    let use_bitmap = match mode {
        PrefilterMode::ForcePostFilter => false,
        PrefilterMode::ForceBitmap => plan.bitmap.is_some(),
        PrefilterMode::Auto => {
            plan.cardinality().is_some_and(|c| c.saturating_mul(2) <= coll.len() as u64)
        }
    };

    // The documents' ids and the archive's dense patch ids are different
    // spaces (document ids are never reused after a rollback), so matches
    // map through the metadata document's `patch_id` field.
    let mut items = Bitmap::new();
    let mut push_item = |doc: &eq_docstore::Document| {
        if let Some(item) = doc.get(fields::PATCH_ID).and_then(Value::as_int) {
            items.insert(item as u64);
        }
    };
    if use_bitmap {
        if let Some(bitmap) = &plan.bitmap {
            for doc_id in bitmap.iter() {
                if let Some(doc) = coll.get(doc_id) {
                    if plan.residual.matches(doc) {
                        push_item(doc);
                    }
                }
            }
        }
    } else {
        for (_, doc) in coll.iter() {
            if filter.matches(doc) {
                push_item(doc);
            }
        }
    }

    let report = FilteredPlan {
        strategy: if use_bitmap {
            FilterStrategy::BitmapPrefilter
        } else {
            FilterStrategy::PostFilter
        },
        candidates: plan.cardinality(),
        residual: plan.residual != Filter::All,
        matching: items.len() as usize,
    };
    (IdMask::from_bitmap(&items), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::ingest_metadata;
    use crate::query::ImageQuery;
    use crate::schema::collections;
    use eq_bigearthnet::patch::Season;
    use eq_bigearthnet::{ArchiveGenerator, Country, GeneratorConfig};
    use eq_docstore::Database;

    fn metadata_db(n: usize, seed: u64) -> Database {
        let metas =
            ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate_metadata_only();
        let mut db = Database::new();
        ingest_metadata(&mut db, &metas).unwrap();
        db
    }

    #[test]
    fn both_strategies_resolve_the_same_mask() {
        let db = metadata_db(150, 71);
        let coll = db.collection(collections::METADATA).unwrap();
        let filter = ImageQuery::all()
            .with_countries(vec![Country::Austria, Country::Finland])
            .with_seasons(vec![Season::Summer])
            .to_filter();
        let (bitmap_mask, bitmap_plan) =
            matching_item_mask(coll, &filter, PrefilterMode::ForceBitmap);
        let (scan_mask, scan_plan) =
            matching_item_mask(coll, &filter, PrefilterMode::ForcePostFilter);
        assert_eq!(bitmap_plan.strategy, FilterStrategy::BitmapPrefilter);
        assert_eq!(scan_plan.strategy, FilterStrategy::PostFilter);
        assert_eq!(bitmap_plan.matching, scan_plan.matching);
        for id in 0..150u64 {
            assert_eq!(bitmap_mask.contains(id), scan_mask.contains(id), "patch {id}");
        }
        // Country ∧ season compiles exactly: no residual on the bitmap path.
        assert!(!bitmap_plan.residual);
        assert!(bitmap_plan.candidates.is_some());
    }

    #[test]
    fn auto_mode_picks_by_selectivity() {
        let db = metadata_db(120, 72);
        let coll = db.collection(collections::METADATA).unwrap();
        // One country out of ten is selective → bitmap.
        let selective = ImageQuery::all().with_countries(vec![Country::Austria]).to_filter();
        let (_, plan) = matching_item_mask(coll, &selective, PrefilterMode::Auto);
        assert_eq!(plan.strategy, FilterStrategy::BitmapPrefilter);
        // An unrestricted query compiles to no bitmap → post-filter scan.
        let (mask, plan) = matching_item_mask(coll, &Filter::All, PrefilterMode::Auto);
        assert_eq!(plan.strategy, FilterStrategy::PostFilter);
        assert_eq!(plan.candidates, None);
        assert_eq!(plan.matching, 120);
        assert!((0..120u64).all(|id| mask.contains(id)));
    }

    #[test]
    fn mask_is_over_patch_ids_not_document_ids() {
        let mut db = metadata_db(30, 73);
        // Delete and re-ingest a patch: its document id moves past 30 while
        // its dense patch id stays put.
        let coll = db.collection_mut(collections::METADATA).unwrap();
        let doc = coll.iter().map(|(_, d)| d.clone()).next().unwrap();
        let name = doc.get(fields::NAME).unwrap().clone();
        let patch_id = doc.get(fields::PATCH_ID).unwrap().as_int().unwrap() as u64;
        coll.delete_by_key(&name).unwrap();
        coll.insert(doc).unwrap();
        let coll = db.collection(collections::METADATA).unwrap();
        let filter = Filter::Eq(fields::NAME.into(), name);
        for mode in [PrefilterMode::ForceBitmap, PrefilterMode::ForcePostFilter] {
            let (mask, plan) = matching_item_mask(coll, &filter, mode);
            assert_eq!(plan.matching, 1);
            assert!(mask.contains(patch_id), "mask must be in patch-id space ({mode:?})");
        }
    }
}
