//! The EarthQube facade: the back-end server of the three-tier architecture
//! (§3.2), combining the data tier, the query services and the MiLaN CBIR
//! integration, and registering everything as AgoraEO assets.

use eq_agora::{asset, AssetKind, AssetRegistry};
use eq_bigearthnet::patch::{Patch, PatchMetadata};
use eq_bigearthnet::Archive;
use eq_docstore::{Database, QueryPlan};
use eq_milan::{Milan, MilanConfig};

use crate::cbir::{CbirConfig, CbirService};
use crate::feedback::FeedbackService;
use crate::filtered::{matching_item_mask, FilteredResponse, PrefilterMode};
use crate::ingest::ingest_archive;
use crate::query::ImageQuery;
use crate::results::{ResultEntry, ResultPanel};
use crate::schema::{collections, metadata_from_document};
use crate::stats::LabelStatistics;
use crate::EarthQubeError;

/// Configuration of the whole EarthQube back-end.
#[derive(Debug, Clone)]
pub struct EarthQubeConfig {
    /// MiLaN model configuration.
    pub milan: MilanConfig,
    /// CBIR service configuration.
    pub cbir: CbirConfig,
    /// Result-panel page size.
    pub page_size: usize,
    /// Whether to train MiLaN during [`EarthQube::build`] (disable only in
    /// tests that exercise the untrained baseline).
    pub train_model: bool,
}

impl Default for EarthQubeConfig {
    fn default() -> Self {
        Self {
            milan: MilanConfig::default(),
            cbir: CbirConfig::default(),
            page_size: 50,
            train_model: true,
        }
    }
}

impl EarthQubeConfig {
    /// A small, fast configuration for examples and tests.
    pub fn fast(seed: u64) -> Self {
        Self { milan: MilanConfig::fast(64, seed), ..Self::default() }
    }
}

/// The response of a metadata search or a similarity search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// The result panel (pagination, cart source, text rendering).
    pub panel: ResultPanel,
    /// Label statistics over the retrieved images (Figure 2-4).
    pub statistics: LabelStatistics,
    /// How the metadata query was executed (`None` for pure CBIR queries).
    pub plan: Option<QueryPlan>,
}

impl SearchResponse {
    /// Total number of matching images.
    pub fn total(&self) -> usize {
        self.panel.total()
    }
}

/// The EarthQube back-end.
///
/// All query methods take `&self`; the only `&mut self` entry point is
/// [`submit_feedback`](Self::submit_feedback), which writes to the data
/// tier.  For concurrent serving, hand the built engine to
/// [`QueryServer::from_engine`](crate::serve::QueryServer::from_engine),
/// which shares the read path across worker threads.
#[derive(Debug)]
pub struct EarthQube {
    pub(crate) config: EarthQubeConfig,
    pub(crate) database: Database,
    pub(crate) metadata: Vec<PatchMetadata>,
    pub(crate) cbir: Option<CbirService>,
    pub(crate) feedback: FeedbackService,
    pub(crate) registry: AssetRegistry,
}

impl EarthQube {
    /// Builds the full back-end from an archive: ingests the four
    /// collections, trains MiLaN, builds the CBIR index and registers the
    /// assets in the AgoraEO registry.
    ///
    /// # Errors
    /// Propagates ingestion/model-configuration errors.
    pub fn build(archive: &Archive, config: EarthQubeConfig) -> Result<Self, EarthQubeError> {
        let mut database = Database::new();
        ingest_archive(&mut database, archive)?;

        let mut model = Milan::new(config.milan.clone()).map_err(EarthQubeError::BadRequest)?;
        if config.train_model {
            model.train_on_archive(archive);
        }
        let cbir = CbirService::build(model, archive, config.cbir);
        let registry = build_registry(&config);

        Ok(Self {
            config,
            database,
            metadata: archive.metadata(),
            cbir: Some(cbir),
            feedback: FeedbackService::new(),
            registry,
        })
    }

    /// The back-end configuration.
    pub fn config(&self) -> &EarthQubeConfig {
        &self.config
    }

    /// The underlying document database.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The AgoraEO asset registry this instance registered itself in.
    pub fn registry(&self) -> &AssetRegistry {
        &self.registry
    }

    /// The CBIR service.
    ///
    /// # Errors
    /// Fails if the service was not built.
    pub fn cbir(&self) -> Result<&CbirService, EarthQubeError> {
        self.cbir.as_ref().ok_or(EarthQubeError::CbirNotReady)
    }

    /// Number of images in the archive.
    pub fn archive_size(&self) -> usize {
        self.metadata.len()
    }

    /// The metadata of an archive image.
    pub fn metadata_of(&self, name: &str) -> Option<&PatchMetadata> {
        self.metadata.iter().find(|m| m.name == name)
    }

    /// Runs a query-panel search over the metadata collection (§3.1).
    ///
    /// # Errors
    /// Fails on an invalid query or a store error.
    pub fn search(&self, query: &ImageQuery) -> Result<SearchResponse, EarthQubeError> {
        query.validate()?;
        metadata_search(&self.database, query, self.config.page_size)
    }

    /// "Retrieve similar images" for an existing archive image (§3.3 /
    /// Figure 1): the CBIR path plus result-panel/statistics assembly.
    ///
    /// The underlying k-NN runs as a bounded top-k selection over the
    /// index's flat code arena (see `eq_hashindex::CodeArena`), so the
    /// engine never materialises or sorts the full candidate set either —
    /// the same hot path the concurrent [`QueryServer`](crate::QueryServer)
    /// serves with pooled scratches.
    ///
    /// # Errors
    /// Fails if the image is unknown or the CBIR service is missing.
    pub fn similar_to(&self, name: &str, k: usize) -> Result<SearchResponse, EarthQubeError> {
        let cbir = self.cbir()?;
        let hits = cbir.query_by_archive_image(name, k)?;
        self.response_from_hits(hits)
    }

    /// Query-by-new-example (§4): encodes an external patch on the fly and
    /// retrieves its neighbours.
    ///
    /// # Errors
    /// Fails if the CBIR service is missing.
    pub fn search_by_new_example(
        &self,
        patch: &Patch,
        k: usize,
    ) -> Result<SearchResponse, EarthQubeError> {
        let cbir = self.cbir()?;
        let hits = cbir.query_by_new_example(patch, k);
        self.response_from_hits(hits)
    }

    /// Filtered "retrieve similar images" (E13): the `k` nearest
    /// neighbours of an archive image **among the images matching the
    /// query-panel filter** — e.g. similar agricultural patches in
    /// Austria, summer acquisitions only.
    ///
    /// The filter resolves to a dense-id mask first (bitmap prefilter or
    /// post-filter scan, per `mode` — see [`PrefilterMode`]); the masked
    /// bounded top-k then skips non-matching rows before any XOR/popcount
    /// work.  Both modes return byte-identical responses.
    ///
    /// # Errors
    /// Fails on an invalid query, an unknown image or a store error.
    pub fn similar_to_filtered(
        &self,
        name: &str,
        k: usize,
        query: &ImageQuery,
        mode: PrefilterMode,
    ) -> Result<FilteredResponse, EarthQubeError> {
        query.validate()?;
        let cbir = self.cbir()?;
        let coll = self.database.collection(collections::METADATA)?;
        let (mask, plan) = matching_item_mask(coll, &query.to_filter(), mode);
        let hits = cbir.query_by_archive_image_masked(name, k, &mask)?;
        let response = self.response_from_hits(hits)?;
        Ok(FilteredResponse { response, plan })
    }

    /// Filtered radius search (E13): every archive image within the given
    /// Hamming radius of an archive image's code **and** matching the
    /// query-panel filter, excluding the query image itself.
    ///
    /// # Errors
    /// Fails on an invalid query, an unknown image or a store error.
    pub fn similar_within_filtered(
        &self,
        name: &str,
        radius: u32,
        query: &ImageQuery,
        mode: PrefilterMode,
    ) -> Result<FilteredResponse, EarthQubeError> {
        query.validate()?;
        let cbir = self.cbir()?;
        let coll = self.database.collection(collections::METADATA)?;
        let (mask, plan) = matching_item_mask(coll, &query.to_filter(), mode);
        let code =
            cbir.code_of(name).ok_or_else(|| EarthQubeError::UnknownImage(name.to_string()))?;
        let hits: Vec<crate::cbir::SimilarImage> = cbir
            .radius_query_by_code_masked(code, radius, &mask)
            .into_iter()
            .filter(|h| h.name != name)
            .collect();
        let response = self.response_from_hits(hits)?;
        Ok(FilteredResponse { response, plan })
    }

    /// Submits anonymous feedback.
    ///
    /// # Errors
    /// Fails if the text is empty.
    pub fn submit_feedback(
        &mut self,
        text: &str,
        category: Option<&str>,
    ) -> Result<i64, EarthQubeError> {
        self.feedback.submit(&mut self.database, text, category)
    }

    /// Lists all stored feedback.
    ///
    /// # Errors
    /// Fails if the feedback collection is missing.
    pub fn list_feedback(&self) -> Result<Vec<crate::feedback::FeedbackEntry>, EarthQubeError> {
        self.feedback.list(&self.database)
    }

    fn response_from_hits(
        &self,
        hits: Vec<crate::cbir::SimilarImage>,
    ) -> Result<SearchResponse, EarthQubeError> {
        let ranked: Vec<(usize, u32)> = hits.iter().map(|h| (h.id.index(), h.distance)).collect();
        response_from_ranked(&self.metadata, &ranked, self.config.page_size)
    }
}

/// Builds the AgoraEO asset registry an EarthQube instance announces
/// itself in — shared by [`EarthQube::build`] and snapshot recovery (the
/// registry holds only descriptive metadata derived from the
/// configuration, so rebuilding it is exact).
pub(crate) fn build_registry(config: &EarthQubeConfig) -> AssetRegistry {
    let registry = AssetRegistry::new();
    let _ = registry.offer(asset(
        "bigearthnet-synthetic",
        AssetKind::Dataset,
        "Synthetic BigEarthNet-MM archive",
        "eq-bigearthnet",
        &["eo", "sentinel-1", "sentinel-2"],
    ));
    let _ = registry.offer(asset(
        "milan",
        AssetKind::Model,
        &format!("Metric-learning deep hashing network ({}-bit codes)", config.milan.code_bits),
        "eq-milan",
        &["hashing", "cbir", "metric-learning"],
    ));
    let _ = registry.offer(asset(
        "hamming-hash-index",
        AssetKind::Index,
        "Hash-table index over MiLaN codes with Hamming-radius lookup",
        "eq-hashindex",
        &["cbir", "ann"],
    ));
    let _ = registry.offer(asset(
        "earthqube",
        AssetKind::Service,
        "EarthQube browser and search engine",
        "eq-earthqube",
        &["search", "eo"],
    ));
    let _ = registry.compose(
        "earthqube-cbir",
        vec![
            "bigearthnet-synthetic".into(),
            "milan".into(),
            "hamming-hash-index".into(),
            "earthqube".into(),
        ],
    );
    registry
}

/// The query-panel search shared by the sequential engine and the
/// concurrent [`QueryServer`](crate::serve::QueryServer): compiles the
/// (already validated) query to a store filter, runs the planner and
/// assembles panel, statistics and plan.
pub(crate) fn metadata_search(
    database: &Database,
    query: &ImageQuery,
    page_size: usize,
) -> Result<SearchResponse, EarthQubeError> {
    let coll = database.collection(collections::METADATA)?;
    let result = coll.find(&query.to_filter());
    let metas: Vec<PatchMetadata> = result
        .ids
        .iter()
        .filter_map(|id| coll.get(*id))
        .filter_map(metadata_from_document)
        .collect();
    let entries: Vec<ResultEntry> =
        metas.iter().map(|m| ResultEntry::from_metadata(m, None)).collect();
    let statistics = LabelStatistics::from_label_sets(metas.iter().map(|m| m.labels));
    Ok(SearchResponse {
        panel: ResultPanel::new(entries, page_size),
        statistics,
        plan: Some(result.plan),
    })
}

/// CBIR result-panel assembly shared by the sequential engine and the
/// concurrent server: maps ranked `(dense id, hamming distance)` hits to
/// result entries and label statistics.  Both paths delegating here is
/// what keeps the server byte-identical to the engine.
pub(crate) fn response_from_ranked(
    metadata: &[PatchMetadata],
    ranked: &[(usize, u32)],
    page_size: usize,
) -> Result<SearchResponse, EarthQubeError> {
    let mut entries = Vec::with_capacity(ranked.len());
    let mut label_sets = Vec::with_capacity(ranked.len());
    for &(id, distance) in ranked {
        let meta = metadata
            .get(id)
            .ok_or_else(|| EarthQubeError::UnknownImage(format!("dense patch id {id}")))?;
        entries.push(ResultEntry::from_metadata(meta, Some(distance)));
        label_sets.push(meta.labels);
    }
    Ok(SearchResponse {
        panel: ResultPanel::new(entries, page_size),
        statistics: LabelStatistics::from_label_sets(label_sets),
        plan: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{LabelFilter, LabelOperator};
    use eq_bigearthnet::labels::Label;
    use eq_bigearthnet::patch::Season;
    use eq_bigearthnet::{ArchiveGenerator, Country, GeneratorConfig};
    use eq_geo::GeoShape;

    fn build(n: usize, seed: u64) -> (EarthQube, Archive) {
        let archive = ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate();
        let mut cfg = EarthQubeConfig::fast(seed);
        cfg.milan.epochs = 5;
        let eq = EarthQube::build(&archive, cfg).unwrap();
        (eq, archive)
    }

    #[test]
    fn build_populates_database_cbir_and_registry() {
        let (eq, archive) = build(40, 51);
        assert_eq!(eq.archive_size(), 40);
        assert_eq!(eq.database().collection(collections::METADATA).unwrap().len(), 40);
        assert_eq!(eq.cbir().unwrap().len(), 40);
        assert_eq!(eq.registry().discover_by_kind(eq_agora::AssetKind::Service).len(), 1);
        assert!(eq.registry().pipeline("earthqube-cbir").is_some());
        assert!(eq.metadata_of(&archive.patches()[0].meta.name).is_some());
        assert!(eq.metadata_of("ghost").is_none());
    }

    #[test]
    fn metadata_search_filters_by_country_and_labels() {
        let (eq, archive) = build(120, 52);
        let query =
            ImageQuery::all().with_countries(vec![Country::Finland]).with_labels(LabelFilter::new(
                LabelOperator::Some,
                vec![Label::MixedForest, Label::ConiferousForest, Label::BroadLeavedForest],
            ));
        let response = eq.search(&query).unwrap();
        // Cross-check against a direct scan of the archive.
        let expected = archive
            .patches()
            .iter()
            .filter(|p| {
                p.meta.country == Country::Finland
                    && (p.meta.labels.contains(Label::MixedForest)
                        || p.meta.labels.contains(Label::ConiferousForest)
                        || p.meta.labels.contains(Label::BroadLeavedForest))
            })
            .count();
        assert_eq!(response.total(), expected);
        // Statistics only count retrieved images.
        assert_eq!(response.statistics.image_count(), expected);
        // The country attribute index drove the query.
        assert!(response.plan.is_some());
    }

    #[test]
    fn spatial_search_uses_the_geo_index() {
        let (eq, _) = build(80, 53);
        let portugal = GeoShape::Rect(Country::Portugal.bounding_box());
        let response = eq.search(&ImageQuery::all().with_shape(portugal)).unwrap();
        let plan = response.plan.unwrap();
        assert_eq!(plan.index_used.as_deref(), Some(crate::schema::fields::LOCATION));
        // Every hit really is in Portugal.
        for page in 0..response.panel.page_count() {
            for e in response.panel.page(page).entries {
                assert_eq!(e.country, "Portugal");
            }
        }
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let (eq, _) = build(10, 54);
        let bad = ImageQuery::all().with_labels(LabelFilter::new(LabelOperator::Some, vec![]));
        assert!(matches!(eq.search(&bad), Err(EarthQubeError::BadRequest(_))));
    }

    #[test]
    fn similar_to_returns_ranked_neighbours_with_statistics() {
        let (eq, archive) = build(60, 55);
        let name = &archive.patches()[2].meta.name;
        let response = eq.similar_to(name, 8).unwrap();
        assert!(response.total() <= 8);
        assert!(response.total() > 0);
        assert!(response.plan.is_none());
        let page = response.panel.page(0);
        for e in &page.entries {
            assert!(e.distance.is_some());
            assert_ne!(&e.name, name, "query image must not appear in its own results");
        }
        assert_eq!(response.statistics.image_count(), response.total());
        // Unknown query image errors.
        assert!(matches!(eq.similar_to("ghost", 5), Err(EarthQubeError::UnknownImage(_))));
    }

    #[test]
    fn filtered_similarity_restricts_results_to_the_filter() {
        let (eq, archive) = build(120, 58);
        let name = &archive.patches()[0].meta.name;
        let query = ImageQuery::all().with_seasons(vec![Season::Summer]);

        let bitmap = eq.similar_to_filtered(name, 10, &query, PrefilterMode::ForceBitmap).unwrap();
        let scan =
            eq.similar_to_filtered(name, 10, &query, PrefilterMode::ForcePostFilter).unwrap();
        assert_eq!(bitmap.response, scan.response, "strategies must agree byte-for-byte");
        assert_eq!(bitmap.plan.strategy, crate::filtered::FilterStrategy::BitmapPrefilter);
        assert_eq!(scan.plan.strategy, crate::filtered::FilterStrategy::PostFilter);
        assert_eq!(bitmap.plan.matching, scan.plan.matching);
        assert!(!bitmap.plan.residual, "season membership compiles exactly");

        // Every hit is a summer acquisition and not the query image.
        assert!(bitmap.response.total() > 0);
        for page in 0..bitmap.response.panel.page_count() {
            for e in bitmap.response.panel.page(page).entries {
                assert_ne!(&e.name, name);
                let meta = eq.metadata_of(&e.name).unwrap();
                assert_eq!(meta.season(), Season::Summer, "{} leaked through the filter", e.name);
            }
        }
    }

    #[test]
    fn filtered_radius_search_equals_post_filtering_the_unfiltered_scan() {
        let (eq, archive) = build(100, 59);
        let name = &archive.patches()[4].meta.name;
        let query = ImageQuery::all().with_countries(vec![Country::Austria, Country::Portugal]);
        let radius = eq.cbir().unwrap().code_bits() / 3;

        let filtered =
            eq.similar_within_filtered(name, radius, &query, PrefilterMode::Auto).unwrap();
        // Reference: unfiltered radius scan, then drop non-matching images.
        let code = eq.cbir().unwrap().code_of(name).unwrap().clone();
        let reference: Vec<String> = eq
            .cbir()
            .unwrap()
            .radius_query_by_code(&code, radius)
            .into_iter()
            .filter(|h| &h.name != name)
            .filter(|h| {
                let meta = eq.metadata_of(&h.name).unwrap();
                matches!(meta.country, Country::Austria | Country::Portugal)
            })
            .map(|h| h.name)
            .collect();
        let got: Vec<String> = (0..filtered.response.panel.page_count())
            .flat_map(|p| filtered.response.panel.page(p).entries)
            .map(|e| e.name.clone())
            .collect();
        assert_eq!(got, reference);
        assert!(filtered.plan.matching >= got.len());
    }

    #[test]
    fn filtered_search_validates_the_query_and_the_image() {
        let (eq, archive) = build(20, 60);
        let name = &archive.patches()[0].meta.name;
        let bad = ImageQuery::all().with_labels(LabelFilter::new(LabelOperator::Some, vec![]));
        assert!(matches!(
            eq.similar_to_filtered(name, 5, &bad, PrefilterMode::Auto),
            Err(EarthQubeError::BadRequest(_))
        ));
        assert!(matches!(
            eq.similar_to_filtered("ghost", 5, &ImageQuery::all(), PrefilterMode::Auto),
            Err(EarthQubeError::UnknownImage(_))
        ));
        assert!(matches!(
            eq.similar_within_filtered("ghost", 4, &ImageQuery::all(), PrefilterMode::Auto),
            Err(EarthQubeError::UnknownImage(_))
        ));
    }

    #[test]
    fn query_by_new_example_round_trips() {
        let (eq, _) = build(50, 56);
        let external =
            ArchiveGenerator::new(GeneratorConfig::tiny(1, 777)).unwrap().generate_patch(0);
        let response = eq.search_by_new_example(&external, 5).unwrap();
        assert_eq!(response.total(), 5);
    }

    #[test]
    fn feedback_round_trips_through_the_engine() {
        let (mut eq, _) = build(10, 57);
        eq.submit_feedback("very nice demo", Some("reaction")).unwrap();
        eq.submit_feedback("please add NDVI layer", None).unwrap();
        let all = eq.list_feedback().unwrap();
        assert_eq!(all.len(), 2);
        assert!(matches!(eq.submit_feedback("", None), Err(EarthQubeError::BadRequest(_))));
    }
}
