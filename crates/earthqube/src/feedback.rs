//! The anonymous user-feedback service (§3.2: "the collection feedback
//! stores anonymous user-provided text feedback, such as public reactions
//! and comments").

use eq_docstore::{Database, Document, Filter, Value};

use crate::schema::collections;
use crate::EarthQubeError;

/// A stored feedback entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedbackEntry {
    /// Sequential feedback id.
    pub id: i64,
    /// The free-text comment.
    pub text: String,
    /// Optional category chosen by the user (e.g. "reaction", "bug").
    pub category: Option<String>,
}

/// Stores and lists anonymous feedback in the `feedback` collection.
#[derive(Debug, Default, Clone, Copy)]
pub struct FeedbackService;

impl FeedbackService {
    /// Creates the service.
    pub fn new() -> Self {
        FeedbackService
    }

    /// Stores a feedback comment, returning its id.
    ///
    /// # Errors
    /// Fails if the text is empty or the store rejects the document.
    pub fn submit(
        &self,
        db: &mut Database,
        text: &str,
        category: Option<&str>,
    ) -> Result<i64, EarthQubeError> {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Err(EarthQubeError::BadRequest("feedback text is empty".into()));
        }
        db.create_collection(collections::FEEDBACK, "id");
        let coll = db.collection_mut(collections::FEEDBACK)?;
        let id = coll.len() as i64;
        let mut doc = Document::new().with("id", id).with("text", trimmed);
        if let Some(c) = category {
            doc.set("category", c);
        }
        coll.insert(doc)?;
        Ok(id)
    }

    /// Lists all feedback entries in submission order.
    pub fn list(&self, db: &Database) -> Result<Vec<FeedbackEntry>, EarthQubeError> {
        let coll = db.collection(collections::FEEDBACK)?;
        Ok(coll
            .find_docs(&Filter::All)
            .into_iter()
            .filter_map(|d| {
                Some(FeedbackEntry {
                    id: d.get("id")?.as_int()?,
                    text: d.get("text")?.as_str()?.to_string(),
                    category: d.get("category").and_then(Value::as_str).map(str::to_string),
                })
            })
            .collect())
    }

    /// Lists feedback entries of one category.
    pub fn list_by_category(
        &self,
        db: &Database,
        category: &str,
    ) -> Result<Vec<FeedbackEntry>, EarthQubeError> {
        Ok(self.list(db)?.into_iter().filter(|e| e.category.as_deref() == Some(category)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_list_feedback() {
        let mut db = Database::new();
        let svc = FeedbackService::new();
        let id0 = svc.submit(&mut db, "Great tool!", Some("reaction")).unwrap();
        let id1 = svc.submit(&mut db, "Map is slow when zoomed out", Some("bug")).unwrap();
        let id2 = svc.submit(&mut db, "  anonymous note  ", None).unwrap();
        assert_eq!((id0, id1, id2), (0, 1, 2));
        let all = svc.list(&db).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].text, "Great tool!");
        assert_eq!(all[2].text, "anonymous note");
        assert_eq!(all[2].category, None);
        let bugs = svc.list_by_category(&db, "bug").unwrap();
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].id, 1);
    }

    #[test]
    fn empty_feedback_is_rejected() {
        let mut db = Database::new();
        let svc = FeedbackService::new();
        assert!(matches!(svc.submit(&mut db, "   ", None), Err(EarthQubeError::BadRequest(_))));
    }

    #[test]
    fn listing_without_a_feedback_collection_errors() {
        let db = Database::new();
        let svc = FeedbackService::new();
        assert!(matches!(svc.list(&db), Err(EarthQubeError::Store(_))));
    }
}
