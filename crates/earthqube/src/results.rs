//! The result panel: image-patch listing, pagination and the download cart
//! (§3.1 "Result Panel" of the paper).

use eq_bigearthnet::patch::PatchMetadata;

/// Maximum number of images that can be rendered on the map at once
/// (the paper's UI caps map rendering at 1000 images).
pub const MAX_RENDERED_IMAGES: usize = 1000;

/// Maximum number of images that can be added to the cart per page action
/// (the paper's UI adds "the current page range of images (up to 50)").
pub const MAX_PAGE_SIZE: usize = 50;

/// One row of the result panel.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultEntry {
    /// Patch name.
    pub name: String,
    /// Country of acquisition.
    pub country: String,
    /// Acquisition date (ISO).
    pub date: String,
    /// Full label names.
    pub labels: Vec<String>,
    /// Hamming distance to the query image (only for similarity searches).
    pub distance: Option<u32>,
}

impl ResultEntry {
    /// Builds an entry from patch metadata.
    pub fn from_metadata(meta: &PatchMetadata, distance: Option<u32>) -> Self {
        Self {
            name: meta.name.clone(),
            country: meta.country.name().to_string(),
            date: meta.date.to_iso(),
            labels: meta.labels.iter().map(|l| l.name().to_string()).collect(),
            distance,
        }
    }

    /// A one-line description as displayed in the image-patches view.
    pub fn describe(&self) -> String {
        let labels = self.labels.join(", ");
        match self.distance {
            Some(d) => format!(
                "{} [{}] {} — {} (hamming {})",
                self.name, self.country, self.date, labels, d
            ),
            None => format!("{} [{}] {} — {}", self.name, self.country, self.date, labels),
        }
    }
}

/// One page of results.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultPage {
    /// Zero-based page number.
    pub page: usize,
    /// Entries on this page.
    pub entries: Vec<ResultEntry>,
    /// Total number of matching images across all pages.
    pub total: usize,
}

/// The result panel: the full result list with pagination and rendering caps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultPanel {
    entries: Vec<ResultEntry>,
    page_size: usize,
}

impl ResultPanel {
    /// Creates a panel over a result list with the given page size
    /// (clamped to 1..=[`MAX_PAGE_SIZE`]).
    pub fn new(entries: Vec<ResultEntry>, page_size: usize) -> Self {
        Self { entries, page_size: page_size.clamp(1, MAX_PAGE_SIZE) }
    }

    /// Total number of matching images ("the total number of image patches
    /// that match the query criteria").
    pub fn total(&self) -> usize {
        self.entries.len()
    }

    /// All entries of the panel in rank order (the un-paginated result
    /// list — what the network tier serializes).
    pub fn entries(&self) -> &[ResultEntry] {
        &self.entries
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.entries.len().div_ceil(self.page_size)
    }

    /// Returns one page of results (out-of-range pages are empty).
    pub fn page(&self, page: usize) -> ResultPage {
        let start = page.saturating_mul(self.page_size);
        let entries = self.entries.iter().skip(start).take(self.page_size).cloned().collect();
        ResultPage { page, entries, total: self.entries.len() }
    }

    /// Names of the images that may be rendered on the map (capped at
    /// [`MAX_RENDERED_IMAGES`]).
    pub fn renderable_names(&self) -> Vec<&str> {
        self.entries.iter().take(MAX_RENDERED_IMAGES).map(|e| e.name.as_str()).collect()
    }

    /// The full list of retrieved names as a plain-text download ("download
    /// the names of the retrieved images as a plain text file").
    pub fn names_as_text(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&e.name);
            s.push('\n');
        }
        s
    }

    /// Renders the image-patches view of one page as text (the stand-in for
    /// Figure 1's result panel).
    pub fn render_page(&self, page: usize) -> String {
        let p = self.page(page);
        let mut out = format!(
            "{} image patches match the query (page {}/{})\n",
            p.total,
            page + 1,
            self.page_count().max(1)
        );
        for (i, e) in p.entries.iter().enumerate() {
            out.push_str(&format!("{:>3}. {}\n", page * self.page_size + i + 1, e.describe()));
        }
        out
    }
}

/// The download cart: "allows users to combine images from different
/// searches and download them together as a single collection".
#[derive(Debug, Clone, Default)]
pub struct DownloadCart {
    names: Vec<String>,
}

impl DownloadCart {
    /// Creates an empty cart.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one image to the cart (duplicates are ignored); returns whether
    /// it was newly added.
    pub fn add(&mut self, name: &str) -> bool {
        if self.names.iter().any(|n| n == name) {
            false
        } else {
            self.names.push(name.to_string());
            true
        }
    }

    /// Adds a page of results (at most [`MAX_PAGE_SIZE`] entries) to the
    /// cart; returns the number of newly added images.
    pub fn add_page(&mut self, page: &ResultPage) -> usize {
        page.entries.iter().take(MAX_PAGE_SIZE).filter(|e| self.add(&e.name)).count()
    }

    /// Removes an image from the cart; returns whether it was present.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.names.len();
        self.names.retain(|n| n != name);
        self.names.len() != before
    }

    /// The collected image names, in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of images in the cart.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the cart is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Empties the cart.
    pub fn clear(&mut self) {
        self.names.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_bigearthnet::{ArchiveGenerator, GeneratorConfig};

    fn entries(n: usize) -> Vec<ResultEntry> {
        ArchiveGenerator::new(GeneratorConfig::tiny(n, 41))
            .unwrap()
            .generate_metadata_only()
            .iter()
            .map(|m| ResultEntry::from_metadata(m, None))
            .collect()
    }

    #[test]
    fn entry_describes_itself() {
        let metas =
            ArchiveGenerator::new(GeneratorConfig::tiny(1, 42)).unwrap().generate_metadata_only();
        let e = ResultEntry::from_metadata(&metas[0], Some(3));
        let d = e.describe();
        assert!(d.contains(&metas[0].name));
        assert!(d.contains("hamming 3"));
        let e = ResultEntry::from_metadata(&metas[0], None);
        assert!(!e.describe().contains("hamming"));
        assert!(!e.labels.is_empty());
    }

    #[test]
    fn pagination_covers_all_entries_without_overlap() {
        let panel = ResultPanel::new(entries(23), 10);
        assert_eq!(panel.total(), 23);
        assert_eq!(panel.page_count(), 3);
        assert_eq!(panel.page(0).entries.len(), 10);
        assert_eq!(panel.page(1).entries.len(), 10);
        assert_eq!(panel.page(2).entries.len(), 3);
        assert!(panel.page(3).entries.is_empty());
        // No duplicates across pages.
        let mut all: Vec<String> =
            (0..3).flat_map(|p| panel.page(p).entries).map(|e| e.name).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 23);
    }

    #[test]
    fn page_size_is_clamped_to_the_ui_limit() {
        let panel = ResultPanel::new(entries(5), 500);
        assert_eq!(panel.page_size(), MAX_PAGE_SIZE);
        let panel = ResultPanel::new(entries(5), 0);
        assert_eq!(panel.page_size(), 1);
    }

    #[test]
    fn renderable_names_are_capped() {
        let panel = ResultPanel::new(entries(30), 10);
        assert_eq!(panel.renderable_names().len(), 30);
        // The cap only kicks in above MAX_RENDERED_IMAGES; emulate by checking the constant.
        assert_eq!(MAX_RENDERED_IMAGES, 1000);
    }

    #[test]
    fn names_as_text_and_render_page() {
        let panel = ResultPanel::new(entries(12), 5);
        let text = panel.names_as_text();
        assert_eq!(text.lines().count(), 12);
        let rendered = panel.render_page(0);
        assert!(rendered.contains("12 image patches"));
        assert!(rendered.contains("page 1/3"));
        assert!(rendered.contains("  1. "));
    }

    #[test]
    fn download_cart_deduplicates_and_combines_searches() {
        let panel_a = ResultPanel::new(entries(8), 5);
        let panel_b = ResultPanel::new(entries(8), 5); // same names: dedup expected
        let mut cart = DownloadCart::new();
        assert!(cart.is_empty());
        let added = cart.add_page(&panel_a.page(0));
        assert_eq!(added, 5);
        let added_again = cart.add_page(&panel_b.page(0));
        assert_eq!(added_again, 0, "same images should not be added twice");
        cart.add_page(&panel_a.page(1));
        assert_eq!(cart.len(), 8);
        assert!(cart.remove(cart.names()[0].clone().as_str()));
        assert!(!cart.remove("ghost"));
        assert_eq!(cart.len(), 7);
        cart.clear();
        assert!(cart.is_empty());
    }

    #[test]
    fn single_image_add_reports_novelty() {
        let mut cart = DownloadCart::new();
        assert!(cart.add("img_1"));
        assert!(!cart.add("img_1"));
        assert_eq!(cart.names(), &["img_1".to_string()]);
    }
}
