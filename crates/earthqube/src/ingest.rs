//! Archive ingestion into the document-store collections.

use eq_bigearthnet::patch::{Patch, PatchMetadata};
use eq_bigearthnet::Archive;
use eq_docstore::{Database, Document, Value};

use crate::schema::{collections, fields, metadata_document};
use crate::EarthQubeError;

/// Summary of an ingestion run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Number of metadata documents written.
    pub metadata_docs: usize,
    /// Number of image-data documents written (0 for metadata-only ingest).
    pub image_docs: usize,
    /// Number of rendered-image documents written.
    pub rendered_docs: usize,
}

fn prepare_collections(db: &mut Database) {
    let metadata = db.create_collection(collections::METADATA, fields::NAME);
    if !metadata.has_attribute_index(fields::COUNTRY) {
        metadata.create_attribute_index(fields::COUNTRY);
        metadata.create_attribute_index(fields::SEASON);
        metadata.create_attribute_index(fields::PATCH_ID);
        // Element postings over the ASCII label codes and value postings
        // over the acquisition date feed the bitmap prefilter (E13): label
        // and date predicates compile to posting-bitmap candidates instead
        // of post-filter scans.
        metadata.create_attribute_index(fields::LABELS);
        metadata.create_attribute_index(fields::DATE);
        metadata
            .create_geo_index(fields::LOCATION)
            // lint:allow(panic) infallible: the collection was created just above and cannot already carry a geo index
            .expect("fresh metadata collection accepts a geo index");
    }
    db.create_collection(collections::IMAGE_DATA, fields::NAME);
    db.create_collection(collections::RENDERED, fields::NAME);
    db.create_collection(collections::FEEDBACK, "id");
}

/// Ingests only patch metadata (no pixels); the path used for large-scale
/// metadata experiments.
///
/// # Errors
/// Propagates document-store errors (e.g. duplicate patch names).
pub fn ingest_metadata(
    db: &mut Database,
    metadata: &[PatchMetadata],
) -> Result<IngestReport, EarthQubeError> {
    prepare_collections(db);
    let coll = db.collection_mut(collections::METADATA)?;
    for meta in metadata {
        coll.insert(metadata_document(meta))?;
    }
    Ok(IngestReport { metadata_docs: metadata.len(), image_docs: 0, rendered_docs: 0 })
}

/// Ingests one patch into the metadata, image-data and rendered collections
/// (which must exist — see [`ingest_archive`] for the bulk path).
///
/// The metadata document is written from `meta` rather than `patch.meta` so
/// that callers appending to a live archive (the `QueryServer` write path)
/// can re-assign the dense patch id to the next free slot.
///
/// # Errors
/// Propagates document-store errors (e.g. duplicate patch names).  The
/// patch is ingested atomically: on any error, documents already written
/// for it are rolled back, so the three collections never hold a torn
/// patch.
pub fn ingest_patch(
    db: &mut Database,
    patch: &Patch,
    meta: &PatchMetadata,
) -> Result<(), EarthQubeError> {
    let (image_doc, rendered_doc) = prepare_patch_docs(patch, &meta.name);
    insert_patch_docs(db, meta, image_doc, rendered_doc)
}

/// Serialises a patch into its image-data and rendered documents — the
/// CPU-heavy half of [`ingest_patch`], needing no database access so the
/// concurrent write path can run it before taking the catalog write lock.
pub(crate) fn prepare_patch_docs(patch: &Patch, name: &str) -> (Document, Document) {
    // Image-data document: one bytes field per Sentinel-2 band plus the
    // two Sentinel-1 polarisations, exactly the layout §3.2 describes.
    let mut bands = std::collections::BTreeMap::new();
    for band in eq_bigearthnet::bands::SENTINEL2_BANDS {
        let data = patch.band(band);
        bands.insert(
            band.name().to_string(),
            Value::Bytes(data.pixels().iter().flat_map(|p| p.to_le_bytes()).collect()),
        );
    }
    let mut sar = std::collections::BTreeMap::new();
    for pol in eq_bigearthnet::bands::Polarization::ALL {
        let data = patch.polarization(pol);
        sar.insert(
            pol.name().to_string(),
            Value::Bytes(data.pixels().iter().flat_map(|p| p.to_le_bytes()).collect()),
        );
    }
    let image_doc = Document::new()
        .with(fields::NAME, name)
        .with("bands", Value::Doc(bands))
        .with("sar", Value::Doc(sar));

    // Rendered RGB document.
    let (size, rgb) = patch.render_rgb();
    let rendered_doc = Document::new()
        .with(fields::NAME, name)
        .with("size", size as i64)
        .with("rgb", Value::Bytes(rgb));
    (image_doc, rendered_doc)
}

/// Inserts a patch's three documents (the metadata document is built here
/// from `meta`, so the caller can assign the dense id at insert time),
/// rolling back on failure — the cheap half of [`ingest_patch`].
pub(crate) fn insert_patch_docs(
    db: &mut Database,
    meta: &PatchMetadata,
    image_doc: Document,
    rendered_doc: Document,
) -> Result<(), EarthQubeError> {
    db.collection_mut(collections::METADATA)?.insert(metadata_document(meta))?;

    // From here on, roll back the documents *this call* inserted if a later
    // insert fails, so the three collections never disagree about a patch.
    // Only freshly inserted documents are deleted — a failure caused by a
    // pre-existing duplicate must not take that duplicate down with it.
    let key = Value::Str(meta.name.clone());
    let rollback = |db: &mut Database, inserted: &[&str]| {
        for coll in inserted {
            if let Ok(c) = db.collection_mut(coll) {
                let _ = c.delete_by_key(&key);
            }
        }
    };

    let inserted = match db.collection_mut(collections::IMAGE_DATA) {
        Ok(c) => c.insert(image_doc).map(|_| ()).map_err(EarthQubeError::from),
        Err(e) => Err(e.into()),
    };
    if let Err(e) = inserted {
        rollback(db, &[collections::METADATA]);
        return Err(e);
    }

    let inserted = match db.collection_mut(collections::RENDERED) {
        Ok(c) => c.insert(rendered_doc).map(|_| ()).map_err(EarthQubeError::from),
        Err(e) => Err(e.into()),
    };
    if let Err(e) = inserted {
        rollback(db, &[collections::METADATA, collections::IMAGE_DATA]);
        return Err(e);
    }
    Ok(())
}

/// Ingests a full archive: metadata, raw band data and rendered RGB images,
/// populating the paper's four collections.
///
/// # Errors
/// Propagates document-store errors (e.g. duplicate patch names).
pub fn ingest_archive(
    db: &mut Database,
    archive: &Archive,
) -> Result<IngestReport, EarthQubeError> {
    prepare_collections(db);
    let mut report = IngestReport { metadata_docs: 0, image_docs: 0, rendered_docs: 0 };
    for patch in archive.patches() {
        ingest_patch(db, patch, &patch.meta)?;
        report.metadata_docs += 1;
        report.image_docs += 1;
        report.rendered_docs += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_bigearthnet::{ArchiveGenerator, GeneratorConfig};
    use eq_docstore::Filter;

    #[test]
    fn metadata_only_ingest_populates_the_metadata_collection() {
        let metas =
            ArchiveGenerator::new(GeneratorConfig::tiny(60, 13)).unwrap().generate_metadata_only();
        let mut db = Database::new();
        let report = ingest_metadata(&mut db, &metas).unwrap();
        assert_eq!(report.metadata_docs, 60);
        assert_eq!(report.image_docs, 0);
        let coll = db.collection(collections::METADATA).unwrap();
        assert_eq!(coll.len(), 60);
        // Indexes exist and are used.
        let r = coll.find(&Filter::Eq(fields::COUNTRY.into(), "Finland".into()));
        assert_eq!(r.plan.index_used.as_deref(), Some(fields::COUNTRY));
        // All four collections exist.
        assert_eq!(db.collection_names().len(), 4);
    }

    #[test]
    fn full_ingest_populates_all_four_collections() {
        let archive = ArchiveGenerator::new(GeneratorConfig::tiny(8, 14)).unwrap().generate();
        let mut db = Database::new();
        let report = ingest_archive(&mut db, &archive).unwrap();
        assert_eq!(report.metadata_docs, 8);
        assert_eq!(report.image_docs, 8);
        assert_eq!(report.rendered_docs, 8);
        assert_eq!(db.collection(collections::IMAGE_DATA).unwrap().len(), 8);
        assert_eq!(db.collection(collections::RENDERED).unwrap().len(), 8);

        // The image-data document stores all 12 band buffers.
        let name = archive.patches()[0].meta.name.clone();
        let img = db
            .collection(collections::IMAGE_DATA)
            .unwrap()
            .get_by_key(&Value::Str(name.clone()))
            .unwrap();
        assert!(!img.get("bands.B02").unwrap().as_bytes().unwrap().is_empty());
        assert!(img.get("bands.B12").is_some());
        assert!(img.get("sar.VV").is_some());
        // The rendered document stores an RGB buffer of size² × 3 bytes.
        let rendered =
            db.collection(collections::RENDERED).unwrap().get_by_key(&Value::Str(name)).unwrap();
        let size = rendered.get("size").unwrap().as_int().unwrap() as usize;
        assert_eq!(rendered.get("rgb").unwrap().as_bytes().unwrap().len(), size * size * 3);
    }

    #[test]
    fn duplicate_ingest_is_rejected() {
        let metas =
            ArchiveGenerator::new(GeneratorConfig::tiny(5, 15)).unwrap().generate_metadata_only();
        let mut db = Database::new();
        ingest_metadata(&mut db, &metas).unwrap();
        let err = ingest_metadata(&mut db, &metas).unwrap_err();
        assert!(matches!(err, EarthQubeError::Store(_)));
    }

    #[test]
    fn failed_patch_ingest_rolls_back_without_touching_existing_docs() {
        let archive = ArchiveGenerator::new(GeneratorConfig::tiny(1, 17)).unwrap().generate();
        let patch = &archive.patches()[0];
        let mut db = Database::new();
        ingest_metadata(&mut db, &[]).unwrap(); // creates the collections
                                                // A pre-existing image-data document under the patch's name makes
                                                // the second of the three inserts fail.
        let squatter = Document::new().with(fields::NAME, patch.meta.name.as_str());
        db.collection_mut(collections::IMAGE_DATA).unwrap().insert(squatter).unwrap();

        let err = ingest_patch(&mut db, patch, &patch.meta).unwrap_err();
        assert!(matches!(err, EarthQubeError::Store(_)));
        // The metadata insert was rolled back; the squatter survived.
        assert_eq!(db.collection(collections::METADATA).unwrap().len(), 0);
        assert_eq!(db.collection(collections::IMAGE_DATA).unwrap().len(), 1);
        assert_eq!(db.collection(collections::RENDERED).unwrap().len(), 0);

        // With the conflict removed, the same patch ingests cleanly.
        let key = Value::Str(patch.meta.name.clone());
        db.collection_mut(collections::IMAGE_DATA).unwrap().delete_by_key(&key).unwrap();
        ingest_patch(&mut db, patch, &patch.meta).unwrap();
        for coll in [collections::METADATA, collections::IMAGE_DATA, collections::RENDERED] {
            assert_eq!(db.collection(coll).unwrap().len(), 1, "collection {coll}");
        }
    }

    #[test]
    fn ingest_is_incremental_across_calls() {
        let metas =
            ArchiveGenerator::new(GeneratorConfig::tiny(20, 16)).unwrap().generate_metadata_only();
        let mut db = Database::new();
        ingest_metadata(&mut db, &metas[..10]).unwrap();
        ingest_metadata(&mut db, &metas[10..]).unwrap();
        assert_eq!(db.collection(collections::METADATA).unwrap().len(), 20);
    }
}
