//! The content-based image retrieval (CBIR) service (§3.3 of the paper).
//!
//! For every archive image a 128-bit binary code is inferred with MiLaN.
//! The service keeps an in-memory hash table mapping each image patch name
//! to its code (query-by-archive-image path) and a Hamming hash index over
//! all codes.  For external images the model produces a code on the fly
//! (query-by-new-example path).  Retrieval returns all images within a
//! small Hamming radius — or the k nearest — of the query code.

use std::collections::HashMap;

use eq_bigearthnet::patch::{Patch, PatchId};
use eq_bigearthnet::Archive;
use eq_hashindex::{BinaryCode, HammingIndex, HashTableIndex, IdMask, Neighbor, SearchScratch};
use eq_milan::Milan;
use parking_lot::Mutex;

use crate::EarthQubeError;

/// Configuration of the CBIR service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbirConfig {
    /// Default Hamming radius for radius queries ("a small hamming radius",
    /// §2.2/§3.3).
    pub default_radius: u32,
    /// Default number of results for k-NN queries.
    pub default_k: usize,
}

impl Default for CbirConfig {
    fn default() -> Self {
        Self { default_radius: 8, default_k: 20 }
    }
}

/// One retrieved similar image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimilarImage {
    /// The dense patch id.
    pub id: PatchId,
    /// The BigEarthNet patch name.
    pub name: String,
    /// Hamming distance from the query code.
    pub distance: u32,
}

/// Interior scratch slot for the bounded top-k selection: the service's
/// query methods take `&self`, so the reusable heap sits behind a `Mutex`
/// (uncontended in the sequential engine; the concurrent server pools its
/// own scratches instead).  Cloning a service starts with a fresh, empty
/// scratch — the state is pure reusable buffer, never part of the results.
struct ScratchSlot(Mutex<SearchScratch>);

impl Clone for ScratchSlot {
    fn clone(&self) -> Self {
        ScratchSlot(Mutex::with_name(SearchScratch::new(), "cbir-scratch"))
    }
}

impl std::fmt::Debug for ScratchSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ScratchSlot")
    }
}

/// The MiLaN-backed CBIR service.
#[derive(Debug, Clone)]
pub struct CbirService {
    config: CbirConfig,
    model: Milan,
    index: HashTableIndex,
    /// In-memory hash table: image patch name → binary code (§3.3).
    name_to_code: HashMap<String, BinaryCode>,
    id_to_name: Vec<String>,
    /// Reusable bounded top-k state for [`query_by_code`](Self::query_by_code).
    scratch: ScratchSlot,
}

impl CbirService {
    /// Builds the service: infers a binary code for every archive image,
    /// fills the name→code table and the Hamming index.
    ///
    /// The model should already be trained; an untrained model still works
    /// but retrieves poorly (that difference is experiment E2).
    pub fn build(model: Milan, archive: &Archive, config: CbirConfig) -> Self {
        let codes = model.hash_archive(archive);
        let mut index = HashTableIndex::new(model.code_bits());
        let mut name_to_code = HashMap::with_capacity(codes.len());
        let mut id_to_name = Vec::with_capacity(codes.len());
        for (patch, code) in archive.patches().iter().zip(codes) {
            index.insert(patch.meta.id.0 as u64, code.clone());
            name_to_code.insert(patch.meta.name.clone(), code);
            id_to_name.push(patch.meta.name.clone());
        }
        Self {
            config,
            model,
            index,
            name_to_code,
            id_to_name,
            scratch: ScratchSlot(Mutex::with_name(SearchScratch::new(), "cbir-scratch")),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> CbirConfig {
        self.config
    }

    /// Number of indexed images.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The code width in bits.
    pub fn code_bits(&self) -> u32 {
        self.model.code_bits()
    }

    /// The stored binary code of an archive image.
    pub fn code_of(&self, name: &str) -> Option<&BinaryCode> {
        self.name_to_code.get(name)
    }

    /// The k most similar archive images to an arbitrary query code.
    ///
    /// Runs the bounded top-k selection over the index's code arena through
    /// the service's reusable scratch: at most `k` candidates are ever
    /// held, and no full result list is materialised or sorted.
    pub fn query_by_code(&self, code: &BinaryCode, k: usize) -> Vec<SimilarImage> {
        let mut scratch = self.scratch.0.lock();
        let neighbors = self.index.knn_with(code, k, &mut scratch);
        self.to_similar(neighbors)
    }

    /// All archive images within the given Hamming radius of the query code.
    pub fn radius_query_by_code(&self, code: &BinaryCode, radius: u32) -> Vec<SimilarImage> {
        self.to_similar(&self.index.radius_search(code, radius))
    }

    /// Masked k-NN: the `k` most similar archive images **whose dense
    /// patch id is in `mask`** (the bitmap-prefiltered search path, E13).
    /// Rows outside the mask are skipped before any distance computation.
    pub fn query_by_code_masked(
        &self,
        code: &BinaryCode,
        k: usize,
        mask: &IdMask,
    ) -> Vec<SimilarImage> {
        let mut scratch = self.scratch.0.lock();
        let neighbors = self.index.knn_masked_with(code, k, mask, &mut scratch);
        self.to_similar(neighbors)
    }

    /// Masked radius query: every archive image within `radius` of the
    /// query code whose dense patch id is in `mask`, sorted by distance
    /// then id — the same order as
    /// [`radius_query_by_code`](Self::radius_query_by_code).
    pub fn radius_query_by_code_masked(
        &self,
        code: &BinaryCode,
        radius: u32,
        mask: &IdMask,
    ) -> Vec<SimilarImage> {
        let mut out = Vec::new();
        self.index.radius_search_masked_into(code, radius, mask, &mut out);
        eq_hashindex::sort_neighbors(&mut out);
        self.to_similar(&out)
    }

    /// Masked query by an existing archive image: like
    /// [`query_by_archive_image`](Self::query_by_archive_image) but ranking
    /// only the masked subset.
    ///
    /// # Errors
    /// Fails if the name is not in the archive.
    pub fn query_by_archive_image_masked(
        &self,
        name: &str,
        k: usize,
        mask: &IdMask,
    ) -> Result<Vec<SimilarImage>, EarthQubeError> {
        let code = self
            .name_to_code
            .get(name)
            .ok_or_else(|| EarthQubeError::UnknownImage(name.to_string()))?;
        // One extra hit in case the query image itself passes the filter.
        let hits = self.query_by_code_masked(code, k + 1, mask);
        Ok(hits.into_iter().filter(|h| h.name != name).take(k).collect())
    }

    /// Query by an existing archive image (§3.3): looks the image's code up
    /// in the in-memory table and retrieves its neighbours, excluding the
    /// query image itself.
    ///
    /// # Errors
    /// Fails if the name is not in the archive.
    pub fn query_by_archive_image(
        &self,
        name: &str,
        k: usize,
    ) -> Result<Vec<SimilarImage>, EarthQubeError> {
        let code = self
            .name_to_code
            .get(name)
            .ok_or_else(|| EarthQubeError::UnknownImage(name.to_string()))?;
        // Ask for one extra hit because the query image itself is indexed.
        let hits = self.query_by_code(code, k + 1);
        Ok(hits.into_iter().filter(|h| h.name != name).take(k).collect())
    }

    /// Query by a new external image (§3.3): the model produces a code for
    /// the uploaded patch on the fly.
    pub fn query_by_new_example(&self, patch: &Patch, k: usize) -> Vec<SimilarImage> {
        let code = self.model.hash_patch(patch);
        self.query_by_code(&code, k)
    }

    /// The underlying model (e.g. to hash external features directly).
    pub fn model(&self) -> &Milan {
        &self.model
    }

    /// Decomposes the service into the model, the name→code table and the
    /// dense id→name map, in that order.  Used by the serving layer to
    /// re-index the codes into a sharded concurrent index.
    pub fn into_parts(self) -> (Milan, HashMap<String, BinaryCode>, Vec<String>) {
        (self.model, self.name_to_code, self.id_to_name)
    }

    fn to_similar(&self, neighbors: &[Neighbor]) -> Vec<SimilarImage> {
        neighbors
            .iter()
            .map(|n| SimilarImage {
                id: PatchId(n.id as u32),
                name: self.id_to_name[n.id as usize].clone(),
                distance: n.distance,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_bigearthnet::{ArchiveGenerator, GeneratorConfig};
    use eq_milan::MilanConfig;

    fn service(n: usize, seed: u64, train: bool) -> (CbirService, Archive) {
        let archive = ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate();
        let mut model = Milan::new(MilanConfig::fast(32, seed)).unwrap();
        if train {
            model.train_on_archive(&archive);
        }
        (CbirService::build(model, &archive, CbirConfig::default()), archive)
    }

    #[test]
    fn build_indexes_every_archive_image() {
        let (svc, archive) = service(40, 31, false);
        assert_eq!(svc.len(), 40);
        assert!(!svc.is_empty());
        assert_eq!(svc.code_bits(), 32);
        for p in archive.patches() {
            assert!(svc.code_of(&p.meta.name).is_some());
        }
        assert!(svc.code_of("nonexistent").is_none());
    }

    #[test]
    fn query_by_archive_image_excludes_the_query_itself() {
        let (svc, archive) = service(50, 32, true);
        let name = &archive.patches()[3].meta.name;
        let hits = svc.query_by_archive_image(name, 10).unwrap();
        assert!(hits.len() <= 10);
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| &h.name != name));
        // Results are sorted by distance.
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn query_by_unknown_image_errors() {
        let (svc, _) = service(10, 33, false);
        assert!(matches!(
            svc.query_by_archive_image("ghost", 5),
            Err(EarthQubeError::UnknownImage(_))
        ));
    }

    #[test]
    fn query_by_new_example_returns_neighbours() {
        let (svc, _) = service(60, 34, true);
        // Generate a fresh, unseen patch with a different seed.
        let external =
            ArchiveGenerator::new(GeneratorConfig::tiny(1, 999)).unwrap().generate_patch(0);
        let hits = svc.query_by_new_example(&external, 7);
        assert_eq!(hits.len(), 7);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn radius_query_returns_only_codes_within_radius() {
        let (svc, archive) = service(80, 35, true);
        let name = &archive.patches()[0].meta.name;
        let code = svc.code_of(name).unwrap().clone();
        for radius in [0u32, 2, 6, 12] {
            let hits = svc.radius_query_by_code(&code, radius);
            assert!(hits.iter().all(|h| h.distance <= radius));
            // The query image itself (distance 0) is always included.
            assert!(hits.iter().any(|h| &h.name == name));
        }
    }

    #[test]
    fn similar_images_map_ids_to_names_consistently() {
        let (svc, archive) = service(30, 36, false);
        let name = &archive.patches()[5].meta.name;
        let code = svc.code_of(name).unwrap().clone();
        let hits = svc.query_by_code(&code, 5);
        for h in hits {
            assert_eq!(archive.patches()[h.id.index()].meta.name, h.name);
        }
    }
}
