//! The EarthQube back-end: query, visualise and reverse-search satellite
//! data (§3 of the paper).
//!
//! EarthQube follows a three-tier architecture; this crate is the back-end
//! tier.  It wires the other workspace crates together:
//!
//! * [`schema`] / [`ingest`] — turn a BigEarthNet archive into the four
//!   document-store collections of §3.2 (metadata, image data, rendered
//!   images, feedback),
//! * [`query`] — the query-panel model of §3.1: geospatial shape, date
//!   range, satellites, seasons, and label filtering with the `Some`,
//!   `Exactly` and `At least & more` operators over the CLC hierarchy,
//! * [`cbir`] — the MiLaN-backed content-based image-retrieval service of
//!   §3.3 (in-memory name→code table, Hamming-radius lookups, query by
//!   archive image or by a new uploaded image),
//! * [`filtered`] — bitmap-prefiltered similarity search: query-panel
//!   filters compiled to posting-bitmap candidate masks so the Hamming
//!   kernels skip non-matching images before any distance work (E13),
//! * [`stats`] — the label-statistics view of Figure 2-4,
//! * [`results`] — the result panel: pagination, download cart, rendering,
//! * [`feedback`] — anonymous user feedback storage,
//! * [`engine`] — the [`EarthQube`] facade combining all services,
//! * [`serve`] — the concurrent serving layer: a [`QueryServer`] sharing
//!   the read path across worker threads, with a sharded CBIR index and an
//!   LRU result cache invalidated on ingest,
//! * [`net`] — the network tier: a TCP [`NetServer`] speaking the
//!   `eq_proto` binary RPC protocol, and the blocking [`EqClient`] whose
//!   remote results are byte-identical to in-process calls,
//! * [`replicate`] — the replication tier: read replicas pulling the
//!   primary's WAL over the same RPC protocol, snapshot seeding,
//!   promotion/fencing on failover, and a retrying [`ClusterClient`]
//!   fanning reads across replicas while routing writes to the primary.
//!
//! # Example
//!
//! Build the back-end over a (tiny) synthetic archive, wrap it in the
//! concurrent server, and fan a small workload over two worker threads:
//!
//! ```
//! use eq_bigearthnet::{ArchiveGenerator, GeneratorConfig};
//! use eq_earthqube::{
//!     EarthQube, EarthQubeConfig, ImageQuery, QueryRequest, QueryServer, ServeConfig,
//! };
//!
//! let archive = ArchiveGenerator::new(GeneratorConfig::tiny(16, 7)).unwrap().generate();
//! let mut config = EarthQubeConfig::fast(7);
//! config.train_model = false; // keep the doc-test fast
//!
//! // Sequential facade: one query at a time.
//! let engine = EarthQube::build(&archive, config.clone()).unwrap();
//! let response = engine.search(&ImageQuery::all()).unwrap();
//! assert_eq!(response.total(), 16);
//!
//! // Concurrent server: the same read path, shared across threads.
//! let server = QueryServer::build(&archive, config, ServeConfig::default()).unwrap();
//! let requests = vec![
//!     QueryRequest::Metadata(ImageQuery::all()),
//!     QueryRequest::SimilarTo { name: archive.patches()[0].meta.name.clone(), k: 3 },
//! ];
//! let results = server.run_workload(&requests, 2);
//! assert_eq!(results[0].as_ref().unwrap().total(), 16);
//! assert!(server.stats().queries_served >= 2);
//! ```

#![deny(missing_docs)]

pub mod cbir;
pub mod engine;
pub mod feedback;
pub mod filtered;
pub mod ingest;
pub mod net;
mod persist;
pub mod query;
pub mod replicate;
pub mod results;
pub mod schema;
pub mod serve;
pub mod stats;

pub use cbir::{CbirConfig, CbirService, SimilarImage};
pub use engine::{EarthQube, EarthQubeConfig, SearchResponse};
pub use feedback::FeedbackService;
pub use filtered::{FilterStrategy, FilteredPlan, FilteredResponse, PrefilterMode};
pub use ingest::{ingest_archive, ingest_metadata, ingest_patch, IngestReport};
pub use net::{EqClient, NetServer};
pub use query::{ImageQuery, LabelFilter, LabelOperator};
pub use replicate::{ClusterClient, Replica, ReplicaSync, RetryPolicy, SyncStatus};
pub use results::{DownloadCart, ResultEntry, ResultPage, ResultPanel};
pub use schema::{collections, metadata_document, metadata_from_document};
pub use serve::{
    CheckpointKind, CheckpointStats, CheckpointerStats, QueryRequest, QueryServer, ServeConfig,
    ServerStats,
};
pub use stats::LabelStatistics;

#[cfg(feature = "failpoints")]
pub use persist::failpoints;

/// Errors surfaced by the EarthQube back-end services.
#[derive(Debug, Clone, PartialEq)]
pub enum EarthQubeError {
    /// A referenced image patch does not exist in the archive.
    UnknownImage(String),
    /// The underlying document store reported an error.
    Store(String),
    /// The CBIR service has not been built yet (no trained model / index).
    CbirNotReady,
    /// The request was malformed (e.g. an inverted date range).
    BadRequest(String),
    /// The durable storage tier failed: an I/O error, or a snapshot/WAL
    /// that is missing, corrupt or from an incompatible version.
    Persist(String),
    /// The network tier failed: a transport error, a malformed frame, or a
    /// protocol violation between [`net::EqClient`] and [`net::NetServer`].
    Net(String),
    /// The server applied admission control: the request was rejected
    /// (never stalled, never executed) because the client exceeded its
    /// in-flight quota or the dispatch queue is full.  Retry after
    /// draining responses, or back off.
    Overloaded(String),
    /// A write reached a read replica.  Replicas apply only records
    /// replicated from the primary; the client should re-discover the
    /// primary (it may have moved after a failover) and retry there.
    NotPrimary(String),
}

impl std::fmt::Display for EarthQubeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EarthQubeError::UnknownImage(n) => write!(f, "unknown image: {n}"),
            EarthQubeError::Store(e) => write!(f, "document store error: {e}"),
            EarthQubeError::CbirNotReady => write!(f, "CBIR service is not ready"),
            EarthQubeError::BadRequest(m) => write!(f, "bad request: {m}"),
            EarthQubeError::Persist(m) => write!(f, "persistence error: {m}"),
            EarthQubeError::Net(m) => write!(f, "network error: {m}"),
            EarthQubeError::Overloaded(m) => write!(f, "server overloaded: {m}"),
            EarthQubeError::NotPrimary(m) => write!(f, "not the primary: {m}"),
        }
    }
}

impl std::error::Error for EarthQubeError {}

impl From<eq_docstore::StoreError> for EarthQubeError {
    fn from(e: eq_docstore::StoreError) -> Self {
        EarthQubeError::Store(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversion() {
        assert!(EarthQubeError::UnknownImage("p".into()).to_string().contains("unknown image"));
        assert!(EarthQubeError::CbirNotReady.to_string().contains("not ready"));
        assert!(EarthQubeError::BadRequest("x".into()).to_string().contains("bad request"));
        let e: EarthQubeError = eq_docstore::StoreError::NoSuchCollection("m".into()).into();
        assert!(matches!(e, EarthQubeError::Store(_)));
    }
}
