//! The EarthQube back-end: query, visualise and reverse-search satellite
//! data (§3 of the paper).
//!
//! EarthQube follows a three-tier architecture; this crate is the back-end
//! tier.  It wires the other workspace crates together:
//!
//! * [`schema`] / [`ingest`] — turn a BigEarthNet archive into the four
//!   document-store collections of §3.2 (metadata, image data, rendered
//!   images, feedback),
//! * [`query`] — the query-panel model of §3.1: geospatial shape, date
//!   range, satellites, seasons, and label filtering with the `Some`,
//!   `Exactly` and `At least & more` operators over the CLC hierarchy,
//! * [`cbir`] — the MiLaN-backed content-based image-retrieval service of
//!   §3.3 (in-memory name→code table, Hamming-radius lookups, query by
//!   archive image or by a new uploaded image),
//! * [`stats`] — the label-statistics view of Figure 2-4,
//! * [`results`] — the result panel: pagination, download cart, rendering,
//! * [`feedback`] — anonymous user feedback storage,
//! * [`engine`] — the [`EarthQube`] facade combining all services.

#![warn(missing_docs)]

pub mod cbir;
pub mod engine;
pub mod feedback;
pub mod ingest;
pub mod query;
pub mod results;
pub mod schema;
pub mod stats;

pub use cbir::{CbirConfig, CbirService, SimilarImage};
pub use engine::{EarthQube, EarthQubeConfig, SearchResponse};
pub use feedback::FeedbackService;
pub use ingest::{ingest_archive, ingest_metadata, IngestReport};
pub use query::{ImageQuery, LabelFilter, LabelOperator};
pub use results::{DownloadCart, ResultEntry, ResultPage, ResultPanel};
pub use schema::{collections, metadata_document, metadata_from_document};
pub use stats::LabelStatistics;

/// Errors surfaced by the EarthQube back-end services.
#[derive(Debug, Clone, PartialEq)]
pub enum EarthQubeError {
    /// A referenced image patch does not exist in the archive.
    UnknownImage(String),
    /// The underlying document store reported an error.
    Store(String),
    /// The CBIR service has not been built yet (no trained model / index).
    CbirNotReady,
    /// The request was malformed (e.g. an inverted date range).
    BadRequest(String),
}

impl std::fmt::Display for EarthQubeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EarthQubeError::UnknownImage(n) => write!(f, "unknown image: {n}"),
            EarthQubeError::Store(e) => write!(f, "document store error: {e}"),
            EarthQubeError::CbirNotReady => write!(f, "CBIR service is not ready"),
            EarthQubeError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for EarthQubeError {}

impl From<eq_docstore::StoreError> for EarthQubeError {
    fn from(e: eq_docstore::StoreError) -> Self {
        EarthQubeError::Store(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversion() {
        assert!(EarthQubeError::UnknownImage("p".into()).to_string().contains("unknown image"));
        assert!(EarthQubeError::CbirNotReady.to_string().contains("not ready"));
        assert!(EarthQubeError::BadRequest("x".into()).to_string().contains("bad request"));
        let e: EarthQubeError = eq_docstore::StoreError::NoSuchCollection("m".into()).into();
        assert!(matches!(e, EarthQubeError::Store(_)));
    }
}
