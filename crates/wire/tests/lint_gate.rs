//! In-crate lint gate: `cargo test` on this serving crate runs the same
//! static-analysis pass as `cargo run -p eq_lint -- --deny-warnings`, so a
//! violation of the panic/lock/hot-path/wire/golden invariants fails this
//! crate's own test suite — not just a CI job someone has to remember.

use std::path::Path;

#[test]
fn workspace_lint_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = eq_lint::run_workspace(&root).expect("lint pass runs without I/O errors");
    assert!(report.is_clean(true), "eq_lint found problems:\n{}", report.render());
}
