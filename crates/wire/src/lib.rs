//! Little-endian wire framing for the persistence tier.
//!
//! The durable storage formats of this workspace — docstore snapshots,
//! hash-index tables, MiLaN model weights and the EarthQube write-ahead
//! log — all share one byte-level vocabulary, defined here:
//!
//! * [`Writer`] — an append-only byte buffer with fixed-width little-endian
//!   primitives and `u32`-length-prefixed strings/byte strings,
//! * [`Reader`] — the matching cursor, where **every** read is checked:
//!   running off the end of the buffer, an invalid enum tag, a non-UTF-8
//!   string or an implausible sequence length returns a [`WireError`]
//!   instead of panicking, so decoding attacker- or corruption-shaped bytes
//!   is always safe,
//! * [`crc32`] — the CRC-32 (IEEE 802.3) checksum guarding every snapshot
//!   body and every WAL record.
//!
//! The [`frame`] module adds the stream-level counterpart: magic-tagged,
//! length-prefixed, CRC-guarded frames read from and written to arbitrary
//! `std::io` streams — the message boundary of the `eq_proto` network RPC
//! protocol.  (The write-ahead log keeps its own, slightly different
//! record framing in `eq_earthqube::persist`: no magic per record, and
//! torn-tail tolerance instead of hard truncation errors.)
//!
//! The crate is dependency-free by design: the build environment has no
//! registry access, and a hand-rolled format this small is easier to audit
//! than a vendored serde stack.

#![deny(missing_docs)]

/// Errors produced while decoding wire-format bytes.
///
/// Decoding never panics: any structural problem — truncation, a bad tag, a
/// corrupt length — surfaces as one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were actually available.
        available: usize,
    },
    /// The bytes were structurally invalid (bad tag, bad length, bad UTF-8,
    /// checksum mismatch, ...).
    Corrupt(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, available } => {
                write!(f, "unexpected end of input: needed {needed} bytes, had {available}")
            }
            WireError::Corrupt(msg) => write!(f, "corrupt wire data: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// An append-only byte buffer writing the wire format.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { buf: Vec::with_capacity(capacity) }
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes with no length prefix (headers, magic numbers).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` as its exact IEEE-754 bit pattern (NaN-preserving).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes an `f64` as its exact IEEE-754 bit pattern (NaN-preserving).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a byte string: `u32` length prefix followed by the bytes.
    ///
    /// # Panics
    /// Panics if the slice is longer than `u32::MAX` bytes (no single field
    /// of the formats built on this crate comes near 4 GiB).
    pub fn bytes(&mut self, bytes: &[u8]) {
        // lint:allow(panic) documented contract: no caller can build a single >4 GiB field (see # Panics above)
        self.u32(u32::try_from(bytes.len()).expect("field longer than u32::MAX bytes"));
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a UTF-8 string: `u32` length prefix followed by the bytes.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Writes a sequence length as a `u32` prefix.
    ///
    /// # Panics
    /// Panics if the length exceeds `u32::MAX` elements.
    pub fn seq_len(&mut self, len: usize) {
        // lint:allow(panic) documented contract: no caller can build a sequence of >u32::MAX elements (see # Panics above)
        self.u32(u32::try_from(len).expect("sequence longer than u32::MAX elements"));
    }
}

/// A checked cursor over wire-format bytes.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes and returns the next `n` bytes.
    ///
    /// # Errors
    /// Returns [`WireError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { needed: n, available: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    /// Returns [`WireError::UnexpectedEof`] on truncation.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.array::<1>()?[0])
    }

    /// Reads a `bool` (rejecting any byte other than 0 or 1).
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation or a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Corrupt(format!("invalid bool byte {other:#04x}"))),
        }
    }

    /// Reads a `u16`, little-endian.
    ///
    /// # Errors
    /// Returns [`WireError::UnexpectedEof`] on truncation.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.array::<2>()?))
    }

    /// Reads a `u32`, little-endian.
    ///
    /// # Errors
    /// Returns [`WireError::UnexpectedEof`] on truncation.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array::<4>()?))
    }

    /// Reads a `u64`, little-endian.
    ///
    /// # Errors
    /// Returns [`WireError::UnexpectedEof`] on truncation.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array::<8>()?))
    }

    /// Reads an `i64`, little-endian two's complement.
    ///
    /// # Errors
    /// Returns [`WireError::UnexpectedEof`] on truncation.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.array::<8>()?))
    }

    /// Reads an `f32` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    /// Returns [`WireError::UnexpectedEof`] on truncation.
    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(u32::from_le_bytes(self.array::<4>()?)))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    /// Returns [`WireError::UnexpectedEof`] on truncation.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(self.array::<8>()?)))
    }

    /// Reads a `u32`-length-prefixed byte string.
    ///
    /// The length is validated against the remaining buffer *before* any
    /// slice is taken, so a corrupt length cannot trigger a huge allocation
    /// or a panic.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| WireError::Corrupt(format!("invalid UTF-8 string: {e}")))
    }

    /// Reads a sequence length written by [`Writer::seq_len`], rejecting
    /// lengths that could not possibly fit in the remaining bytes (every
    /// element of every sequence in these formats occupies at least
    /// `min_element_size` bytes).  This bounds `Vec` pre-allocation by the
    /// input size, so a bit-flipped length fails cleanly instead of
    /// attempting a multi-gigabyte allocation.
    ///
    /// # Errors
    /// Returns [`WireError`] on truncation or an implausible length.
    pub fn seq_len(&mut self, min_element_size: usize) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        let min_total = len.saturating_mul(min_element_size.max(1));
        if min_total > self.remaining() {
            return Err(WireError::Corrupt(format!(
                "sequence of {len} elements needs at least {min_total} bytes, only {} remain",
                self.remaining()
            )));
        }
        Ok(len)
    }
}

pub mod frame;
pub mod manifest;

/// The CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the CRC-32 (IEEE 802.3) checksum of a byte slice — the same
/// polynomial used by zip, PNG and Ethernet, so reference vectors are easy
/// to verify.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_exactly() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.bool(true);
        w.bool(false);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 7);
        w.i64(-42);
        w.f32(f32::from_bits(0x7FC0_1234)); // a non-canonical NaN
        w.f64(-0.0);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        w.seq_len(5);
        w.raw(&[9; 5]); // the sequence seq_len promises

        let mut r = Reader::new(w.as_bytes());
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f32().unwrap().to_bits(), 0x7FC0_1234, "NaN payload must survive");
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.seq_len(1).unwrap(), 5);
        assert_eq!(r.take(5).unwrap(), &[9; 5]);
        assert!(r.is_empty());
    }

    #[test]
    fn every_truncation_point_errors_cleanly() {
        let mut w = Writer::new();
        w.u64(7);
        w.str("abc");
        let full = w.into_bytes();
        for cut in 0..full.len() {
            let mut r = Reader::new(&full[..cut]);
            let a = r.u64();
            let b = r.str();
            assert!(
                a.is_err() || b.is_err(),
                "prefix of {cut}/{} bytes decoded completely",
                full.len()
            );
        }
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_corrupt_not_eof() {
        let mut r = Reader::new(&[7]);
        assert!(matches!(r.bool(), Err(WireError::Corrupt(_))));
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.str(), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn huge_sequence_lengths_are_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // an absurd element count
        w.u8(0);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.seq_len(1), Err(WireError::Corrupt(_))));
        // A length-prefixed byte string with a huge length is EOF-checked too.
        let mut r = Reader::new(&buf);
        assert!(matches!(r.bytes(), Err(WireError::UnexpectedEof { .. })));
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = WireError::UnexpectedEof { needed: 8, available: 3 };
        assert!(e.to_string().contains("needed 8"));
        assert!(WireError::Corrupt("bad tag".into()).to_string().contains("bad tag"));
    }
}
