//! The checkpoint manifest record (`EQMANI01`).
//!
//! An incremental checkpoint directory is *rooted* in a single manifest
//! file: it names every chunk file that makes up the current snapshot
//! (with per-chunk length and CRC-32 so recovery can detect swapped or
//! truncated chunks before decoding them), the generation tag that binds
//! the write-ahead-log segments to this snapshot lineage, and the index
//! of the first WAL segment that must be replayed on top of the chunks.
//! Atomically renaming a new manifest over the old one is the commit
//! point of a checkpoint — chunk files not referenced by the published
//! manifest are unreachable orphans, and WAL segments below
//! `first_segment` are retired.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! manifest := "EQMANI01" version:u16 body_len:u64 body crc32(body):u32
//! body     := seq:u64 generation:u32 first_segment:u32
//!             chunks:u32 (file:string kind:string len:u64 crc:u32)*
//! ```
//!
//! `seq` is a monotonically increasing checkpoint sequence number (used
//! only to derive fresh chunk file names); `generation` is the WAL
//! lineage epoch; `first_segment` is the lowest-numbered WAL segment the
//! snapshot does *not* already contain.

use crate::{crc32, Reader, WireError, Writer};

/// Magic bytes opening every manifest file.
pub const MANIFEST_MAGIC: [u8; 8] = *b"EQMANI01";

/// Manifest format version; bump on any layout change.
pub const MANIFEST_VERSION: u16 = 1;

/// One chunk file referenced by a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkEntry {
    /// File name of the chunk, relative to the manifest's directory.
    pub file: String,
    /// What the chunk contains (e.g. `"static"`, `"coll:metadata"`,
    /// `"shard:3"`) — an opaque label to this crate, interpreted by the
    /// persistence tier.
    pub kind: String,
    /// Expected total file length in bytes.
    pub len: u64,
    /// Expected CRC-32 of the chunk's *body* bytes (the chunk file's own
    /// trailing checksum, recorded here so a stale chunk from an earlier
    /// checkpoint cannot silently satisfy a newer manifest).
    pub crc: u32,
}

/// The decoded contents of a manifest file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint sequence number, strictly increasing across checkpoints
    /// of one directory.
    pub seq: u64,
    /// Generation tag binding WAL segments to this snapshot lineage.
    pub generation: u32,
    /// Index of the first WAL segment to replay on top of the chunks.
    pub first_segment: u32,
    /// Every chunk file making up the snapshot, in apply order.
    pub chunks: Vec<ChunkEntry>,
}

/// Encodes a manifest to its full framed byte representation.
pub fn encode_manifest(manifest: &Manifest) -> Vec<u8> {
    let mut body = Writer::new();
    body.u64(manifest.seq);
    body.u32(manifest.generation);
    body.u32(manifest.first_segment);
    body.seq_len(manifest.chunks.len());
    for chunk in &manifest.chunks {
        body.str(&chunk.file);
        body.str(&chunk.kind);
        body.u64(chunk.len);
        body.u32(chunk.crc);
    }
    let body = body.into_bytes();
    let mut w = Writer::with_capacity(MANIFEST_MAGIC.len() + 14 + body.len());
    w.raw(&MANIFEST_MAGIC);
    w.u16(MANIFEST_VERSION);
    w.u64(body.len() as u64);
    w.raw(&body);
    w.u32(crc32(&body));
    w.into_bytes()
}

/// Decodes a framed manifest, verifying magic, version, length and CRC.
///
/// # Errors
/// Returns a [`WireError`] on truncation, a wrong magic or version, a
/// length that disagrees with the buffer, a checksum mismatch, or any
/// structural problem in the body; never panics.
pub fn decode_manifest(bytes: &[u8]) -> Result<Manifest, WireError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(MANIFEST_MAGIC.len())?;
    if magic != MANIFEST_MAGIC {
        return Err(WireError::Corrupt(format!("bad manifest magic {magic:02x?}")));
    }
    let version = r.u16()?;
    if version != MANIFEST_VERSION {
        return Err(WireError::Corrupt(format!(
            "unsupported manifest version {version} (expected {MANIFEST_VERSION})"
        )));
    }
    let body_len = r.u64()? as usize;
    if body_len + 4 != r.remaining() {
        return Err(WireError::Corrupt(format!(
            "manifest body length {body_len} disagrees with {} remaining bytes",
            r.remaining()
        )));
    }
    let body = r.take(body_len)?;
    let stored_crc = r.u32()?;
    let actual_crc = crc32(body);
    if stored_crc != actual_crc {
        return Err(WireError::Corrupt(format!(
            "manifest checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }
    let mut b = Reader::new(body);
    let seq = b.u64()?;
    let generation = b.u32()?;
    let first_segment = b.u32()?;
    let n_chunks = b.seq_len(20)?; // two length prefixes + len + crc minimum
    let mut chunks = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        let file = b.str()?.to_string();
        let kind = b.str()?.to_string();
        let len = b.u64()?;
        let crc = b.u32()?;
        if file.is_empty() || file.contains('/') || file.contains('\\') {
            return Err(WireError::Corrupt(format!(
                "manifest chunk file name {file:?} is empty or contains a path separator"
            )));
        }
        chunks.push(ChunkEntry { file, kind, len, crc });
    }
    if !b.is_empty() {
        return Err(WireError::Corrupt(format!(
            "{} trailing bytes after the manifest body",
            b.remaining()
        )));
    }
    Ok(Manifest { seq, generation, first_segment, chunks })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            seq: 17,
            generation: 0xDEAD_BEEF,
            first_segment: 3,
            chunks: vec![
                ChunkEntry {
                    file: "chunk-0001-static.eqc".into(),
                    kind: "static".into(),
                    len: 4096,
                    crc: 0x1234_5678,
                },
                ChunkEntry {
                    file: "chunk-0017-shard-2.eqc".into(),
                    kind: "shard:2".into(),
                    len: 77,
                    crc: 0,
                },
            ],
        }
    }

    #[test]
    fn roundtrip_is_exact_and_deterministic() {
        let m = sample();
        let bytes = encode_manifest(&m);
        let back = decode_manifest(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(encode_manifest(&back), bytes);
    }

    #[test]
    fn empty_chunk_list_roundtrips() {
        let m = Manifest { seq: 0, generation: 1, first_segment: 0, chunks: Vec::new() };
        assert_eq!(decode_manifest(&encode_manifest(&m)).unwrap(), m);
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let bytes = encode_manifest(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_manifest(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn bad_magic_version_and_crc_are_rejected() {
        let good = encode_manifest(&sample());

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(decode_manifest(&bad_magic), Err(WireError::Corrupt(_))));

        let mut bad_version = good.clone();
        bad_version[8] = 0xFF;
        assert!(matches!(decode_manifest(&bad_version), Err(WireError::Corrupt(_))));

        // Flip one body byte: the trailing CRC no longer matches.
        let mut bad_body = good.clone();
        let mid = 8 + 2 + 8 + 4;
        bad_body[mid] ^= 0x01;
        let err = decode_manifest(&bad_body).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Trailing garbage after the frame is rejected via the length check.
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(decode_manifest(&trailing), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn path_separators_in_chunk_names_are_rejected() {
        let mut m = sample();
        m.chunks[0].file = "../escape.eqc".into();
        let bytes = encode_manifest(&m);
        let err = decode_manifest(&bytes).unwrap_err();
        assert!(err.to_string().contains("path separator"), "{err}");
    }
}
