//! Stream framing: magic-tagged, length-prefixed, CRC-32-guarded frames
//! over arbitrary `std::io` streams.
//!
//! A frame is the unit of message delimitation on a byte stream (a TCP
//! connection, a pipe):
//!
//! ```text
//! frame := magic[4] len:u32le crc32(payload):u32le payload[len]
//! ```
//!
//! The design goals mirror the rest of this crate: reading a frame from a
//! hostile or half-dead peer must never panic, never allocate more than the
//! declared maximum, and always distinguish the three stream endings a
//! server cares about — a *clean* close (EOF exactly on a frame boundary),
//! a *torn* frame (the peer died mid-message), and *corruption* (wrong
//! magic, an implausible length, a checksum mismatch).

use std::io::{ErrorKind, Read, Write};

use crate::crc32;

/// Errors produced while reading a frame from a byte stream.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The frame did not start with the expected magic bytes (the peer is
    /// speaking a different protocol, or the stream lost sync).
    BadMagic {
        /// The four bytes actually read.
        found: [u8; 4],
        /// The magic that was expected.
        expected: [u8; 4],
    },
    /// The length prefix exceeds the reader's configured maximum; the
    /// payload was not allocated or read.
    Oversized {
        /// The declared payload length.
        declared: u64,
        /// The maximum the reader accepts.
        max: u64,
    },
    /// The stream ended in the middle of a frame (torn header or torn
    /// payload) — a mid-message disconnect, not a clean close.
    Truncated {
        /// Which part of the frame was cut short.
        context: &'static str,
    },
    /// The payload arrived complete but its CRC-32 does not match.
    CrcMismatch {
        /// The checksum stored in the frame header.
        stored: u32,
        /// The checksum computed over the received payload.
        computed: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::BadMagic { found, expected } => {
                write!(f, "bad frame magic {found:02x?} (expected {expected:02x?})")
            }
            FrameError::Oversized { declared, max } => {
                write!(f, "frame declares {declared} payload bytes, maximum is {max}")
            }
            FrameError::Truncated { context } => {
                write!(f, "stream ended mid-frame ({context})")
            }
            FrameError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (magic, length, CRC-32, payload) to the stream: a
/// 12-byte header write followed by the payload, with no intermediate
/// copy of the payload (frames can run to tens of megabytes).  Streams
/// with more than one concurrent writer need external serialisation —
/// every user in this workspace has exactly one writer per stream.
///
/// The caller is responsible for flushing if the stream is buffered.
///
/// # Errors
/// Fails if the payload exceeds `u32::MAX` bytes or on stream I/O errors.
pub fn write_frame<W: Write>(w: &mut W, magic: &[u8; 4], payload: &[u8]) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::Oversized {
        declared: payload.len() as u64,
        max: u32::MAX as u64,
    })?;
    let mut header = [0u8; 12];
    header[..4].copy_from_slice(magic);
    header[4..8].copy_from_slice(&len.to_le_bytes());
    header[8..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame from the stream, returning its payload.
///
/// Returns `Ok(None)` on a *clean* end of stream: EOF before the first
/// header byte.  EOF anywhere later is a torn frame and surfaces as
/// [`FrameError::Truncated`].  The length prefix is validated against
/// `max_len` **before** any payload allocation, so a corrupt or hostile
/// length can never trigger a huge allocation.
///
/// # Errors
/// Returns [`FrameError`] on I/O failure, wrong magic, an oversized
/// length, a torn frame, or a payload checksum mismatch.
pub fn read_frame<R: Read>(
    r: &mut R,
    magic: &[u8; 4],
    max_len: u32,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut found = [0u8; 4];
    match read_exact_or_eof(r, &mut found)? {
        Eof::Clean => return Ok(None),
        Eof::Torn => return Err(FrameError::Truncated { context: "frame magic" }),
        Eof::Complete => {}
    }
    if &found != magic {
        return Err(FrameError::BadMagic { found, expected: *magic });
    }
    let mut header = [0u8; 8];
    r.read_exact(&mut header).map_err(truncated("frame length/checksum header"))?;
    // lint:allow(panic) infallible: both slices of the fixed [u8; 8] header are exactly 4 bytes
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    // lint:allow(panic) infallible: both slices of the fixed [u8; 8] header are exactly 4 bytes
    let stored = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    if len > max_len {
        return Err(FrameError::Oversized { declared: len as u64, max: max_len as u64 });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(truncated("frame payload"))?;
    let computed = crc32(&payload);
    if stored != computed {
        return Err(FrameError::CrcMismatch { stored, computed });
    }
    Ok(Some(payload))
}

/// Incremental frame decoder for readiness-driven servers.
///
/// The blocking [`read_frame`] owns its stream and can simply block until a
/// frame completes; an event loop cannot — bytes arrive in whatever chunks
/// a non-blocking socket yields, and a single chunk may hold half a frame
/// or three and a half.  `FrameDecoder` buffers fed bytes and hands back
/// complete payloads as they become available, enforcing the same
/// validation order as the blocking reader: the magic is checked as soon
/// as four bytes are buffered, the length bound as soon as the 12-byte
/// header is — both *before* any payload accumulates, so a hostile length
/// prefix still cannot drive a huge allocation — and the CRC-32 once the
/// payload completes.
///
/// After a returned error the decoder's state is unspecified; the caller
/// is expected to drop the connection (every error here is unrecoverable
/// stream corruption, not a transient condition).
#[derive(Debug)]
pub struct FrameDecoder {
    magic: [u8; 4],
    max_len: u32,
    buf: Vec<u8>,
    /// Start of undecoded bytes within `buf`; consumed prefixes are
    /// compacted away once they outgrow a small threshold, so steady-state
    /// decoding reuses one buffer instead of shifting bytes per frame.
    pos: usize,
}

impl FrameDecoder {
    /// Consumed-prefix size beyond which the buffer is compacted.
    const COMPACT_THRESHOLD: usize = 64 * 1024;

    /// Creates a decoder for frames tagged with `magic`, rejecting
    /// payloads longer than `max_len`.
    pub fn new(magic: [u8; 4], max_len: u32) -> Self {
        Self { magic, max_len, buf: Vec::new(), pos: 0 }
    }

    /// Appends raw stream bytes (as read from a non-blocking socket).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame payload, if the buffered bytes
    /// hold one.  `Ok(None)` means "feed me more"; call again after every
    /// [`extend`](Self::extend) until it returns `None`, since one chunk
    /// can complete several frames.
    ///
    /// # Errors
    /// Returns [`FrameError::BadMagic`], [`FrameError::Oversized`] or
    /// [`FrameError::CrcMismatch`] exactly where the blocking
    /// [`read_frame`] would; the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let b = &self.buf[self.pos..];
        if b.len() >= 4 {
            // lint:allow(panic) infallible: the slice is exactly 4 bytes
            let found: [u8; 4] = b[..4].try_into().expect("4 bytes");
            if found != self.magic {
                return Err(FrameError::BadMagic { found, expected: self.magic });
            }
        }
        if b.len() < 12 {
            return Ok(None);
        }
        // lint:allow(panic) infallible: both slices of the fixed 12-byte header are exactly 4 bytes
        let len = u32::from_le_bytes(b[4..8].try_into().expect("4 bytes"));
        // lint:allow(panic) infallible: both slices of the fixed 12-byte header are exactly 4 bytes
        let stored = u32::from_le_bytes(b[8..12].try_into().expect("4 bytes"));
        if len > self.max_len {
            return Err(FrameError::Oversized { declared: len as u64, max: self.max_len as u64 });
        }
        let total = 12 + len as usize;
        if b.len() < total {
            return Ok(None);
        }
        let payload = b[12..total].to_vec();
        self.pos += total;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > Self::COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        let computed = crc32(&payload);
        if stored != computed {
            return Err(FrameError::CrcMismatch { stored, computed });
        }
        Ok(Some(payload))
    }

    /// Whether undecoded bytes are buffered — i.e. the stream is *inside*
    /// a frame.  An EOF while this is true is a torn frame (the peer died
    /// mid-message); an EOF while it is false is a clean close.
    pub fn has_partial_frame(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Number of undecoded bytes currently buffered.
    pub fn buffered_len(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// How a buffered `read_exact`-like attempt ended.
enum Eof {
    /// All requested bytes arrived.
    Complete,
    /// EOF before the first byte.
    Clean,
    /// EOF after at least one byte.
    Torn,
}

/// Fills `buf` completely, distinguishing a clean EOF (no bytes read) from
/// a torn one (some bytes read) — `Read::read_exact` collapses both into
/// one error, which is not enough to tell a closed connection from a dead
/// peer mid-frame.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<Eof, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(if filled == 0 { Eof::Clean } else { Eof::Torn }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Eof::Complete)
}

/// Maps a `read_exact` error to [`FrameError::Truncated`] when it is an
/// EOF, and to [`FrameError::Io`] otherwise.
fn truncated(context: &'static str) -> impl Fn(std::io::Error) -> FrameError {
    move |e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            FrameError::Truncated { context }
        } else {
            FrameError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const MAGIC: &[u8; 4] = b"TST1";

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, MAGIC, payload).unwrap();
        buf
    }

    #[test]
    fn frames_roundtrip_and_stream_in_sequence() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MAGIC, b"hello").unwrap();
        write_frame(&mut buf, MAGIC, b"").unwrap();
        write_frame(&mut buf, MAGIC, &[0xFF; 1000]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, MAGIC, 4096).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, MAGIC, 4096).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, MAGIC, 4096).unwrap().unwrap(), vec![0xFF; 1000]);
        assert!(read_frame(&mut r, MAGIC, 4096).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn clean_eof_is_none_but_torn_frames_error() {
        let full = framed(b"payload");
        // EOF exactly on the boundary: clean.
        let mut r = Cursor::new(&full[..0]);
        assert!(read_frame(&mut r, MAGIC, 64).unwrap().is_none());
        // Every other truncation point is a torn frame.
        for cut in 1..full.len() {
            let mut r = Cursor::new(&full[..cut]);
            let err = read_frame(&mut r, MAGIC, 64).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut at {cut}/{} gave {err}",
                full.len()
            );
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"EVIL", b"x").unwrap();
        let err = read_frame(&mut Cursor::new(buf), MAGIC, 64).unwrap_err();
        assert!(matches!(err, FrameError::BadMagic { .. }));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        // Hand-build a header declaring a 4 GiB payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut Cursor::new(buf), MAGIC, 1024).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { declared, max: 1024 }
            if declared == u32::MAX as u64));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let full = framed(b"checksummed payload");
        for bit in 0..full.len() * 8 {
            let mut bad = full.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let result = read_frame(&mut Cursor::new(&bad), MAGIC, 64);
            assert!(result.is_err(), "flipping bit {bit} went undetected");
        }
    }

    #[test]
    fn decoder_extracts_frames_fed_one_byte_at_a_time() {
        let mut stream = Vec::new();
        write_frame(&mut stream, MAGIC, b"hello").unwrap();
        write_frame(&mut stream, MAGIC, b"").unwrap();
        write_frame(&mut stream, MAGIC, &[0xAB; 300]).unwrap();
        let mut dec = FrameDecoder::new(*MAGIC, 4096);
        let mut frames = Vec::new();
        for &byte in &stream {
            dec.extend(&[byte]);
            while let Some(payload) = dec.next_frame().unwrap() {
                frames.push(payload);
            }
        }
        assert_eq!(frames, vec![b"hello".to_vec(), Vec::new(), vec![0xAB; 300]]);
        assert!(!dec.has_partial_frame(), "all bytes consumed on a frame boundary");
        assert_eq!(dec.buffered_len(), 0);
    }

    #[test]
    fn decoder_drains_multiple_frames_from_one_chunk() {
        let mut stream = Vec::new();
        for i in 0..5u8 {
            write_frame(&mut stream, MAGIC, &[i; 3]).unwrap();
        }
        // Plus half of a sixth frame.
        let tail = framed(b"torn");
        stream.extend_from_slice(&tail[..tail.len() - 2]);
        let mut dec = FrameDecoder::new(*MAGIC, 4096);
        dec.extend(&stream);
        let mut n = 0;
        while let Some(payload) = dec.next_frame().unwrap() {
            assert_eq!(payload, vec![n as u8; 3]);
            n += 1;
        }
        assert_eq!(n, 5);
        assert!(dec.has_partial_frame(), "the torn sixth frame is still buffered");
        // The missing bytes complete it.
        dec.extend(&tail[tail.len() - 2..]);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"torn");
    }

    #[test]
    fn decoder_rejects_bad_magic_before_the_full_header_arrives() {
        let mut dec = FrameDecoder::new(*MAGIC, 4096);
        dec.extend(b"GET ");
        assert!(matches!(dec.next_frame(), Err(FrameError::BadMagic { .. })));
    }

    #[test]
    fn decoder_rejects_oversized_lengths_before_buffering_any_payload() {
        let mut dec = FrameDecoder::new(*MAGIC, 1024);
        let mut header = Vec::new();
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        dec.extend(&header);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::Oversized { declared, max: 1024 }) if declared == u32::MAX as u64
        ));
    }

    #[test]
    fn decoder_detects_payload_corruption() {
        let mut bad = framed(b"checksummed");
        *bad.last_mut().unwrap() ^= 0x01;
        let mut dec = FrameDecoder::new(*MAGIC, 4096);
        dec.extend(&bad);
        assert!(matches!(dec.next_frame(), Err(FrameError::CrcMismatch { .. })));
    }

    #[test]
    fn decoder_compacts_its_buffer_across_many_frames() {
        // Feed far more than the compaction threshold through the decoder;
        // the internal buffer must not grow with the total stream size.
        let frame = framed(&[0x5A; 1024]);
        let mut dec = FrameDecoder::new(*MAGIC, 4096);
        for _ in 0..256 {
            dec.extend(&frame);
            assert_eq!(dec.next_frame().unwrap().unwrap(), vec![0x5A; 1024]);
        }
        assert_eq!(dec.buffered_len(), 0);
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = FrameError::CrcMismatch { stored: 1, computed: 2 };
        assert!(e.to_string().contains("checksum"));
        assert!(FrameError::Truncated { context: "payload" }.to_string().contains("payload"));
        assert!(FrameError::Oversized { declared: 9, max: 1 }.to_string().contains('9'));
        let e: FrameError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(FrameError::BadMagic { found: [0; 4], expected: *MAGIC }
            .to_string()
            .contains("magic"));
    }
}
