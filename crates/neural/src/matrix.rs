//! A small row-major `f32` matrix.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major matrix of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive ({rows}×{cols})");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive ({rows}×{cols})");
        assert_eq!(data.len(), rows * cols, "data length does not match {rows}×{cols}");
        Self { rows, cols, data }
    }

    /// Creates a matrix with Xavier/Glorot-uniform initialisation, suitable
    /// for layers followed by Tanh, seeded for reproducibility.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let limit = (6.0f64 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The element at `(row, col)`.
    ///
    /// # Panics
    /// Panics (in debug builds via slice indexing) if out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: f32) {
        self.data[row * self.cols + col] = v;
    }

    /// A view of one row.
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// A mutable view of one row.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Builds a matrix by stacking rows.
    ///
    /// # Panics
    /// Panics if `rows` is empty or the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row lengths");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}×{} by {}×{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let other_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Element-wise sum with another matrix of the same shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch in add");
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Adds a row vector to every row (broadcast), e.g. a bias.
    ///
    /// # Panics
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias length does not match columns");
        let mut out = self.clone();
        for r in 0..self.rows {
            for (o, b) in out.row_mut(r).iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch in hadamard");
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Sum over rows, producing one value per column.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_rejected() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_checked() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn get_set_row_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        m.row_mut(0)[0] = 7.0;
        assert_eq!(m.get(0, 0), 7.0);
    }

    #[test]
    fn from_rows_builds_and_validates() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "inconsistent row lengths")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!((c.rows(), c.cols()), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn identity_matmul_is_identity() {
        let mut eye = Matrix::zeros(3, 3);
        for i in 0..3 {
            eye.set(i, i, 1.0);
        }
        let a = Matrix::from_vec(3, 3, (1..=9).map(|x| x as f32).collect());
        assert_eq!(a.matmul(&eye), a);
        assert_eq!(eye.matmul(&a), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_operations() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0, 33.0]);
        assert_eq!(a.hadamard(&b).data(), &[10.0, 40.0, 90.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.map(|x| x * x).data(), &[1.0, 4.0, 9.0]);
    }

    #[test]
    fn broadcast_and_reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.add_row_broadcast(&[10.0, 20.0]).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.column_sums(), vec![4.0, 6.0]);
        assert_eq!(a.mean(), 2.5);
        assert!((a.frobenius_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(8, 16, 3);
        let b = Matrix::xavier(8, 16, 3);
        let c = Matrix::xavier(8, 16, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let limit = (6.0f32 / 24.0).sqrt() + 1e-6;
        assert!(a.data().iter().all(|v| v.abs() <= limit));
        // Not all identical.
        assert!(a.data().iter().any(|v| *v != a.data()[0]));
    }
}
