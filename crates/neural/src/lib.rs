//! Minimal dense neural-network substrate.
//!
//! MiLaN (Roy et al. 2021, used in §2.2 of the paper) is a deep hashing
//! network trained with metric-learning losses.  Rather than binding to an
//! external deep-learning framework, this crate implements the small amount
//! of machinery the hashing head actually needs, from scratch:
//!
//! * [`Matrix`] — a row-major `f32` matrix with the usual BLAS-free
//!   operations,
//! * [`Dense`] + [`Activation`] — fully connected layers with ReLU / Tanh /
//!   identity activations and manual backpropagation,
//! * [`Mlp`] — a sequential multi-layer perceptron,
//! * [`Adam`] and [`Sgd`] — optimisers with gradient clipping.
//!
//! The implementation favours clarity and determinism (seeded
//! initialisation) over raw speed; the matrices involved in the experiments
//! are small (feature dimension ≤ 256, batch size ≤ 256).

#![warn(missing_docs)]

pub mod layers;
pub mod matrix;
pub mod network;
pub mod optimizer;

pub use layers::{Activation, Dense};
pub use matrix::Matrix;
pub use network::{Mlp, MlpConfig};
pub use optimizer::{Adam, Optimizer, Sgd};
