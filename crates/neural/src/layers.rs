//! Fully connected layers with manual backpropagation.

use crate::matrix::Matrix;

/// Activation functions supported by [`Dense`] layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// The identity function (linear layer).
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent; MiLaN's hashing layer uses Tanh so that outputs
    /// live in `(-1, 1)` and binarisation by sign is meaningful.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation element-wise.
    pub fn apply(self, x: &Matrix) -> Matrix {
        match self {
            Activation::Identity => x.clone(),
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Tanh => x.map(|v| v.tanh()),
            Activation::Sigmoid => x.map(|v| 1.0 / (1.0 + (-v).exp())),
        }
    }

    /// The derivative of the activation expressed in terms of the
    /// *activated* output `y = f(x)` (all four functions allow this).
    pub fn derivative_from_output(self, y: &Matrix) -> Matrix {
        match self {
            Activation::Identity => y.map(|_| 1.0),
            Activation::Relu => y.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::Tanh => y.map(|v| 1.0 - v * v),
            Activation::Sigmoid => y.map(|v| v * (1.0 - v)),
        }
    }
}

/// A fully connected layer `y = f(x·W + b)` with cached forward state for
/// backpropagation.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f32>,
    activation: Activation,
    grad_weights: Matrix,
    grad_bias: Vec<f32>,
    cached_input: Option<Matrix>,
    cached_output: Option<Matrix>,
}

impl Dense {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new(input_dim: usize, output_dim: usize, activation: Activation, seed: u64) -> Self {
        Self {
            weights: Matrix::xavier(input_dim, output_dim, seed),
            bias: vec![0.0; output_dim],
            activation,
            grad_weights: Matrix::zeros(input_dim, output_dim),
            grad_bias: vec![0.0; output_dim],
            cached_input: None,
            cached_output: None,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable access to the weight matrix (used by optimisers and tests).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable access to the bias vector.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Accumulated weight gradients from the last backward pass.
    pub fn grad_weights(&self) -> &Matrix {
        &self.grad_weights
    }

    /// Accumulated bias gradients from the last backward pass.
    pub fn grad_bias(&self) -> &[f32] {
        &self.grad_bias
    }

    /// Forward pass for a batch (`batch × input_dim`), caching state needed
    /// by [`backward`](Self::backward).
    ///
    /// # Panics
    /// Panics if the input width does not match the layer.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.input_dim(), "input width does not match the layer");
        let pre = input.matmul(&self.weights).add_row_broadcast(&self.bias);
        let out = self.activation.apply(&pre);
        self.cached_input = Some(input.clone());
        self.cached_output = Some(out.clone());
        out
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.input_dim(), "input width does not match the layer");
        let pre = input.matmul(&self.weights).add_row_broadcast(&self.bias);
        self.activation.apply(&pre)
    }

    /// Backward pass: consumes `grad_output` (`batch × output_dim`),
    /// accumulates weight/bias gradients (averaged over the batch) and
    /// returns the gradient with respect to the input.
    ///
    /// # Panics
    /// Panics if `forward` was not called first or shapes mismatch.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.cached_input.as_ref().expect("backward called before forward");
        let output = self.cached_output.as_ref().expect("backward called before forward");
        assert_eq!(grad_output.rows(), input.rows(), "batch size mismatch in backward");
        assert_eq!(grad_output.cols(), self.output_dim(), "gradient width mismatch in backward");

        // dL/d(pre-activation) = dL/dy ⊙ f'(y)
        let grad_pre = grad_output.hadamard(&self.activation.derivative_from_output(output));
        let batch = input.rows() as f32;
        self.grad_weights = input.transpose().matmul(&grad_pre).scale(1.0 / batch);
        self.grad_bias = grad_pre.column_sums().iter().map(|g| g / batch).collect();
        grad_pre.matmul(&self.weights.transpose())
    }

    /// Clears cached activations (e.g. between epochs) to release memory.
    pub fn clear_cache(&mut self) {
        self.cached_input = None;
        self.cached_output = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activations_apply_known_values() {
        let x = Matrix::from_vec(1, 4, vec![-2.0, -0.5, 0.0, 2.0]);
        assert_eq!(Activation::Identity.apply(&x).data(), x.data());
        assert_eq!(Activation::Relu.apply(&x).data(), &[0.0, 0.0, 0.0, 2.0]);
        let tanh = Activation::Tanh.apply(&x);
        assert!(tanh.data().iter().all(|v| (-1.0..=1.0).contains(v)));
        assert!((tanh.get(0, 3) - 2.0f32.tanh()).abs() < 1e-6);
        let sig = Activation::Sigmoid.apply(&x);
        assert!((sig.get(0, 2) - 0.5).abs() < 1e-6);
        assert!(sig.data().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in [Activation::Identity, Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            for &x0 in &[-1.7f32, -0.3, 0.4, 1.9] {
                let x = Matrix::from_vec(1, 1, vec![x0]);
                let y = act.apply(&x);
                let analytic = act.derivative_from_output(&y).get(0, 0);
                let xp = Matrix::from_vec(1, 1, vec![x0 + eps]);
                let xm = Matrix::from_vec(1, 1, vec![x0 - eps]);
                let numeric = (act.apply(&xp).get(0, 0) - act.apply(&xm).get(0, 0)) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-2,
                    "{act:?} at {x0}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn dense_forward_shape_and_determinism() {
        let mut layer = Dense::new(4, 3, Activation::Relu, 7);
        let x = Matrix::from_vec(2, 4, vec![1.0; 8]);
        let y1 = layer.forward(&x);
        let y2 = layer.forward_inference(&x);
        assert_eq!((y1.rows(), y1.cols()), (2, 3));
        assert_eq!(y1, y2);
        assert_eq!(layer.input_dim(), 4);
        assert_eq!(layer.output_dim(), 3);
        assert_eq!(layer.activation(), Activation::Relu);
    }

    #[test]
    #[should_panic(expected = "does not match the layer")]
    fn dense_forward_rejects_wrong_width() {
        let mut layer = Dense::new(4, 3, Activation::Relu, 7);
        let x = Matrix::zeros(2, 5);
        let _ = layer.forward(&x);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_requires_forward() {
        let mut layer = Dense::new(2, 2, Activation::Identity, 1);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    // Index loops keep the finite-difference perturbation sites explicit.
    #[allow(clippy::needless_range_loop)]
    fn dense_gradient_check_against_numerical_differentiation() {
        // Scalar loss L = sum(forward(x)); check dL/dW numerically.
        let mut layer = Dense::new(3, 2, Activation::Tanh, 11);
        let x = Matrix::from_vec(2, 3, vec![0.3, -0.7, 0.5, 1.1, 0.2, -0.4]);

        let y = layer.forward(&x);
        let grad_output = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let _ = layer.backward(&grad_output);
        let analytic = layer.grad_weights().clone();
        let analytic_bias = layer.grad_bias().to_vec();

        let eps = 1e-3f32;
        let batch = x.rows() as f32;
        for r in 0..3 {
            for c in 0..2 {
                let orig = layer.weights().get(r, c);
                layer.weights_mut().set(r, c, orig + eps);
                let lp: f32 = layer.forward_inference(&x).data().iter().sum();
                layer.weights_mut().set(r, c, orig - eps);
                let lm: f32 = layer.forward_inference(&x).data().iter().sum();
                layer.weights_mut().set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps) / batch;
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() < 1e-2,
                    "dW[{r},{c}]: analytic {a} vs numeric {numeric}"
                );
            }
        }
        for c in 0..2 {
            let orig = layer.bias()[c];
            layer.bias_mut()[c] = orig + eps;
            let lp: f32 = layer.forward_inference(&x).data().iter().sum();
            layer.bias_mut()[c] = orig - eps;
            let lm: f32 = layer.forward_inference(&x).data().iter().sum();
            layer.bias_mut()[c] = orig;
            let numeric = (lp - lm) / (2.0 * eps) / batch;
            assert!(
                (analytic_bias[c] - numeric).abs() < 1e-2,
                "db[{c}]: analytic {} vs numeric {numeric}",
                analytic_bias[c]
            );
        }
    }

    #[test]
    fn backward_returns_input_gradient_of_right_shape() {
        let mut layer = Dense::new(5, 3, Activation::Relu, 3);
        let x = Matrix::xavier(4, 5, 1);
        let y = layer.forward(&x);
        let g = layer.backward(&Matrix::zeros(y.rows(), y.cols()).map(|_| 0.5));
        assert_eq!((g.rows(), g.cols()), (4, 5));
    }

    #[test]
    fn clear_cache_releases_state() {
        let mut layer = Dense::new(2, 2, Activation::Identity, 1);
        let _ = layer.forward(&Matrix::zeros(1, 2));
        layer.clear_cache();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut l = layer.clone();
            l.backward(&Matrix::zeros(1, 2))
        }));
        assert!(result.is_err());
    }
}
