//! Optimisers: plain SGD and Adam, with global-norm gradient clipping.

/// A parameter update rule operating on flat parameter/gradient slices.
///
/// The MLP exposes its parameters as `(parameter slice, gradient slice)`
/// pairs per tensor; optimisers keep per-tensor state keyed by an index
/// assigned at registration time.
pub trait Optimizer {
    /// Registers a parameter tensor of the given length and returns its
    /// slot index.
    fn register(&mut self, len: usize) -> usize;

    /// Applies one update step to the parameter tensor in `slot`.
    ///
    /// # Panics
    /// Implementations panic if the slot was never registered or the
    /// lengths do not match the registration.
    fn step(&mut self, slot: usize, params: &mut [f32], grads: &[f32]);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    ///
    /// # Panics
    /// Panics if the learning rate is not positive or momentum is not in `[0, 1)`.
    pub fn new(learning_rate: f32, momentum: f32) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self { learning_rate, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn register(&mut self, len: usize) -> usize {
        self.velocity.push(vec![0.0; len]);
        self.velocity.len() - 1
    }

    fn step(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        let v = &mut self.velocity[slot];
        assert_eq!(v.len(), params.len(), "parameter length changed since registration");
        assert_eq!(params.len(), grads.len(), "parameter/gradient length mismatch");
        for i in 0..params.len() {
            v[i] = self.momentum * v[i] - self.learning_rate * grads[i];
            params[i] += v[i];
        }
    }
}

/// The Adam optimiser (Kingma & Ba, 2015) — the optimiser used to train
/// MiLaN in Roy et al. 2021.
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimiser with the usual defaults
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
    ///
    /// # Panics
    /// Panics if the learning rate is not positive.
    pub fn new(learning_rate: f32) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Advances the shared time step; call once per batch before stepping
    /// the individual tensors.
    pub fn next_step(&mut self) {
        self.t += 1;
    }

    /// The number of completed steps.
    pub fn steps(&self) -> i32 {
        self.t
    }
}

impl Optimizer for Adam {
    fn register(&mut self, len: usize) -> usize {
        self.m.push(vec![0.0; len]);
        self.v.push(vec![0.0; len]);
        self.m.len() - 1
    }

    fn step(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        if self.t == 0 {
            self.t = 1; // allow use without an explicit next_step()
        }
        let m = &mut self.m[slot];
        let v = &mut self.v[slot];
        assert_eq!(m.len(), params.len(), "parameter length changed since registration");
        assert_eq!(params.len(), grads.len(), "parameter/gradient length mismatch");
        let bias1 = 1.0 - self.beta1.powi(self.t);
        let bias2 = 1.0 - self.beta2.powi(self.t);
        for i in 0..params.len() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grads[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = m[i] / bias1;
            let v_hat = v[i] / bias2;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }
}

/// Scales `grads` in place so that their global L2 norm does not exceed
/// `max_norm`; returns the pre-clipping norm.
pub fn clip_gradients(grads: &mut [&mut [f32]], max_norm: f32) -> f32 {
    let norm: f32 = grads.iter().flat_map(|g| g.iter()).map(|g| g * g).sum::<f32>().sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for x in g.iter_mut() {
                *x *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)² with each optimiser and check convergence.
    fn minimise(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let slot = opt.register(1);
        let mut x = [0.0f32];
        for _ in 0..steps {
            let grad = [2.0 * (x[0] - 3.0)];
            opt.step(slot, &mut x, &grad);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let x = minimise(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-3, "got {x}");
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let x = minimise(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "got {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let slot = opt.register(1);
        let mut x = [0.0f32];
        for _ in 0..500 {
            opt.next_step();
            let grad = [2.0 * (x[0] - 3.0)];
            opt.step(slot, &mut x, &grad);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "got {}", x[0]);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn sgd_rejects_non_positive_learning_rate() {
        let _ = Sgd::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn sgd_rejects_bad_momentum() {
        let _ = Sgd::new(0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn step_rejects_mismatched_lengths() {
        let mut opt = Sgd::new(0.1, 0.0);
        let slot = opt.register(2);
        let mut params = [0.0f32, 0.0];
        opt.step(slot, &mut params, &[1.0]);
    }

    #[test]
    fn multiple_slots_are_independent() {
        let mut opt = Adam::new(0.5);
        let a = opt.register(1);
        let b = opt.register(1);
        let mut xa = [0.0f32];
        let mut xb = [10.0f32];
        for _ in 0..100 {
            opt.next_step();
            let ga = [2.0 * (xa[0] - 1.0)];
            opt.step(a, &mut xa, &ga);
            let gb = [2.0 * (xb[0] - 5.0)];
            opt.step(b, &mut xb, &gb);
        }
        assert!((xa[0] - 1.0).abs() < 0.1);
        assert!((xb[0] - 5.0).abs() < 0.1);
    }

    #[test]
    fn gradient_clipping_scales_only_when_needed() {
        let mut g1 = vec![3.0f32, 0.0];
        let mut g2 = vec![0.0f32, 4.0];
        {
            let mut grads: Vec<&mut [f32]> = vec![&mut g1, &mut g2];
            let norm = clip_gradients(&mut grads, 10.0);
            assert!((norm - 5.0).abs() < 1e-6);
        }
        assert_eq!(g1, vec![3.0, 0.0]); // untouched: norm below max

        let mut g1 = vec![3.0f32, 0.0];
        let mut g2 = vec![0.0f32, 4.0];
        {
            let mut grads: Vec<&mut [f32]> = vec![&mut g1, &mut g2];
            let norm = clip_gradients(&mut grads, 1.0);
            assert!((norm - 5.0).abs() < 1e-6);
        }
        let new_norm = (g1.iter().chain(g2.iter()).map(|x| x * x).sum::<f32>()).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-5);
    }
}
