//! A sequential multi-layer perceptron.

use crate::layers::{Activation, Dense};
use crate::matrix::Matrix;
use crate::optimizer::{clip_gradients, Optimizer};

/// Configuration of an [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Hidden layer widths (each followed by [`MlpConfig::hidden_activation`]).
    pub hidden_dims: Vec<usize>,
    /// Output dimensionality.
    pub output_dim: usize,
    /// Activation of the hidden layers.
    pub hidden_activation: Activation,
    /// Activation of the output layer.
    pub output_activation: Activation,
    /// Seed for weight initialisation.
    pub seed: u64,
    /// Global-norm gradient clipping threshold (0 disables clipping).
    pub grad_clip: f32,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            input_dim: 64,
            hidden_dims: vec![256],
            output_dim: 128,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Tanh,
            seed: 42,
            grad_clip: 5.0,
        }
    }
}

/// A sequential stack of [`Dense`] layers.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    grad_clip: f32,
    optimizer_slots: Vec<(usize, usize)>, // (weight slot, bias slot) per layer
}

impl Mlp {
    /// Builds an MLP from a configuration.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(config: &MlpConfig) -> Self {
        assert!(config.input_dim > 0 && config.output_dim > 0, "dimensions must be positive");
        let mut dims = vec![config.input_dim];
        dims.extend_from_slice(&config.hidden_dims);
        dims.push(config.output_dim);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() {
                config.output_activation
            } else {
                config.hidden_activation
            };
            layers.push(Dense::new(
                dims[i],
                dims[i + 1],
                act,
                config.seed.wrapping_add(i as u64 * 7919),
            ));
        }
        Self { layers, grad_clip: config.grad_clip, optimizer_slots: Vec::new() }
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable access to the layers (used by tests and serialization).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map(|l| l.input_dim()).unwrap_or(0)
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map(|l| l.output_dim()).unwrap_or(0)
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.input_dim() * l.output_dim() + l.output_dim()).sum()
    }

    /// Training forward pass (caches activations for backpropagation).
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Inference forward pass (no caching, `&self`).
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward_inference(&x);
        }
        x
    }

    /// Backpropagates a loss gradient with respect to the network output and
    /// accumulates per-layer parameter gradients.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Registers all parameter tensors with an optimiser (must be called
    /// once before [`apply_gradients`](Self::apply_gradients)).
    pub fn register_with(&mut self, optimizer: &mut dyn Optimizer) {
        self.optimizer_slots = self
            .layers
            .iter()
            .map(|l| {
                let w = optimizer.register(l.input_dim() * l.output_dim());
                let b = optimizer.register(l.output_dim());
                (w, b)
            })
            .collect();
    }

    /// Applies the currently accumulated gradients through the optimiser,
    /// clipping them to the configured global norm first.
    ///
    /// # Panics
    /// Panics if [`register_with`](Self::register_with) was not called.
    pub fn apply_gradients(&mut self, optimizer: &mut dyn Optimizer) {
        assert_eq!(
            self.optimizer_slots.len(),
            self.layers.len(),
            "call register_with before apply_gradients"
        );
        // Clip across all tensors jointly.
        if self.grad_clip > 0.0 {
            let mut grads: Vec<Vec<f32>> = Vec::new();
            for l in &self.layers {
                grads.push(l.grad_weights().data().to_vec());
                grads.push(l.grad_bias().to_vec());
            }
            let mut views: Vec<&mut [f32]> = grads.iter_mut().map(|g| g.as_mut_slice()).collect();
            let _ = clip_gradients(&mut views, self.grad_clip);
            // Write the (possibly scaled) gradients back into the layers by
            // stepping directly with the clipped copies.
            for (i, layer) in self.layers.iter_mut().enumerate() {
                let (wslot, bslot) = self.optimizer_slots[i];
                let gw = &grads[i * 2];
                let gb = &grads[i * 2 + 1];
                optimizer.step(wslot, layer.weights_mut().data_mut(), gw);
                optimizer.step(bslot, layer.bias_mut(), gb);
            }
        } else {
            for (i, layer) in self.layers.iter_mut().enumerate() {
                let (wslot, bslot) = self.optimizer_slots[i];
                let gw = layer.grad_weights().data().to_vec();
                let gb = layer.grad_bias().to_vec();
                optimizer.step(wslot, layer.weights_mut().data_mut(), &gw);
                optimizer.step(bslot, layer.bias_mut(), &gb);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;

    fn config(input: usize, hidden: Vec<usize>, output: usize) -> MlpConfig {
        MlpConfig {
            input_dim: input,
            hidden_dims: hidden,
            output_dim: output,
            ..Default::default()
        }
    }

    #[test]
    fn construction_and_shapes() {
        let mlp = Mlp::new(&config(8, vec![16, 12], 4));
        assert_eq!(mlp.layers().len(), 3);
        assert_eq!(mlp.input_dim(), 8);
        assert_eq!(mlp.output_dim(), 4);
        assert_eq!(mlp.parameter_count(), 8 * 16 + 16 + 16 * 12 + 12 + 12 * 4 + 4);
        // Hidden layers use the hidden activation, output layer the output one.
        assert_eq!(mlp.layers()[0].activation(), Activation::Relu);
        assert_eq!(mlp.layers()[2].activation(), Activation::Tanh);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimensions_rejected() {
        let _ = Mlp::new(&config(0, vec![4], 2));
    }

    #[test]
    fn forward_and_inference_agree() {
        let mut mlp = Mlp::new(&config(6, vec![10], 3));
        let x = Matrix::xavier(5, 6, 99);
        let a = mlp.forward(&x);
        let b = mlp.forward_inference(&x);
        assert_eq!(a, b);
        assert_eq!((a.rows(), a.cols()), (5, 3));
        // Tanh output stays in (-1, 1).
        assert!(a.data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn training_reduces_a_simple_regression_loss() {
        // Learn y = tanh of a fixed linear map from random inputs.
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 4,
            hidden_dims: vec![16],
            output_dim: 2,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Identity,
            seed: 5,
            grad_clip: 5.0,
        });
        let x = Matrix::xavier(32, 4, 123);
        // Target: a fixed linear function of the input.
        let w_true = Matrix::xavier(4, 2, 321);
        let y_true = x.matmul(&w_true);

        let mut opt = Adam::new(0.01);
        mlp.register_with(&mut opt);

        let loss_of =
            |pred: &Matrix| -> f32 { pred.add(&y_true.scale(-1.0)).map(|d| d * d).mean() };

        let initial = loss_of(&mlp.forward_inference(&x));
        for _ in 0..300 {
            let pred = mlp.forward(&x);
            // dL/dpred for MSE (mean over all elements): 2 (pred - y) / N
            let n = (pred.rows() * pred.cols()) as f32;
            let grad = pred.add(&y_true.scale(-1.0)).scale(2.0 / n * pred.rows() as f32);
            mlp.backward(&grad);
            opt.next_step();
            mlp.apply_gradients(&mut opt);
        }
        let final_loss = loss_of(&mlp.forward_inference(&x));
        assert!(
            final_loss < initial * 0.2,
            "training did not reduce the loss: {initial} -> {final_loss}"
        );
    }

    #[test]
    #[should_panic(expected = "register_with")]
    fn apply_gradients_requires_registration() {
        let mut mlp = Mlp::new(&config(2, vec![], 2));
        let mut opt = Adam::new(0.01);
        let x = Matrix::zeros(1, 2);
        let y = mlp.forward(&x);
        mlp.backward(&y);
        mlp.apply_gradients(&mut opt);
    }

    #[test]
    fn backward_returns_input_gradient() {
        let mut mlp = Mlp::new(&config(5, vec![7], 3));
        let x = Matrix::xavier(2, 5, 8);
        let y = mlp.forward(&x);
        let g = mlp.backward(&y.map(|_| 1.0));
        assert_eq!((g.rows(), g.cols()), (2, 5));
    }

    #[test]
    fn no_hidden_layer_network_is_a_single_dense() {
        let mlp = Mlp::new(&config(4, vec![], 2));
        assert_eq!(mlp.layers().len(), 1);
        assert_eq!(mlp.layers()[0].activation(), Activation::Tanh);
    }

    #[test]
    fn identical_seeds_give_identical_networks() {
        let a = Mlp::new(&config(4, vec![8], 2));
        let b = Mlp::new(&config(4, vec![8], 2));
        let x = Matrix::xavier(3, 4, 1);
        assert_eq!(a.forward_inference(&x), b.forward_inference(&x));
    }
}
