//! Per-dimension feature standardisation.
//!
//! The hand-crafted descriptor (see [`crate::features`]) has a large common
//! offset shared by all patches (absolute reflectance levels), which would
//! dominate the hashing layer's pre-activations and collapse codes.  MiLaN's
//! CNN backbone handles this with batch normalisation; here the equivalent
//! is an explicit z-score normaliser fitted on the training features and
//! stored inside the model so that query-time features (including external
//! "query-by-new-example" images, §3.3) are transformed consistently.

/// A fitted per-dimension z-score normaliser.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Normalizer {
    /// Fits a normaliser on a set of feature vectors.
    ///
    /// # Panics
    /// Panics if `features` is empty or the rows have inconsistent lengths.
    pub fn fit(features: &[Vec<f32>]) -> Self {
        assert!(!features.is_empty(), "cannot fit a normalizer on zero samples");
        let dim = features[0].len();
        assert!(dim > 0, "feature vectors cannot be empty");
        assert!(features.iter().all(|f| f.len() == dim), "inconsistent feature dimensions");
        let n = features.len() as f32;
        let mut mean = vec![0.0f32; dim];
        for f in features {
            for (m, v) in mean.iter_mut().zip(f) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut std = vec![0.0f32; dim];
        for f in features {
            for ((s, v), m) in std.iter_mut().zip(f).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in std.iter_mut() {
            *s = (*s / n).sqrt().max(1e-6); // guard against constant dimensions
        }
        Self { mean, std }
    }

    /// Feature dimensionality the normaliser was fitted on.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The fitted per-dimension means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// The fitted per-dimension standard deviations.
    pub fn std(&self) -> &[f32] {
        &self.std
    }

    /// Rebuilds a normaliser from stored statistics (snapshot restoration);
    /// `None` if the vectors are empty or their lengths disagree.
    pub(crate) fn from_parts(mean: Vec<f32>, std: Vec<f32>) -> Option<Self> {
        if mean.is_empty() || mean.len() != std.len() {
            return None;
        }
        Some(Self { mean, std })
    }

    /// Standardises one feature vector.
    ///
    /// # Panics
    /// Panics if the vector's length does not match the fitted dimension.
    pub fn apply(&self, features: &[f32]) -> Vec<f32> {
        assert_eq!(features.len(), self.dim(), "feature dimension mismatch");
        features
            .iter()
            .zip(self.mean.iter().zip(self.std.iter()))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Standardises a batch of feature vectors.
    pub fn apply_all(&self, features: &[Vec<f32>]) -> Vec<Vec<f32>> {
        features.iter().map(|f| self.apply(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_and_apply_standardises() {
        let data = vec![vec![1.0f32, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let norm = Normalizer::fit(&data);
        assert_eq!(norm.dim(), 2);
        let out = norm.apply_all(&data);
        // Column 0: mean 3, values standardised to have zero mean, unit-ish variance.
        let mean0: f32 = out.iter().map(|r| r[0]).sum::<f32>() / 3.0;
        assert!(mean0.abs() < 1e-6);
        // Column 1 is constant: guarded std keeps outputs finite (zeros).
        assert!(out.iter().all(|r| r[1].abs() < 1e-3));
    }

    #[test]
    fn apply_is_deterministic_and_invertible_in_shape() {
        let data = vec![vec![0.5f32, -1.0, 2.0], vec![1.5, 0.0, -2.0]];
        let norm = Normalizer::fit(&data);
        let a = norm.apply(&data[0]);
        let b = norm.apply(&data[0]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn fit_rejects_empty_input() {
        let _ = Normalizer::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn apply_rejects_wrong_dimension() {
        let norm = Normalizer::fit(&[vec![1.0f32, 2.0]]);
        let _ = norm.apply(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature dimensions")]
    fn fit_rejects_ragged_rows() {
        let _ = Normalizer::fit(&[vec![1.0f32], vec![1.0, 2.0]]);
    }
}
