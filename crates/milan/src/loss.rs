//! The three MiLaN loss functions and their gradients.
//!
//! All losses operate on the real-valued outputs of the hashing layer
//! (Tanh outputs in `(-1, 1)`, one row per image, one column per bit) and
//! return both the scalar loss and the gradient with respect to those
//! outputs, which the `eq-neural` MLP then backpropagates.

use eq_neural::Matrix;

/// Relative weights of the three losses plus the triplet margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossWeights {
    /// Weight of the triplet loss.
    pub triplet: f32,
    /// Weight of the bit-balance (and decorrelation) loss.
    pub bit_balance: f32,
    /// Weight of the quantization loss.
    pub quantization: f32,
    /// Triplet margin in the learned metric space.
    pub margin: f32,
}

impl Default for LossWeights {
    fn default() -> Self {
        // The relative weighting follows Roy et al. 2021: the triplet term
        // dominates, the two regularisers are an order of magnitude smaller.
        Self { triplet: 1.0, bit_balance: 0.1, quantization: 0.05, margin: 2.0 }
    }
}

impl LossWeights {
    /// Weights with only the triplet term active (ablation experiment E6).
    pub fn triplet_only(margin: f32) -> Self {
        Self { triplet: 1.0, bit_balance: 0.0, quantization: 0.0, margin }
    }
}

/// Per-term breakdown of a loss evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LossBreakdown {
    /// Triplet loss value.
    pub triplet: f32,
    /// Bit-balance loss value.
    pub bit_balance: f32,
    /// Quantization loss value.
    pub quantization: f32,
    /// Weighted total.
    pub total: f32,
    /// Fraction of triplets with a non-zero (active) loss.
    pub active_triplet_fraction: f32,
}

/// Triplet loss on a batch of (anchor, positive, negative) output rows:
/// `L = mean_i max(0, ‖a_i − p_i‖² − ‖a_i − n_i‖² + margin)`.
///
/// Returns the loss, the gradients with respect to anchors, positives and
/// negatives, and the fraction of active (non-zero) triplets.
///
/// # Panics
/// Panics if the three matrices do not share the same shape.
pub fn triplet_loss(
    anchors: &Matrix,
    positives: &Matrix,
    negatives: &Matrix,
    margin: f32,
) -> (f32, Matrix, Matrix, Matrix, f32) {
    assert_eq!(
        (anchors.rows(), anchors.cols()),
        (positives.rows(), positives.cols()),
        "shape mismatch"
    );
    assert_eq!(
        (anchors.rows(), anchors.cols()),
        (negatives.rows(), negatives.cols()),
        "shape mismatch"
    );
    let n = anchors.rows();
    let k = anchors.cols();
    let mut loss = 0.0f32;
    let mut active = 0usize;
    let mut grad_a = Matrix::zeros(n, k);
    let mut grad_p = Matrix::zeros(n, k);
    let mut grad_n = Matrix::zeros(n, k);
    for i in 0..n {
        let a = anchors.row(i);
        let p = positives.row(i);
        let neg = negatives.row(i);
        let d_ap: f32 = a.iter().zip(p).map(|(x, y)| (x - y) * (x - y)).sum();
        let d_an: f32 = a.iter().zip(neg).map(|(x, y)| (x - y) * (x - y)).sum();
        let violation = d_ap - d_an + margin;
        if violation > 0.0 {
            loss += violation;
            active += 1;
            for j in 0..k {
                // dL/da = 2(n - p), dL/dp = 2(p - a), dL/dn = 2(a - n)
                grad_a.set(i, j, 2.0 * (neg[j] - p[j]) / n as f32);
                grad_p.set(i, j, 2.0 * (p[j] - a[j]) / n as f32);
                grad_n.set(i, j, 2.0 * (a[j] - neg[j]) / n as f32);
            }
        }
    }
    (loss / n as f32, grad_a, grad_p, grad_n, if n == 0 { 0.0 } else { active as f32 / n as f32 })
}

/// Bit-balance loss: pushes every bit to be active for ~50 % of the images
/// and decorrelates the bits.
///
/// `L = ‖mean_rows(B)‖² / K  +  ‖BᵀB/N − I‖²_F / K²`
///
/// The first term is the balance term described in the paper ("each bit has
/// a 50 % chance to be activated"); the second enforces the independence
/// requirement ("makes the different bits independent from each other").
pub fn bit_balance_loss(outputs: &Matrix) -> (f32, Matrix) {
    let n = outputs.rows();
    let k = outputs.cols();
    let nf = n as f32;
    let kf = k as f32;

    // Balance term.
    let means: Vec<f32> = outputs.column_sums().iter().map(|s| s / nf).collect();
    let balance: f32 = means.iter().map(|m| m * m).sum::<f32>() / kf;

    // Decorrelation term: C = BᵀB/N − I.
    let bt = outputs.transpose();
    let c = bt.matmul(outputs).scale(1.0 / nf);
    let mut corr = 0.0f32;
    let mut c_minus_i = c.clone();
    for j in 0..k {
        c_minus_i.set(j, j, c.get(j, j) - 1.0);
    }
    for v in c_minus_i.data() {
        corr += v * v;
    }
    corr /= kf * kf;

    // Gradients.
    // d(balance)/dB_ij = 2 * mean_j / (N * K)
    let mut grad = Matrix::zeros(n, k);
    for i in 0..n {
        for (j, mean) in means.iter().enumerate() {
            grad.set(i, j, 2.0 * mean / (nf * kf));
        }
    }
    // d(corr)/dB = 4/(N*K²) * B (BᵀB/N − I)
    let corr_grad = outputs.matmul(&c_minus_i).scale(4.0 / (nf * kf * kf));
    let grad = grad.add(&corr_grad);

    (balance + corr, grad)
}

/// Quantization loss: keeps outputs close to ±1 so that taking the sign
/// afterwards loses little information.
///
/// `L = mean_i ‖b_i − sign(b_i)‖² / K`
pub fn quantization_loss(outputs: &Matrix) -> (f32, Matrix) {
    let n = outputs.rows() as f32;
    let k = outputs.cols() as f32;
    let sign = outputs.map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
    let diff = outputs.add(&sign.scale(-1.0));
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / (n * k);
    let grad = diff.scale(2.0 / (n * k));
    (loss, grad)
}

/// The combined MiLaN loss.
#[derive(Debug, Clone, Copy, Default)]
pub struct MilanLoss {
    weights: LossWeights,
}

impl MilanLoss {
    /// Creates the loss with the given weights.
    pub fn new(weights: LossWeights) -> Self {
        Self { weights }
    }

    /// The weights in use.
    pub fn weights(&self) -> LossWeights {
        self.weights
    }

    /// Evaluates the combined loss on a triplet batch and returns the
    /// per-part gradients (anchor, positive, negative) plus a breakdown.
    pub fn compute(
        &self,
        anchors: &Matrix,
        positives: &Matrix,
        negatives: &Matrix,
    ) -> (LossBreakdown, Matrix, Matrix, Matrix) {
        let w = self.weights;
        let (l_tri, mut ga, mut gp, mut gn, active) =
            triplet_loss(anchors, positives, negatives, w.margin);
        ga = ga.scale(w.triplet);
        gp = gp.scale(w.triplet);
        gn = gn.scale(w.triplet);

        let mut l_bb = 0.0;
        let mut l_q = 0.0;
        // The regularisers act on every output row; evaluate them per part
        // so the gradients stay aligned with the three forward passes.
        for (part, grad) in [(anchors, &mut ga), (positives, &mut gp), (negatives, &mut gn)] {
            if w.bit_balance > 0.0 {
                let (l, g) = bit_balance_loss(part);
                l_bb += l / 3.0;
                *grad = grad.add(&g.scale(w.bit_balance));
            }
            if w.quantization > 0.0 {
                let (l, g) = quantization_loss(part);
                l_q += l / 3.0;
                *grad = grad.add(&g.scale(w.quantization));
            }
        }

        let total = w.triplet * l_tri + w.bit_balance * l_bb + w.quantization * l_q;
        (
            LossBreakdown {
                triplet: l_tri,
                bit_balance: l_bb,
                quantization: l_q,
                total,
                active_triplet_fraction: active,
            },
            ga,
            gp,
            gn,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn triplet_loss_is_zero_when_margin_satisfied() {
        let a = m(1, 2, vec![0.0, 0.0]);
        let p = m(1, 2, vec![0.1, 0.0]);
        let n = m(1, 2, vec![5.0, 5.0]);
        let (loss, ga, gp, gn, active) = triplet_loss(&a, &p, &n, 1.0);
        assert_eq!(loss, 0.0);
        assert_eq!(active, 0.0);
        assert!(ga.data().iter().all(|v| *v == 0.0));
        assert!(gp.data().iter().all(|v| *v == 0.0));
        assert!(gn.data().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn triplet_loss_value_matches_hand_computation() {
        // d_ap = 1, d_an = 0.25, margin = 0.5 → loss = 1.25
        let a = m(1, 1, vec![0.0]);
        let p = m(1, 1, vec![1.0]);
        let n = m(1, 1, vec![0.5]);
        let (loss, ga, gp, gn, active) = triplet_loss(&a, &p, &n, 0.5);
        assert!((loss - 1.25).abs() < 1e-6);
        assert_eq!(active, 1.0);
        // grads: dL/da = 2(n-p) = -1, dL/dp = 2(p-a) = 2, dL/dn = 2(a-n) = -1
        assert!((ga.get(0, 0) + 1.0).abs() < 1e-6);
        assert!((gp.get(0, 0) - 2.0).abs() < 1e-6);
        assert!((gn.get(0, 0) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn triplet_gradient_matches_finite_differences() {
        let a = m(2, 3, vec![0.2, -0.4, 0.1, 0.9, 0.3, -0.7]);
        let p = m(2, 3, vec![0.1, -0.5, 0.3, 0.8, 0.1, -0.6]);
        let n = m(2, 3, vec![-0.3, 0.6, -0.2, 0.2, -0.9, 0.4]);
        let margin = 1.0;
        let (_, ga, _, _, _) = triplet_loss(&a, &p, &n, margin);
        let eps = 1e-3f32;
        for i in 0..2 {
            for j in 0..3 {
                let mut ap = a.clone();
                ap.set(i, j, a.get(i, j) + eps);
                let mut am = a.clone();
                am.set(i, j, a.get(i, j) - eps);
                let (lp, ..) = triplet_loss(&ap, &p, &n, margin);
                let (lm, ..) = triplet_loss(&am, &p, &n, margin);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - ga.get(i, j)).abs() < 1e-2,
                    "grad_a[{i},{j}]: numeric {numeric} analytic {}",
                    ga.get(i, j)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn triplet_loss_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let p = Matrix::zeros(2, 3);
        let n = Matrix::zeros(3, 3);
        let _ = triplet_loss(&a, &p, &n, 1.0);
    }

    #[test]
    fn bit_balance_loss_is_zero_for_perfectly_balanced_uncorrelated_bits() {
        // Two bits, four samples forming a perfectly balanced ±1 Hadamard-like pattern.
        let b = m(4, 2, vec![1.0, 1.0, 1.0, -1.0, -1.0, 1.0, -1.0, -1.0]);
        let (loss, grad) = bit_balance_loss(&b);
        assert!(loss.abs() < 1e-6, "loss {loss}");
        assert!(grad.frobenius_norm() < 1e-5);
    }

    #[test]
    fn bit_balance_loss_penalises_constant_bits() {
        let b = m(4, 2, vec![1.0; 8]); // every bit always +1 and fully correlated
        let (loss, _) = bit_balance_loss(&b);
        assert!(loss > 0.5, "constant bits should be penalised, got {loss}");
    }

    #[test]
    fn bit_balance_gradient_matches_finite_differences() {
        let b = m(3, 2, vec![0.8, -0.3, 0.2, 0.9, -0.6, -0.1]);
        let (_, grad) = bit_balance_loss(&b);
        let eps = 1e-3f32;
        for i in 0..3 {
            for j in 0..2 {
                let mut bp = b.clone();
                bp.set(i, j, b.get(i, j) + eps);
                let mut bm = b.clone();
                bm.set(i, j, b.get(i, j) - eps);
                let numeric = (bit_balance_loss(&bp).0 - bit_balance_loss(&bm).0) / (2.0 * eps);
                assert!(
                    (numeric - grad.get(i, j)).abs() < 1e-2,
                    "grad[{i},{j}]: numeric {numeric} analytic {}",
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    fn quantization_loss_is_zero_for_binary_outputs() {
        let b = m(2, 3, vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
        let (loss, grad) = quantization_loss(&b);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn quantization_loss_penalises_outputs_near_zero() {
        let near_zero = m(1, 2, vec![0.05, -0.02]);
        let near_one = m(1, 2, vec![0.95, -0.97]);
        assert!(quantization_loss(&near_zero).0 > quantization_loss(&near_one).0);
    }

    #[test]
    fn quantization_gradient_matches_finite_differences() {
        let b = m(2, 2, vec![0.3, -0.8, 0.6, -0.2]);
        let (_, grad) = quantization_loss(&b);
        let eps = 1e-3f32;
        for i in 0..2 {
            for j in 0..2 {
                let mut bp = b.clone();
                bp.set(i, j, b.get(i, j) + eps);
                let mut bm = b.clone();
                bm.set(i, j, b.get(i, j) - eps);
                let numeric = (quantization_loss(&bp).0 - quantization_loss(&bm).0) / (2.0 * eps);
                assert!((numeric - grad.get(i, j)).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn combined_loss_reports_breakdown_and_respects_weights() {
        let a = m(2, 4, vec![0.5, -0.2, 0.8, 0.1, -0.3, 0.4, -0.9, 0.2]);
        let p = m(2, 4, vec![0.4, -0.1, 0.7, 0.2, -0.2, 0.5, -0.8, 0.1]);
        let n = m(2, 4, vec![-0.5, 0.2, -0.8, -0.1, 0.3, -0.4, 0.9, -0.2]);

        let full = MilanLoss::new(LossWeights::default());
        let (bd, ga, _, _) = full.compute(&a, &p, &n);
        assert!(bd.total > 0.0);
        assert!(bd.triplet >= 0.0 && bd.bit_balance >= 0.0 && bd.quantization >= 0.0);
        let expected = 1.0 * bd.triplet + 0.1 * bd.bit_balance + 0.05 * bd.quantization;
        assert!((bd.total - expected).abs() < 1e-5);
        assert_eq!((ga.rows(), ga.cols()), (2, 4));

        // Triplet-only ablation must report zero regulariser losses.
        let ablate = MilanLoss::new(LossWeights::triplet_only(2.0));
        let (bd2, ..) = ablate.compute(&a, &p, &n);
        assert_eq!(bd2.bit_balance, 0.0);
        assert_eq!(bd2.quantization, 0.0);
        assert!((bd2.total - bd2.triplet).abs() < 1e-6);
    }

    #[test]
    fn default_weights_match_paper_emphasis() {
        let w = LossWeights::default();
        assert!(w.triplet > w.bit_balance);
        assert!(w.bit_balance > w.quantization);
        assert!(w.margin > 0.0);
    }
}
