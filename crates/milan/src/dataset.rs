//! Training dataset assembly and triplet sampling.
//!
//! MiLaN's triplet loss needs (anchor, positive, negative) triples where the
//! anchor and the positive are semantically similar and the negative is
//! dissimilar.  Following Roy et al. 2021 (and the multi-label retrieval
//! convention used for BigEarthNet), two images count as *similar* when they
//! share at least one CLC Level-3 label.

use eq_bigearthnet::labels::LabelSet;
use eq_bigearthnet::{Archive, PatchId};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::features::FeatureExtractor;

/// A triplet of dataset indices: anchor, positive (shares ≥ 1 label with the
/// anchor) and negative (shares none).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triplet {
    /// Index of the anchor sample.
    pub anchor: usize,
    /// Index of the positive sample.
    pub positive: usize,
    /// Index of the negative sample.
    pub negative: usize,
}

/// An in-memory training dataset: one feature vector and one label set per
/// patch, in patch-id order.
#[derive(Debug, Clone)]
pub struct TrainingDataset {
    features: Vec<Vec<f32>>,
    labels: Vec<LabelSet>,
    ids: Vec<PatchId>,
}

impl TrainingDataset {
    /// Builds a dataset from parallel feature/label/id vectors.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths, are empty, or the
    /// feature vectors have inconsistent dimensionality.
    pub fn new(features: Vec<Vec<f32>>, labels: Vec<LabelSet>, ids: Vec<PatchId>) -> Self {
        assert!(!features.is_empty(), "dataset cannot be empty");
        assert_eq!(features.len(), labels.len(), "features and labels must align");
        assert_eq!(features.len(), ids.len(), "features and ids must align");
        let dim = features[0].len();
        assert!(dim > 0, "feature vectors cannot be empty");
        assert!(features.iter().all(|f| f.len() == dim), "inconsistent feature dimensions");
        Self { features, labels, ids }
    }

    /// Builds a dataset directly from an archive using the standard
    /// [`FeatureExtractor`].
    pub fn from_archive(archive: &Archive) -> Self {
        assert!(!archive.is_empty(), "archive is empty");
        let extractor = FeatureExtractor::new();
        let features = extractor.extract_all(archive);
        let labels = archive.patches().iter().map(|p| p.meta.labels).collect();
        let ids = archive.patches().iter().map(|p| p.meta.id).collect();
        Self::new(features, labels, ids)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features[0].len()
    }

    /// The feature vector of sample `i`.
    pub fn feature(&self, i: usize) -> &[f32] {
        &self.features[i]
    }

    /// All feature vectors in order.
    pub fn features(&self) -> &[Vec<f32>] {
        &self.features
    }

    /// The label set of sample `i`.
    pub fn labels(&self, i: usize) -> LabelSet {
        self.labels[i]
    }

    /// All label sets in order.
    pub fn all_labels(&self) -> &[LabelSet] {
        &self.labels
    }

    /// The patch id of sample `i`.
    pub fn id(&self, i: usize) -> PatchId {
        self.ids[i]
    }

    /// Whether samples `i` and `j` count as semantically similar (share at
    /// least one label).
    pub fn similar(&self, i: usize, j: usize) -> bool {
        self.labels[i].intersects(self.labels[j])
    }

    /// Samples up to `count` random valid triplets.
    ///
    /// A triplet is valid when the positive shares at least one label with
    /// the anchor and the negative shares none.  Anchors that have no valid
    /// positive or negative partner are skipped; if the dataset is too
    /// homogeneous the returned vector may be shorter than `count`.
    pub fn sample_triplets(&self, count: usize, rng: &mut StdRng) -> Vec<Triplet> {
        let n = self.len();
        let mut out = Vec::with_capacity(count);
        if n < 3 {
            return out;
        }
        let mut attempts = 0usize;
        let max_attempts = count * 20;
        while out.len() < count && attempts < max_attempts {
            attempts += 1;
            let anchor = rng.gen_range(0..n);
            let positive = rng.gen_range(0..n);
            let negative = rng.gen_range(0..n);
            if anchor == positive || anchor == negative || positive == negative {
                continue;
            }
            if self.similar(anchor, positive) && !self.similar(anchor, negative) {
                out.push(Triplet { anchor, positive, negative });
            }
        }
        out
    }

    /// Samples `count` triplets with *semi-hard negative mining* (Schroff
    /// et al. 2015): among a small candidate pool of valid negatives, the
    /// one closest to the anchor *while still farther than the positive*
    /// is chosen.  Semi-hard negatives speed up metric learning without the
    /// training collapse that the very hardest negatives cause — on
    /// multi-label data the negative nearest to the anchor is frequently a
    /// near-duplicate whose label set merely misses the overlap, and
    /// pulling it apart destroys the metric.  When no candidate is farther
    /// than the positive, the *easiest* (farthest) candidate is used as a
    /// stabilising fallback.
    pub fn sample_triplets_semi_hard(
        &self,
        count: usize,
        pool: usize,
        rng: &mut StdRng,
    ) -> Vec<Triplet> {
        let n = self.len();
        let mut out = Vec::with_capacity(count);
        if n < 3 {
            return out;
        }
        let pool = pool.max(1);
        let mut attempts = 0usize;
        let max_attempts = count * 20;
        while out.len() < count && attempts < max_attempts {
            attempts += 1;
            let anchor = rng.gen_range(0..n);
            let positive = rng.gen_range(0..n);
            if anchor == positive || !self.similar(anchor, positive) {
                continue;
            }
            let d_ap = squared_distance(self.feature(anchor), self.feature(positive));
            // Gather a pool of valid negatives; keep the closest one beyond
            // the positive (semi-hard), remembering the farthest as fallback.
            let mut semi_hard: Option<(usize, f32)> = None;
            let mut easiest: Option<(usize, f32)> = None;
            for _ in 0..pool * 4 {
                let cand = rng.gen_range(0..n);
                if cand == anchor || cand == positive || self.similar(anchor, cand) {
                    continue;
                }
                let d = squared_distance(self.feature(anchor), self.feature(cand));
                if d > d_ap && semi_hard.is_none_or(|(_, bd)| d < bd) {
                    semi_hard = Some((cand, d));
                }
                if easiest.is_none_or(|(_, bd)| d > bd) {
                    easiest = Some((cand, d));
                }
            }
            if let Some((negative, _)) = semi_hard.or(easiest) {
                out.push(Triplet { anchor, positive, negative });
            }
        }
        out
    }
}

fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_bigearthnet::labels::Label;
    use eq_bigearthnet::{ArchiveGenerator, GeneratorConfig};
    use rand::SeedableRng;

    fn dataset(n: usize, seed: u64) -> TrainingDataset {
        let archive = ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate();
        TrainingDataset::from_archive(&archive)
    }

    #[test]
    fn from_archive_builds_aligned_vectors() {
        let d = dataset(50, 1);
        assert_eq!(d.len(), 50);
        assert!(!d.is_empty());
        assert_eq!(d.dim(), crate::features::FEATURE_DIM);
        assert_eq!(d.id(7), PatchId(7));
        assert!(!d.labels(3).is_empty());
        assert_eq!(d.features().len(), 50);
        assert_eq!(d.all_labels().len(), 50);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_dataset_is_rejected() {
        let _ = TrainingDataset::new(vec![], vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_inputs_are_rejected() {
        let _ = TrainingDataset::new(
            vec![vec![0.0_f32; 4]],
            vec![LabelSet::EMPTY, LabelSet::EMPTY],
            vec![PatchId(0), PatchId(1)],
        );
    }

    #[test]
    #[should_panic(expected = "inconsistent feature dimensions")]
    fn ragged_features_are_rejected() {
        let _ = TrainingDataset::new(
            vec![vec![0.0_f32; 4], vec![0.0_f32; 5]],
            vec![LabelSet::EMPTY, LabelSet::EMPTY],
            vec![PatchId(0), PatchId(1)],
        );
    }

    #[test]
    fn similarity_is_shared_label() {
        let features = vec![vec![0.0_f32; 2]; 3];
        let labels = vec![
            LabelSet::from_labels([Label::SeaAndOcean, Label::BeachesDunesSands]),
            LabelSet::from_labels([Label::SeaAndOcean]),
            LabelSet::from_labels([Label::ConiferousForest]),
        ];
        let ids = vec![PatchId(0), PatchId(1), PatchId(2)];
        let d = TrainingDataset::new(features, labels, ids);
        assert!(d.similar(0, 1));
        assert!(!d.similar(0, 2));
        assert!(!d.similar(1, 2));
    }

    #[test]
    fn sampled_triplets_satisfy_the_label_constraints() {
        let d = dataset(150, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let triplets = d.sample_triplets(200, &mut rng);
        assert!(!triplets.is_empty(), "no valid triplets found");
        for t in &triplets {
            assert!(d.similar(t.anchor, t.positive));
            assert!(!d.similar(t.anchor, t.negative));
            assert_ne!(t.anchor, t.positive);
            assert_ne!(t.anchor, t.negative);
        }
    }

    #[test]
    fn semi_hard_triplets_are_valid_and_harder_on_average() {
        let d = dataset(200, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let random = d.sample_triplets(100, &mut rng);
        let mut rng = StdRng::seed_from_u64(5);
        let hard = d.sample_triplets_semi_hard(100, 8, &mut rng);
        assert!(!hard.is_empty());
        for t in &hard {
            assert!(d.similar(t.anchor, t.positive));
            assert!(!d.similar(t.anchor, t.negative));
        }
        let mean_neg_dist = |ts: &[Triplet]| {
            ts.iter()
                .map(|t| squared_distance(d.feature(t.anchor), d.feature(t.negative)))
                .sum::<f32>()
                / ts.len().max(1) as f32
        };
        assert!(
            mean_neg_dist(&hard) <= mean_neg_dist(&random) + 1e-3,
            "semi-hard negatives should not be easier than random ones"
        );
    }

    #[test]
    fn triplet_sampling_on_tiny_datasets_degrades_gracefully() {
        let features = vec![vec![0.0_f32; 2]; 2];
        let labels = vec![LabelSet::from_labels([Label::SeaAndOcean]); 2];
        let ids = vec![PatchId(0), PatchId(1)];
        let d = TrainingDataset::new(features, labels, ids);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(d.sample_triplets(10, &mut rng).is_empty());
        assert!(d.sample_triplets_semi_hard(10, 4, &mut rng).is_empty());
    }

    #[test]
    fn sampling_is_deterministic_given_the_rng_seed() {
        let d = dataset(80, 6);
        let a = d.sample_triplets(50, &mut StdRng::seed_from_u64(9));
        let b = d.sample_triplets(50, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
