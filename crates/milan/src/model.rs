//! The MiLaN hashing model: an MLP hashing head trained with the three
//! MiLaN losses, producing K-bit binary codes.

use eq_bigearthnet::Archive;
use eq_hashindex::BinaryCode;
use eq_neural::{Activation, Adam, Matrix, Mlp, MlpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::TrainingDataset;
use crate::features::{FeatureExtractor, FEATURE_DIM};
use crate::loss::{LossBreakdown, LossWeights, MilanLoss};
use crate::normalizer::Normalizer;

/// Configuration of the MiLaN model and its training loop.
#[derive(Debug, Clone)]
pub struct MilanConfig {
    /// Width of the binary hash codes; the paper uses 128 bits (§3.3).
    pub code_bits: u32,
    /// Hidden layer widths of the hashing head.
    pub hidden_dims: Vec<usize>,
    /// Loss weights and triplet margin.
    pub loss: LossWeights,
    /// Number of training epochs.
    pub epochs: usize,
    /// Number of triplets sampled per epoch.
    pub triplets_per_epoch: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Candidate-pool size for semi-hard negative mining (0 = random negatives).
    pub semi_hard_pool: usize,
    /// Seed controlling weight initialisation and triplet sampling.
    pub seed: u64,
}

impl Default for MilanConfig {
    fn default() -> Self {
        Self {
            code_bits: 128,
            hidden_dims: vec![256],
            loss: LossWeights::default(),
            epochs: 30,
            triplets_per_epoch: 256,
            learning_rate: 0.003,
            semi_hard_pool: 8,
            seed: 42,
        }
    }
}

impl MilanConfig {
    /// A small, fast configuration used by unit tests and examples.
    pub fn fast(code_bits: u32, seed: u64) -> Self {
        Self {
            code_bits,
            hidden_dims: vec![64],
            epochs: 10,
            triplets_per_epoch: 96,
            seed,
            ..Self::default()
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.code_bits == 0 {
            return Err("code_bits must be positive".into());
        }
        if self.epochs == 0 || self.triplets_per_epoch == 0 {
            return Err("epochs and triplets_per_epoch must be positive".into());
        }
        if self.learning_rate.is_nan() || self.learning_rate <= 0.0 {
            return Err("learning rate must be positive".into());
        }
        Ok(())
    }
}

/// Triplets per optimizer step; small enough that even the `fast` configs
/// take several steps per epoch.
const MINI_BATCH: usize = 32;

/// Per-epoch training statistics.
#[derive(Debug, Clone, Default)]
pub struct TrainingReport {
    /// Loss breakdown after each epoch (averaged over the epoch's batches).
    pub epochs: Vec<LossBreakdown>,
}

impl TrainingReport {
    /// The final epoch's total loss, or `None` before training.
    pub fn final_loss(&self) -> Option<f32> {
        self.epochs.last().map(|e| e.total)
    }

    /// The first epoch's total loss, or `None` before training.
    pub fn initial_loss(&self) -> Option<f32> {
        self.epochs.first().map(|e| e.total)
    }

    /// Whether the total loss decreased from the first to the last epoch.
    pub fn improved(&self) -> bool {
        match (self.initial_loss(), self.final_loss()) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    }
}

/// The MiLaN deep-hashing model.
#[derive(Debug, Clone)]
pub struct Milan {
    config: MilanConfig,
    network: Mlp,
    extractor: FeatureExtractor,
    normalizer: Option<Normalizer>,
    trained: bool,
}

impl Milan {
    /// Creates an untrained model.
    ///
    /// # Errors
    /// Returns an error describing the first invalid configuration field.
    pub fn new(config: MilanConfig) -> Result<Self, String> {
        config.validate()?;
        let network = Mlp::new(&MlpConfig {
            input_dim: FEATURE_DIM,
            hidden_dims: config.hidden_dims.clone(),
            output_dim: config.code_bits as usize,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Tanh,
            seed: config.seed,
            grad_clip: 5.0,
        });
        Ok(Self {
            config,
            network,
            extractor: FeatureExtractor::new(),
            normalizer: None,
            trained: false,
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &MilanConfig {
        &self.config
    }

    /// Width of the produced binary codes.
    pub fn code_bits(&self) -> u32 {
        self.config.code_bits
    }

    /// Whether [`train`](Self::train) has completed at least once.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Number of trainable parameters in the hashing head.
    pub fn parameter_count(&self) -> usize {
        self.network.parameter_count()
    }

    /// Trains the hashing head on a dataset with the three MiLaN losses.
    ///
    /// Training also fits the feature [`Normalizer`] (the stand-in for the
    /// backbone's batch normalisation), which is then applied consistently
    /// at inference time.
    pub fn train(&mut self, dataset: &TrainingDataset) -> TrainingReport {
        self.normalizer = Some(Normalizer::fit(dataset.features()));
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xD1B5_4A32_D192_ED03);
        let mut optimizer = Adam::new(self.config.learning_rate);
        self.network.register_with(&mut optimizer);
        let loss = MilanLoss::new(self.config.loss);

        let mut report = TrainingReport::default();
        for _epoch in 0..self.config.epochs {
            let triplets = if self.config.semi_hard_pool > 0 {
                dataset.sample_triplets_semi_hard(
                    self.config.triplets_per_epoch,
                    self.config.semi_hard_pool,
                    &mut rng,
                )
            } else {
                dataset.sample_triplets(self.config.triplets_per_epoch, &mut rng)
            };
            if triplets.is_empty() {
                // Dataset too homogeneous to form triplets: record a zero
                // epoch so callers can detect the situation.
                report.epochs.push(LossBreakdown::default());
                continue;
            }

            // Process the epoch in mini-batches so each epoch takes several
            // optimizer steps rather than one giant full-batch step —
            // full-batch training needs far more epochs to converge than the
            // configured budgets allow.
            let mut epoch_breakdown = LossBreakdown::default();
            for chunk in triplets.chunks(MINI_BATCH) {
                // Stack anchors, positives and negatives into one forward
                // batch so a single backward pass updates the shared weights.
                let t = chunk.len();
                let mut rows: Vec<Vec<f32>> = Vec::with_capacity(3 * t);
                for tr in chunk {
                    rows.push(self.normalize(dataset.feature(tr.anchor)));
                }
                for tr in chunk {
                    rows.push(self.normalize(dataset.feature(tr.positive)));
                }
                for tr in chunk {
                    rows.push(self.normalize(dataset.feature(tr.negative)));
                }
                let batch = Matrix::from_rows(&rows);
                let outputs = self.network.forward(&batch);

                let (anchors, positives, negatives) = split_three(&outputs, t);
                let (breakdown, ga, gp, gn) = loss.compute(&anchors, &positives, &negatives);
                let grad = stack_three(&ga, &gp, &gn);
                self.network.backward(&grad);
                optimizer.next_step();
                self.network.apply_gradients(&mut optimizer);

                // Weight each batch by its triplet count so the (smaller)
                // final chunk does not skew the per-triplet epoch means.
                let tw = t as f32;
                epoch_breakdown.triplet += breakdown.triplet * tw;
                epoch_breakdown.bit_balance += breakdown.bit_balance * tw;
                epoch_breakdown.quantization += breakdown.quantization * tw;
                epoch_breakdown.total += breakdown.total * tw;
                epoch_breakdown.active_triplet_fraction += breakdown.active_triplet_fraction * tw;
            }
            let bf = triplets.len() as f32;
            epoch_breakdown.triplet /= bf;
            epoch_breakdown.bit_balance /= bf;
            epoch_breakdown.quantization /= bf;
            epoch_breakdown.total /= bf;
            epoch_breakdown.active_triplet_fraction /= bf;
            report.epochs.push(epoch_breakdown);
        }
        self.trained = true;
        report
    }

    /// Convenience wrapper: builds the dataset from an archive and trains.
    pub fn train_on_archive(&mut self, archive: &Archive) -> TrainingReport {
        let dataset = TrainingDataset::from_archive(archive);
        self.train(&dataset)
    }

    /// Applies the fitted normaliser if training has happened, otherwise
    /// passes the raw features through.
    fn normalize(&self, features: &[f32]) -> Vec<f32> {
        match &self.normalizer {
            Some(n) => n.apply(features),
            None => features.to_vec(),
        }
    }

    /// The fitted feature normaliser, if the model has been trained.
    pub fn normalizer(&self) -> Option<&Normalizer> {
        self.normalizer.as_ref()
    }

    /// Continuous hash-layer outputs (one row per input feature vector).
    pub fn encode_continuous(&self, features: &[Vec<f32>]) -> Matrix {
        assert!(!features.is_empty(), "cannot encode an empty batch");
        let rows: Vec<Vec<f32>> = features.iter().map(|f| self.normalize(f)).collect();
        let batch = Matrix::from_rows(&rows);
        self.network.forward_inference(&batch)
    }

    /// The binary hash code of a single feature vector.
    pub fn hash_features(&self, features: &[f32]) -> BinaryCode {
        let out = self.encode_continuous(&[features.to_vec()]);
        BinaryCode::from_signs(out.row(0))
    }

    /// The binary hash code of a patch (extracts features first) — the
    /// "query by a new external image" path of §3.3.
    pub fn hash_patch(&self, patch: &eq_bigearthnet::Patch) -> BinaryCode {
        self.hash_features(&self.extractor.extract(patch))
    }

    /// Hash codes for every patch of an archive, in patch-id order.
    pub fn hash_archive(&self, archive: &Archive) -> Vec<BinaryCode> {
        let features = self.extractor.extract_all(archive);
        if features.is_empty() {
            return Vec::new();
        }
        let out = self.encode_continuous(&features);
        (0..out.rows()).map(|i| BinaryCode::from_signs(out.row(i))).collect()
    }

    /// The feature extractor used by the model.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// The hashing head (read access for serialization).
    pub(crate) fn network(&self) -> &Mlp {
        &self.network
    }

    /// Mutable access to the hashing head (snapshot restoration overwrites
    /// the freshly initialised weights with the stored ones).
    pub(crate) fn network_mut(&mut self) -> &mut Mlp {
        &mut self.network
    }

    /// Restores the inference-time state captured by a snapshot.
    pub(crate) fn restore_inference_state(
        &mut self,
        normalizer: Option<Normalizer>,
        trained: bool,
    ) {
        self.normalizer = normalizer;
        self.trained = trained;
    }
}

fn split_three(outputs: &Matrix, t: usize) -> (Matrix, Matrix, Matrix) {
    let k = outputs.cols();
    let slice = |from: usize| {
        let mut m = Matrix::zeros(t, k);
        for i in 0..t {
            m.row_mut(i).copy_from_slice(outputs.row(from + i));
        }
        m
    };
    (slice(0), slice(t), slice(2 * t))
}

fn stack_three(a: &Matrix, b: &Matrix, c: &Matrix) -> Matrix {
    let t = a.rows();
    let k = a.cols();
    let mut m = Matrix::zeros(3 * t, k);
    for i in 0..t {
        m.row_mut(i).copy_from_slice(a.row(i));
        m.row_mut(t + i).copy_from_slice(b.row(i));
        m.row_mut(2 * t + i).copy_from_slice(c.row(i));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mean_average_precision, CodeStatistics};
    use eq_bigearthnet::{ArchiveGenerator, GeneratorConfig};

    fn archive(n: usize, seed: u64) -> Archive {
        ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate()
    }

    #[test]
    fn config_validation() {
        assert!(Milan::new(MilanConfig { code_bits: 0, ..Default::default() }).is_err());
        assert!(Milan::new(MilanConfig { epochs: 0, ..Default::default() }).is_err());
        assert!(Milan::new(MilanConfig { learning_rate: -1.0, ..Default::default() }).is_err());
        assert!(Milan::new(MilanConfig::default()).is_ok());
    }

    #[test]
    fn untrained_model_still_produces_codes_of_right_width() {
        let model = Milan::new(MilanConfig::fast(32, 1)).unwrap();
        assert!(!model.is_trained());
        assert_eq!(model.code_bits(), 32);
        assert!(model.parameter_count() > 0);
        let a = archive(3, 2);
        let code = model.hash_patch(&a.patches()[0]);
        assert_eq!(code.bits(), 32);
    }

    #[test]
    fn training_decreases_the_loss() {
        let a = archive(200, 3);
        let dataset = TrainingDataset::from_archive(&a);
        let mut model = Milan::new(MilanConfig { epochs: 15, ..MilanConfig::fast(48, 4) }).unwrap();
        let report = model.train(&dataset);
        assert_eq!(report.epochs.len(), 15);
        assert!(model.is_trained());
        assert!(
            report.improved(),
            "loss did not improve: {:?} -> {:?}",
            report.initial_loss(),
            report.final_loss()
        );
    }

    #[test]
    fn hash_archive_is_deterministic_and_aligned() {
        let a = archive(40, 5);
        let mut model = Milan::new(MilanConfig::fast(32, 6)).unwrap();
        model.train_on_archive(&a);
        let codes1 = model.hash_archive(&a);
        let codes2 = model.hash_archive(&a);
        assert_eq!(codes1.len(), 40);
        assert_eq!(codes1, codes2);
        // Single-patch hashing agrees with the batch path.
        let single = model.hash_patch(&a.patches()[7]);
        assert_eq!(single, codes1[7]);
    }

    #[test]
    fn trained_codes_beat_untrained_codes_on_map() {
        // The central quantitative claim reproduced at miniature scale:
        // metric-learned codes retrieve same-label images better than the
        // untrained network's codes.
        let a = archive(240, 7);
        let dataset = TrainingDataset::from_archive(&a);

        let untrained = Milan::new(MilanConfig::fast(48, 8)).unwrap();
        let mut trained = Milan::new(MilanConfig {
            epochs: 40,
            triplets_per_epoch: 192,
            ..MilanConfig::fast(48, 8)
        })
        .unwrap();
        trained.train(&dataset);

        let map_of = |model: &Milan| {
            let codes = model.hash_archive(&a);
            let mut queries = Vec::new();
            for q in (0..a.len()).step_by(6) {
                let q_labels = a.patches()[q].meta.labels;
                let mut ranked: Vec<(u32, usize)> = (0..a.len())
                    .filter(|&i| i != q)
                    .map(|i| (codes[q].hamming_distance(&codes[i]), i))
                    .collect();
                ranked.sort_unstable();
                let rel: Vec<bool> = ranked
                    .iter()
                    .map(|(_, i)| a.patches()[*i].meta.labels.intersects(q_labels))
                    .collect();
                let total_rel = rel.iter().filter(|&&r| r).count();
                queries.push((rel, total_rel));
            }
            mean_average_precision(&queries, 10)
        };

        let map_untrained = map_of(&untrained);
        let map_trained = map_of(&trained);
        assert!(
            map_trained > map_untrained,
            "training did not improve mAP@10: untrained {map_untrained:.3} vs trained {map_trained:.3}"
        );
    }

    #[test]
    fn trained_codes_are_reasonably_balanced() {
        let a = archive(150, 9);
        let mut model =
            Milan::new(MilanConfig { epochs: 25, ..MilanConfig::fast(32, 10) }).unwrap();
        model.train_on_archive(&a);
        let stats = CodeStatistics::from_codes(&model.hash_archive(&a));
        // Bit balance loss keeps activations away from the degenerate
        // all-0/all-1 regime.
        assert!(
            stats.balance_deviation < 0.45,
            "codes are almost constant: deviation {}",
            stats.balance_deviation
        );
        assert!(stats.distinct_codes > 1, "all codes collapsed to a single bucket");
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn encoding_an_empty_batch_panics() {
        let model = Milan::new(MilanConfig::fast(16, 1)).unwrap();
        let _ = model.encode_continuous(&[]);
    }

    #[test]
    fn split_and_stack_are_inverses() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.0],
            vec![9.0, 10.0],
            vec![11.0, 12.0],
        ]);
        let (a, b, c) = split_three(&m, 2);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(b.row(0), &[5.0, 6.0]);
        assert_eq!(c.row(1), &[11.0, 12.0]);
        assert_eq!(stack_three(&a, &b, &c), m);
    }
}
