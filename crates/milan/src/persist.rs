//! Serialization of trained MiLaN models.
//!
//! A snapshot captures everything the *inference* path needs — the model
//! configuration (which fixes the network architecture), the exact layer
//! weights and biases, the fitted feature normaliser and the trained flag —
//! so a restored model hashes any patch to byte-identical binary codes.
//! Training state (optimizer moments, cached activations) is deliberately
//! not persisted: a recovered server serves queries, it does not resume a
//! half-finished gradient step.
//!
//! Layout (little-endian, see `eq_wire`):
//!
//! ```text
//! config := code_bits:u32 hidden:u32 dim:u64* loss:f32×4 epochs:u64
//!           triplets_per_epoch:u64 learning_rate:f32 semi_hard_pool:u64
//!           seed:u64
//! model  := config trained:u8
//!           normalizer:u8 [dim:u32 mean:f32* std:f32*]
//!           layers:u32 (rows:u32 cols:u32 weights:f32* bias:f32*)*
//! ```

use eq_wire::{Reader, WireError, Writer};

use crate::loss::LossWeights;
use crate::model::{Milan, MilanConfig};
use crate::normalizer::Normalizer;

/// Encodes a model configuration.
pub fn encode_config(config: &MilanConfig, w: &mut Writer) {
    w.u32(config.code_bits);
    w.seq_len(config.hidden_dims.len());
    for &dim in &config.hidden_dims {
        w.u64(dim as u64);
    }
    w.f32(config.loss.triplet);
    w.f32(config.loss.bit_balance);
    w.f32(config.loss.quantization);
    w.f32(config.loss.margin);
    w.u64(config.epochs as u64);
    w.u64(config.triplets_per_epoch as u64);
    w.f32(config.learning_rate);
    w.u64(config.semi_hard_pool as u64);
    w.u64(config.seed);
}

/// Decodes a model configuration.
///
/// # Errors
/// Returns a [`WireError`] on truncation or an implausible field; never
/// panics.
pub fn decode_config(r: &mut Reader<'_>) -> Result<MilanConfig, WireError> {
    let code_bits = r.u32()?;
    let n_hidden = r.seq_len(8)?;
    let mut hidden_dims = Vec::with_capacity(n_hidden);
    for _ in 0..n_hidden {
        hidden_dims.push(usize::try_from(r.u64()?).map_err(corrupt("hidden dim"))?);
    }
    let loss = LossWeights {
        triplet: r.f32()?,
        bit_balance: r.f32()?,
        quantization: r.f32()?,
        margin: r.f32()?,
    };
    Ok(MilanConfig {
        code_bits,
        hidden_dims,
        loss,
        epochs: usize::try_from(r.u64()?).map_err(corrupt("epochs"))?,
        triplets_per_epoch: usize::try_from(r.u64()?).map_err(corrupt("triplets"))?,
        learning_rate: r.f32()?,
        semi_hard_pool: usize::try_from(r.u64()?).map_err(corrupt("pool"))?,
        seed: r.u64()?,
    })
}

fn corrupt<E: std::fmt::Display>(what: &'static str) -> impl Fn(E) -> WireError {
    move |e| WireError::Corrupt(format!("invalid {what}: {e}"))
}

impl Milan {
    /// Serializes the model's inference state (see the module docs).
    pub fn encode(&self, w: &mut Writer) {
        encode_config(self.config(), w);
        w.bool(self.is_trained());
        match self.normalizer() {
            Some(n) => {
                w.u8(1);
                w.u32(n.dim() as u32);
                for &m in n.mean() {
                    w.f32(m);
                }
                for &s in n.std() {
                    w.f32(s);
                }
            }
            None => w.u8(0),
        }
        let layers = self.network().layers();
        w.seq_len(layers.len());
        for layer in layers {
            let weights = layer.weights();
            w.u32(weights.rows() as u32);
            w.u32(weights.cols() as u32);
            for &v in weights.data() {
                w.f32(v);
            }
            for &b in layer.bias() {
                w.f32(b);
            }
        }
    }

    /// Decodes a model written by [`encode`](Self::encode): the
    /// configuration rebuilds the architecture, then the stored weights
    /// overwrite the fresh initialisation, so the restored model produces
    /// bit-identical hash codes.
    ///
    /// # Errors
    /// Returns a [`WireError`] on truncation, an invalid configuration or a
    /// layer-shape mismatch; never panics.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let config = decode_config(r)?;
        let mut model = Milan::new(config)
            .map_err(|e| WireError::Corrupt(format!("invalid model configuration: {e}")))?;
        let trained = r.bool()?;
        let normalizer = match r.u8()? {
            0 => None,
            1 => {
                let dim = r.u32()? as usize;
                if dim.saturating_mul(8) > r.remaining() {
                    return Err(WireError::Corrupt(format!(
                        "normalizer of dim {dim} exceeds the remaining input"
                    )));
                }
                let mut mean = Vec::with_capacity(dim);
                for _ in 0..dim {
                    mean.push(r.f32()?);
                }
                let mut std = Vec::with_capacity(dim);
                for _ in 0..dim {
                    std.push(r.f32()?);
                }
                Some(
                    Normalizer::from_parts(mean, std)
                        .ok_or_else(|| WireError::Corrupt("empty normalizer".into()))?,
                )
            }
            other => return Err(WireError::Corrupt(format!("invalid normalizer flag {other}"))),
        };
        let n_layers = r.seq_len(1)?;
        if n_layers != model.network().layers().len() {
            return Err(WireError::Corrupt(format!(
                "stored model has {n_layers} layers, configuration implies {}",
                model.network().layers().len()
            )));
        }
        for i in 0..n_layers {
            let rows = r.u32()? as usize;
            let cols = r.u32()? as usize;
            {
                let layer = &model.network().layers()[i];
                if rows != layer.input_dim() || cols != layer.output_dim() {
                    return Err(WireError::Corrupt(format!(
                        "layer {i} is {rows}×{cols}, configuration implies {}×{}",
                        layer.input_dim(),
                        layer.output_dim()
                    )));
                }
            }
            if rows.saturating_mul(cols).saturating_mul(4) > r.remaining() {
                return Err(WireError::Corrupt(format!(
                    "layer {i} weights exceed the remaining input"
                )));
            }
            let layer = &mut model.network_mut().layers_mut()[i];
            for v in layer.weights_mut().data_mut() {
                *v = r.f32()?;
            }
            for b in layer.bias_mut() {
                *b = r.f32()?;
            }
        }
        model.restore_inference_state(normalizer, trained);
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_bigearthnet::{ArchiveGenerator, GeneratorConfig};

    fn encoded(model: &Milan) -> Vec<u8> {
        let mut w = Writer::new();
        model.encode(&mut w);
        w.into_bytes()
    }

    #[test]
    fn trained_model_roundtrips_to_identical_codes() {
        let archive = ArchiveGenerator::new(GeneratorConfig::tiny(60, 21)).unwrap().generate();
        let mut model = Milan::new(MilanConfig::fast(48, 22)).unwrap();
        model.train_on_archive(&archive);

        let bytes = encoded(&model);
        let mut r = Reader::new(&bytes);
        let back = Milan::decode(&mut r).unwrap();
        assert!(r.is_empty(), "model encoding is self-delimiting");
        assert!(back.is_trained());
        assert_eq!(back.code_bits(), model.code_bits());
        for patch in archive.patches().iter().take(10) {
            assert_eq!(back.hash_patch(patch), model.hash_patch(patch));
        }
        // Deterministic: the restored model re-encodes byte-identically.
        assert_eq!(encoded(&back), bytes);
    }

    #[test]
    fn untrained_model_roundtrips() {
        let model = Milan::new(MilanConfig::fast(16, 5)).unwrap();
        let bytes = encoded(&model);
        let back = Milan::decode(&mut Reader::new(&bytes)).unwrap();
        assert!(!back.is_trained());
        assert!(back.normalizer().is_none());
        assert_eq!(encoded(&back), bytes);
    }

    #[test]
    fn truncated_models_error_cleanly() {
        let model = Milan::new(MilanConfig::fast(16, 6)).unwrap();
        let bytes = encoded(&model);
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                Milan::decode(&mut Reader::new(&bytes[..cut])).is_err(),
                "strict prefix of {cut}/{} bytes decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let model = Milan::new(MilanConfig::fast(16, 7)).unwrap();
        let mut bytes = encoded(&model);
        // Corrupt code_bits (first field) to desynchronise architecture and
        // stored layer shapes.
        bytes[0] ^= 0x01;
        assert!(Milan::decode(&mut Reader::new(&bytes)).is_err());
    }
}
