//! The image descriptor that stands in for MiLaN's convolutional backbone.
//!
//! The original MiLaN extracts features with a pre-trained CNN before the
//! metric-learning hashing head.  Training a CNN is out of scope here (see
//! ARCHITECTURE.md "Substitutions"), so this module computes a fixed
//! hand-crafted descriptor with
//! the same role: a per-patch float vector whose geometry reflects the
//! land-cover semantics well enough for the metric-learning head to work
//! with.  It combines:
//!
//! * per-band first-order statistics (mean, spread, texture energy) for the
//!   12 Sentinel-2 bands,
//! * classic spectral indices (NDVI, NDWI, NDBI, brightness, red-edge slope),
//! * a 2 × 2 spatial pyramid of band means for the structurally most
//!   informative bands (captures within-patch layout),
//! * Sentinel-1 backscatter statistics (VV/VH level and ratio).

use eq_bigearthnet::bands::{Band, Polarization};
use eq_bigearthnet::patch::Patch;

/// Bands given a 2 × 2 spatial pyramid in the descriptor.
const PYRAMID_BANDS: [Band; 3] = [Band::B04, Band::B08, Band::B11];

/// Dimensionality of the descriptor produced by [`FeatureExtractor`].
///
/// 12 bands × 3 statistics + 5 spectral indices + 3 pyramid bands × 4 cells
/// + 4 SAR statistics = 57.
pub const FEATURE_DIM: usize = 12 * 3 + 5 + PYRAMID_BANDS.len() * 4 + 4;

/// Extracts fixed-length float descriptors from BigEarthNet patches.
///
/// The extractor is stateless and deterministic; scaling constants are fixed
/// so that features are roughly in `[-1, 1]` without needing a fitted
/// normaliser (which would leak test data into training).
#[derive(Debug, Default, Clone, Copy)]
pub struct FeatureExtractor;

impl FeatureExtractor {
    /// Creates an extractor.
    pub fn new() -> Self {
        FeatureExtractor
    }

    /// The descriptor dimensionality ([`FEATURE_DIM`]).
    pub fn dim(&self) -> usize {
        FEATURE_DIM
    }

    /// Computes the descriptor of a patch.
    pub fn extract(&self, patch: &Patch) -> Vec<f32> {
        let mut f = Vec::with_capacity(FEATURE_DIM);

        // --- Per-band statistics -----------------------------------------
        let mut band_means = [0.0f64; 12];
        for band in eq_bigearthnet::bands::SENTINEL2_BANDS {
            let data = patch.band(band);
            let mean = data.mean();
            band_means[band.index()] = mean;
            f.push((mean / 5_000.0 - 1.0) as f32); // roughly [-1, 1]
            f.push((data.std_dev() / 1_500.0 - 1.0) as f32);
            f.push((data.gradient_energy() / 1_500.0 - 1.0) as f32);
        }

        // --- Spectral indices ---------------------------------------------
        let b03 = band_means[Band::B03.index()];
        let b04 = band_means[Band::B04.index()];
        let b06 = band_means[Band::B06.index()];
        let b08 = band_means[Band::B08.index()];
        let b11 = band_means[Band::B11.index()];
        f.push(normalized_difference(b08, b04)); // NDVI
        f.push(normalized_difference(b03, b08)); // NDWI
        f.push(normalized_difference(b11, b08)); // NDBI
        f.push(((b04 + b03 + band_means[Band::B02.index()]) / 3.0 / 5_000.0 - 1.0) as f32); // brightness
        f.push(normalized_difference(b08, b06)); // red-edge slope proxy

        // --- Spatial pyramid -----------------------------------------------
        for band in PYRAMID_BANDS {
            let data = patch.band(band);
            let n = data.size();
            let h = n / 2;
            for (r0, r1, c0, c1) in [(0, h, 0, h), (0, h, h, n), (h, n, 0, h), (h, n, h, n)] {
                f.push((data.window_mean(r0, r1, c0, c1) / 5_000.0 - 1.0) as f32);
            }
        }

        // --- Sentinel-1 -----------------------------------------------------
        let vv = patch.polarization(Polarization::VV);
        let vh = patch.polarization(Polarization::VH);
        let vv_mean = vv.mean();
        let vh_mean = vh.mean();
        f.push((vv_mean / 2_500.0 - 1.0) as f32);
        f.push((vh_mean / 2_500.0 - 1.0) as f32);
        f.push((vv.std_dev() / 1_000.0 - 1.0) as f32);
        f.push(if vv_mean > 1e-9 { (vh_mean / vv_mean) as f32 - 0.5 } else { 0.0 });

        debug_assert_eq!(f.len(), FEATURE_DIM);
        f
    }

    /// Extracts descriptors for a whole archive, in patch-id order.
    pub fn extract_all(&self, archive: &eq_bigearthnet::Archive) -> Vec<Vec<f32>> {
        archive.patches().iter().map(|p| self.extract(p)).collect()
    }
}

fn normalized_difference(a: f64, b: f64) -> f32 {
    if a + b < 1e-9 {
        0.0
    } else {
        ((a - b) / (a + b)) as f32
    }
}

/// Cosine similarity between two feature vectors; used by tests and the
/// float-kNN baseline wiring.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "feature dimension mismatch");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_bigearthnet::{ArchiveGenerator, GeneratorConfig, Label};

    fn archive(n: usize, seed: u64) -> eq_bigearthnet::Archive {
        ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate()
    }

    #[test]
    fn feature_dim_constant_matches_actual_output() {
        let a = archive(2, 1);
        let ex = FeatureExtractor::new();
        let f = ex.extract(&a.patches()[0]);
        assert_eq!(f.len(), FEATURE_DIM);
        assert_eq!(ex.dim(), FEATURE_DIM);
    }

    #[test]
    fn features_are_finite_and_roughly_bounded() {
        let a = archive(30, 2);
        let ex = FeatureExtractor::new();
        for p in a.patches() {
            for (i, v) in ex.extract(p).iter().enumerate() {
                assert!(v.is_finite(), "feature {i} not finite");
                assert!(v.abs() <= 6.0, "feature {i} = {v} badly scaled");
            }
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let a = archive(3, 3);
        let ex = FeatureExtractor::new();
        assert_eq!(ex.extract(&a.patches()[1]), ex.extract(&a.patches()[1]));
    }

    #[test]
    fn extract_all_preserves_order_and_length() {
        let a = archive(10, 4);
        let ex = FeatureExtractor::new();
        let all = ex.extract_all(&a);
        assert_eq!(all.len(), 10);
        assert_eq!(all[7], ex.extract(&a.patches()[7]));
    }

    #[test]
    fn water_and_forest_patches_are_separable_in_feature_space() {
        // Average within-group cosine similarity should exceed the
        // across-group similarity — the property the metric-learning head
        // relies on.
        let a = archive(300, 5);
        let ex = FeatureExtractor::new();
        let mut water = vec![];
        let mut forest = vec![];
        for p in a.patches() {
            let l = p.meta.labels;
            let is_water = l.contains(Label::SeaAndOcean) || l.contains(Label::WaterBodies);
            let is_forest = l.contains(Label::ConiferousForest) || l.contains(Label::MixedForest);
            if is_water && !is_forest {
                water.push(ex.extract(p));
            } else if is_forest && !is_water {
                forest.push(ex.extract(p));
            }
        }
        assert!(water.len() >= 3 && forest.len() >= 3, "not enough samples");
        let avg = |xs: &[Vec<f32>], ys: &[Vec<f32>]| {
            let mut acc = 0.0;
            let mut n = 0;
            for x in xs {
                for y in ys {
                    acc += cosine_similarity(x, y);
                    n += 1;
                }
            }
            acc / n as f32
        };
        let within = (avg(&water, &water) + avg(&forest, &forest)) / 2.0;
        let across = avg(&water, &forest);
        assert!(
            within > across + 0.02,
            "within-class similarity {within} not clearly above across-class {across}"
        );
    }

    #[test]
    fn ndvi_separates_vegetation_from_water() {
        let a = archive(200, 6);
        let ex = FeatureExtractor::new();
        let ndvi_index = 12 * 3; // first spectral index
        let mut veg = vec![];
        let mut water = vec![];
        for p in a.patches() {
            let l = p.meta.labels;
            let f = ex.extract(p);
            if l.contains(Label::BroadLeavedForest) || l.contains(Label::ConiferousForest) {
                veg.push(f[ndvi_index]);
            } else if l.contains(Label::SeaAndOcean) && l.len() == 1 {
                water.push(f[ndvi_index]);
            }
        }
        if !veg.is_empty() && !water.is_empty() {
            let m = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
            assert!(m(&veg) > m(&water), "NDVI for vegetation should exceed water");
        }
    }

    #[test]
    fn cosine_similarity_edge_cases() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn cosine_similarity_rejects_mismatched_lengths() {
        let _ = cosine_similarity(&[1.0], &[1.0, 2.0]);
    }
}
