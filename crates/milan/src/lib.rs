//! MiLaN: metric-learning based deep hashing for content-based retrieval of
//! remote-sensing images.
//!
//! This crate implements the paper's core technology (§2.2): a deep hashing
//! network that "simultaneously learns (i) a semantic-based metric space for
//! effective feature representation and (ii) compact binary hash codes for
//! scalable search", trained with three losses:
//!
//! 1. the **triplet loss**, pulling images that share labels together and
//!    pushing images with disjoint labels apart ([`loss::triplet_loss`]),
//! 2. the **bit-balance loss**, forcing every bit to be active ~50 % of the
//!    time and the bits to be mutually independent ([`loss::bit_balance_loss`]),
//! 3. the **quantization loss**, keeping network outputs close to ±1 so that
//!    binarisation loses little information ([`loss::quantization_loss`]).
//!
//! The learned codes are consumed by the `eq-hashindex` crate (hash-table
//! lookups within a small Hamming radius) and by the EarthQube CBIR service.
//!
//! The convolutional backbone of the original MiLaN is replaced by the
//! hand-crafted spectral/texture descriptor in [`features`] (see ARCHITECTURE.md,
//! "Substitutions"); the hashing head and its losses are faithful.

#![warn(missing_docs)]

pub mod dataset;
pub mod features;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod normalizer;
pub mod persist;

pub use dataset::TrainingDataset;
pub use features::{FeatureExtractor, FEATURE_DIM};
pub use loss::{LossWeights, MilanLoss};
pub use metrics::{
    average_precision, mean_average_precision, precision_at_k, recall_at_k, CodeStatistics,
};
pub use model::{Milan, MilanConfig, TrainingReport};
pub use normalizer::Normalizer;
