//! Retrieval-quality and code-quality metrics.
//!
//! Retrieval metrics follow the protocol used for BigEarthNet CBIR
//! evaluation (Roy et al. 2021): a retrieved image is *relevant* to a query
//! when the two share at least one CLC Level-3 label; quality is summarised
//! by precision@k, recall@k and mean average precision (mAP@k).
//!
//! Code metrics quantify what the bit-balance and quantization losses are
//! supposed to achieve (experiment E6): per-bit activation balance, bit
//! correlation, and the quantization error of the continuous outputs.

use eq_hashindex::BinaryCode;
use eq_neural::Matrix;

/// Precision@k: the fraction of the first `k` retrieved items that are
/// relevant.  If fewer than `k` items were retrieved, the denominator is
/// still `k` (missing items count as misses), matching the usual CBIR
/// convention.
pub fn precision_at_k(retrieved: &[bool], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = retrieved.iter().take(k).filter(|&&r| r).count();
    hits as f64 / k as f64
}

/// Recall@k: the fraction of all relevant items that appear in the first
/// `k` retrieved items.
pub fn recall_at_k(retrieved: &[bool], total_relevant: usize, k: usize) -> f64 {
    if total_relevant == 0 {
        return 0.0;
    }
    let hits = retrieved.iter().take(k).filter(|&&r| r).count();
    hits as f64 / total_relevant as f64
}

/// Average precision over the first `k` positions of a ranked result list.
///
/// `retrieved[i]` states whether the item at rank `i` is relevant.  The
/// normaliser is `min(k, total_relevant)`, so a query that retrieves every
/// relevant item at the top gets AP = 1.
pub fn average_precision(retrieved: &[bool], total_relevant: usize, k: usize) -> f64 {
    if total_relevant == 0 || k == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &rel) in retrieved.iter().take(k).enumerate() {
        if rel {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / total_relevant.min(k) as f64
}

/// Mean average precision over a set of queries, each given as
/// `(ranked relevance flags, total number of relevant items)`.
pub fn mean_average_precision(queries: &[(Vec<bool>, usize)], k: usize) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    queries.iter().map(|(rel, total)| average_precision(rel, *total, k)).sum::<f64>()
        / queries.len() as f64
}

/// Statistics describing a set of binary codes.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeStatistics {
    /// Number of codes analysed.
    pub count: usize,
    /// Code width in bits.
    pub bits: u32,
    /// Per-bit activation rate (fraction of codes with the bit set).
    pub activation_rates: Vec<f64>,
    /// Mean absolute deviation of the activation rates from 0.5 (0 = every
    /// bit perfectly balanced, 0.5 = every bit constant).
    pub balance_deviation: f64,
    /// Mean absolute off-diagonal correlation between bits (0 = independent).
    pub mean_bit_correlation: f64,
    /// Number of distinct codes.
    pub distinct_codes: usize,
}

impl CodeStatistics {
    /// Computes statistics over a set of codes.
    ///
    /// # Panics
    /// Panics if `codes` is empty or the codes have inconsistent widths.
    pub fn from_codes(codes: &[BinaryCode]) -> Self {
        assert!(!codes.is_empty(), "need at least one code");
        let bits = codes[0].bits();
        assert!(codes.iter().all(|c| c.bits() == bits), "codes have inconsistent widths");
        let n = codes.len();
        let k = bits as usize;

        let mut activation_counts = vec![0usize; k];
        for c in codes {
            for b in 0..bits {
                if c.bit(b) {
                    activation_counts[b as usize] += 1;
                }
            }
        }
        let activation_rates: Vec<f64> =
            activation_counts.iter().map(|&c| c as f64 / n as f64).collect();
        let balance_deviation =
            activation_rates.iter().map(|r| (r - 0.5).abs()).sum::<f64>() / k as f64;

        // Pearson correlation between bit pairs (on ±1 values).  For wide
        // codes this is O(n·k²); the experiment sizes keep it tractable.
        let means: Vec<f64> = activation_rates.iter().map(|r| 2.0 * r - 1.0).collect();
        let mut stds = vec![0.0f64; k];
        for (j, std) in stds.iter_mut().enumerate() {
            let mean = means[j];
            let var: f64 = codes
                .iter()
                .map(|c| {
                    let v = if c.bit(j as u32) { 1.0 } else { -1.0 };
                    (v - mean) * (v - mean)
                })
                .sum::<f64>()
                / n as f64;
            *std = var.sqrt();
        }
        let mut corr_sum = 0.0;
        let mut corr_cnt = 0usize;
        for a in 0..k {
            for b in (a + 1)..k {
                if stds[a] < 1e-12 || stds[b] < 1e-12 {
                    // A constant bit is maximally "dependent"; count it as 1.
                    corr_sum += 1.0;
                    corr_cnt += 1;
                    continue;
                }
                let mut cov = 0.0;
                for c in codes {
                    let va = if c.bit(a as u32) { 1.0 } else { -1.0 };
                    let vb = if c.bit(b as u32) { 1.0 } else { -1.0 };
                    cov += (va - means[a]) * (vb - means[b]);
                }
                cov /= n as f64;
                corr_sum += (cov / (stds[a] * stds[b])).abs();
                corr_cnt += 1;
            }
        }
        let mean_bit_correlation = if corr_cnt == 0 { 0.0 } else { corr_sum / corr_cnt as f64 };

        let mut distinct: Vec<&BinaryCode> = codes.iter().collect();
        distinct.sort_by_key(|c| c.to_bit_string());
        distinct.dedup_by_key(|c| c.to_bit_string());

        Self {
            count: n,
            bits,
            activation_rates,
            balance_deviation,
            mean_bit_correlation,
            distinct_codes: distinct.len(),
        }
    }
}

/// Mean squared distance of continuous hash-layer outputs from their
/// binarised values — what the quantization loss minimises.
pub fn quantization_error(outputs: &Matrix) -> f64 {
    let mut acc = 0.0f64;
    for &v in outputs.data() {
        let s = if v >= 0.0 { 1.0 } else { -1.0 };
        acc += ((v - s) as f64).powi(2);
    }
    acc / outputs.data().len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_and_recall_basics() {
        let retrieved = vec![true, false, true, true, false];
        assert_eq!(precision_at_k(&retrieved, 1), 1.0);
        assert_eq!(precision_at_k(&retrieved, 2), 0.5);
        assert_eq!(precision_at_k(&retrieved, 5), 3.0 / 5.0);
        assert_eq!(precision_at_k(&retrieved, 0), 0.0);
        // Fewer retrieved than k: misses count against precision.
        assert_eq!(precision_at_k(&retrieved, 10), 3.0 / 10.0);

        assert_eq!(recall_at_k(&retrieved, 4, 5), 0.75);
        assert_eq!(recall_at_k(&retrieved, 4, 1), 0.25);
        assert_eq!(recall_at_k(&retrieved, 0, 5), 0.0);
    }

    #[test]
    fn average_precision_perfect_and_worst_case() {
        // All relevant at the top.
        assert!((average_precision(&[true, true, false, false], 2, 4) - 1.0).abs() < 1e-12);
        // Nothing relevant retrieved.
        assert_eq!(average_precision(&[false, false], 3, 2), 0.0);
        // No relevant items exist.
        assert_eq!(average_precision(&[true], 0, 1), 0.0);
    }

    #[test]
    fn average_precision_known_value() {
        // Relevant at ranks 1 and 3 (1-based), 2 relevant total, k = 3:
        // AP = (1/1 + 2/3) / 2 = 0.8333…
        let ap = average_precision(&[true, false, true], 2, 3);
        assert!((ap - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn map_averages_over_queries() {
        let queries = vec![
            (vec![true, true], 2),   // AP = 1
            (vec![false, false], 2), // AP = 0
        ];
        assert!((mean_average_precision(&queries, 2) - 0.5).abs() < 1e-12);
        assert_eq!(mean_average_precision(&[], 10), 0.0);
    }

    #[test]
    fn code_statistics_on_balanced_codes() {
        // Four 2-bit codes covering all combinations: perfectly balanced,
        // uncorrelated, all distinct.
        let codes = vec![
            BinaryCode::from_bit_string("00").unwrap(),
            BinaryCode::from_bit_string("01").unwrap(),
            BinaryCode::from_bit_string("10").unwrap(),
            BinaryCode::from_bit_string("11").unwrap(),
        ];
        let s = CodeStatistics::from_codes(&codes);
        assert_eq!(s.count, 4);
        assert_eq!(s.bits, 2);
        assert_eq!(s.activation_rates, vec![0.5, 0.5]);
        assert!(s.balance_deviation < 1e-12);
        assert!(s.mean_bit_correlation < 1e-12);
        assert_eq!(s.distinct_codes, 4);
    }

    #[test]
    fn code_statistics_on_degenerate_codes() {
        // Every code identical: constant bits, zero distinct diversity.
        let codes = vec![BinaryCode::from_bit_string("1010").unwrap(); 8];
        let s = CodeStatistics::from_codes(&codes);
        assert_eq!(s.distinct_codes, 1);
        assert!((s.balance_deviation - 0.5).abs() < 1e-12);
        assert!((s.mean_bit_correlation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn code_statistics_correlated_bits_detected() {
        // Bit 1 always equals bit 0 → correlation 1 for that pair.
        let codes = vec![
            BinaryCode::from_bit_string("00").unwrap(),
            BinaryCode::from_bit_string("11").unwrap(),
            BinaryCode::from_bit_string("00").unwrap(),
            BinaryCode::from_bit_string("11").unwrap(),
        ];
        let s = CodeStatistics::from_codes(&codes);
        assert!((s.mean_bit_correlation - 1.0).abs() < 1e-9);
        assert!(s.balance_deviation < 1e-9); // still balanced
    }

    #[test]
    #[should_panic(expected = "at least one code")]
    fn code_statistics_rejects_empty_input() {
        let _ = CodeStatistics::from_codes(&[]);
    }

    #[test]
    #[should_panic(expected = "inconsistent widths")]
    fn code_statistics_rejects_mixed_widths() {
        let codes = vec![BinaryCode::zeros(8), BinaryCode::zeros(16)];
        let _ = CodeStatistics::from_codes(&codes);
    }

    #[test]
    fn quantization_error_bounds() {
        let perfect = Matrix::from_vec(1, 4, vec![1.0, -1.0, 1.0, -1.0]);
        assert_eq!(quantization_error(&perfect), 0.0);
        let worst = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        assert!((quantization_error(&worst) - 1.0).abs() < 1e-12);
        let mid = Matrix::from_vec(1, 1, vec![0.5]);
        assert!((quantization_error(&mid) - 0.25).abs() < 1e-12);
    }
}
