//! Rule `panic`: the serving crates' non-test code must not contain a
//! reachable panic site.  A panic inside the query server tears down a
//! worker thread mid-request; every fallible path is supposed to surface a
//! typed error over the wire instead.  Flags `.unwrap(` / `.expect(`
//! method calls and the `panic!` / `unreachable!` / `todo!` /
//! `unimplemented!` / `assert!`-family-free macro set, suppressable only
//! via `// lint:allow(panic) <reason>`.

use crate::lexer::TokenKind;
use crate::rules::is_punct;
use crate::{FileCtx, Sink};

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the rule over one file.  The caller restricts this to the crates
/// named in the policy's `[panic]` table.
pub fn check(ctx: &FileCtx<'_>, sink: &mut Sink) {
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.in_test[i] {
            continue;
        }
        if code[i].kind != TokenKind::Ident {
            continue;
        }
        let name = code[i].text;
        // `.unwrap(` — a method call, not a standalone fn named unwrap.
        if PANIC_METHODS.contains(&name)
            && is_punct(code, i.wrapping_sub(1), ".")
            && is_punct(code, i + 1, "(")
        {
            sink.violation(
                ctx,
                code[i].line,
                "panic",
                format!("`.{name}()` in serving-crate code; return a typed error instead"),
            );
            continue;
        }
        // `panic!(` and friends.  `unreachable` guards against flagging
        // idents like `core::unreachable` paths the same way: the `!` is
        // what makes it a macro invocation.
        if PANIC_MACROS.contains(&name) && is_punct(code, i + 1, "!") {
            sink.violation(
                ctx,
                code[i].line,
                "panic",
                format!("`{name}!` in serving-crate code; return a typed error instead"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_ctx;

    fn run_on(src: &str) -> crate::LintReport {
        let mut sink = Sink::default();
        let ctx = build_ctx("crates/x/src/lib.rs", src, &mut sink);
        check(&ctx, &mut sink);
        sink.report
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let report = run_on(
            "fn f() {\n    a.unwrap();\n    b.expect(\"msg\");\n    panic!(\"x\");\n    unreachable!();\n    todo!();\n}",
        );
        assert_eq!(report.violations.len(), 5);
        assert!(report.violations.iter().all(|d| d.rule == "panic"));
        assert_eq!(report.violations[0].line, 2);
    }

    #[test]
    fn spares_strings_comments_and_non_method_idents() {
        let report = run_on(
            "fn f() {\n    let s = \"call .unwrap() now\"; // then .unwrap() it\n    let unwrap = 3;\n    let _ = unwrap;\n    expect_fn();\n}",
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn spares_cfg_test_regions() {
        let report = run_on(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); panic!(); }\n}",
        );
        assert!(report.violations.is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let report =
            run_on("fn f() {\n    a.unwrap(); // lint:allow(panic) length checked above\n}");
        assert!(report.violations.is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let report =
            run_on("fn f() {\n    a.unwrap_or(0);\n    b.unwrap_or_else(|| 1);\n    c.unwrap_or_default();\n}");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
