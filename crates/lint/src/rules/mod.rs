//! The rule families.  Each module exposes a `check` function; per-file
//! rules take a [`crate::FileCtx`], cross-file rules take the whole slice.

pub mod golden;
pub mod hot_path;
pub mod lock_discipline;
pub mod panic_hygiene;
pub mod wire_consts;

use crate::lexer::{Token, TokenKind};

/// Whether `code[i]` is an ident with the given text.
pub(crate) fn is_ident(code: &[Token<'_>], i: usize, text: &str) -> bool {
    code.get(i).is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

/// Whether `code[i]` is punctuation with the given text.
pub(crate) fn is_punct(code: &[Token<'_>], i: usize, text: &str) -> bool {
    code.get(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// Skips a balanced `{…}` block: `open` indexes the `{`; returns the index
/// just past the matching `}` (or `code.len()` if unbalanced).
pub(crate) fn skip_braces(code: &[Token<'_>], open: usize) -> usize {
    debug_assert!(is_punct(code, open, "{"));
    let mut depth = 0usize;
    let mut i = open;
    while i < code.len() {
        match code[i].text {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    code.len()
}

/// Walks backwards over one balanced `(...)` group ending at `close` (the
/// index of the `)`); returns the index of the matching `(`, or `close`
/// when unbalanced.
pub(crate) fn back_over_parens(code: &[Token<'_>], close: usize) -> usize {
    let mut depth = 0usize;
    let mut i = close;
    loop {
        match code[i].text {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        if i == 0 {
            return close;
        }
        i -= 1;
    }
}
