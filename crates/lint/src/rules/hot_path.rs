//! Rule `hot-path`: functions in the policy's hot-path registry — the
//! PR 5 scan/top-k/serve entry points that the e11 counting-allocator
//! experiment proves allocation-free at runtime — must stay *lexically*
//! allocation-free too.  Inside a registered function body the rule bans:
//!
//! * calls to configured methods (`push`, `clone`, `collect`, `to_vec`, …),
//! * configured macros (`format!`, `vec!`),
//! * `Type::new` for configured allocating types (`Vec`, `Box`, `String`, …),
//!
//! except inside a block annotated `#[cold]` (the cold-error-arm escape
//! hatch).  Amortised uses — a `push` into a buffer whose capacity was
//! reserved at setup time — carry an inline `lint:allow(hot-path)` with
//! the reason, so every exception is enumerated in the lint summary.
//!
//! A registry entry whose function no longer exists in the named file is a
//! warning: a stale registry silently un-guards the path it used to pin.

use crate::lexer::TokenKind;
use crate::policy::Policy;
use crate::rules::{is_punct, skip_braces};
use crate::{FileCtx, Sink};

/// Runs the rule over one file, checking each registry entry naming it.
pub fn check(ctx: &FileCtx<'_>, policy: &Policy, sink: &mut Sink) {
    for hot in policy.hot_functions.iter().filter(|h| h.file == ctx.path) {
        let bodies = find_fn_bodies(ctx, &hot.name);
        if bodies.is_empty() {
            sink.warning(
                &ctx.path,
                0,
                "hot-path",
                format!(
                    "stale registry entry: no function `{}` in this file — update lint.toml",
                    hot.name
                ),
                String::new(),
            );
        }
        for (open, close) in bodies {
            check_body(ctx, policy, sink, &hot.name, open, close);
        }
    }
}

/// Finds every `fn <name>` in non-test code, returning each body's token
/// range: (index of `{`, index past matching `}`).  Several impl blocks
/// may define a same-named method; all of them are hot.
fn find_fn_bodies(ctx: &FileCtx<'_>, name: &str) -> Vec<(usize, usize)> {
    let code = &ctx.code;
    let mut bodies = Vec::new();
    for i in 0..code.len() {
        if ctx.in_test[i] {
            continue;
        }
        if code[i].kind == TokenKind::Ident
            && code[i].text == name
            && i > 0
            && code[i - 1].kind == TokenKind::Ident
            && code[i - 1].text == "fn"
        {
            // Skip generics/args/return type to the body's `{`; neither
            // can contain a bare `{` here, so the first one is the body.
            let mut j = i + 1;
            while j < code.len() && code[j].text != "{" && code[j].text != ";" {
                j += 1;
            }
            if j < code.len() && code[j].text == "{" {
                bodies.push((j, skip_braces(code, j)));
            }
        }
    }
    bodies
}

/// Scans one function body for banned constructs, skipping `#[cold]`
/// blocks.
fn check_body(
    ctx: &FileCtx<'_>,
    policy: &Policy,
    sink: &mut Sink,
    fn_name: &str,
    open: usize,
    close: usize,
) {
    let code = &ctx.code;
    let mut i = open + 1;
    while i < close.min(code.len()) {
        // `#[cold]` — skip the next balanced block (closure or nested fn
        // body): the cold error arm is exempt by design.
        if is_punct(code, i, "#")
            && is_punct(code, i + 1, "[")
            && code.get(i + 2).is_some_and(|t| t.text == "cold")
            && is_punct(code, i + 3, "]")
        {
            let mut j = i + 4;
            while j < close && code[j].text != "{" {
                j += 1;
            }
            i = if j < close { skip_braces(code, j) } else { close };
            continue;
        }
        let tok = code[i];
        if tok.kind == TokenKind::Ident {
            // `.push(` etc.
            if is_punct(code, i.wrapping_sub(1), ".")
                && is_punct(code, i + 1, "(")
                && policy.hot_banned_methods.iter().any(|m| m == tok.text)
            {
                sink.violation(
                    ctx,
                    tok.line,
                    "hot-path",
                    format!("`.{}()` inside hot-path fn `{fn_name}` — the steady-state read path must not allocate", tok.text),
                );
            }
            // `format!(` etc.
            if is_punct(code, i + 1, "!") && policy.hot_banned_macros.iter().any(|m| m == tok.text)
            {
                sink.violation(
                    ctx,
                    tok.line,
                    "hot-path",
                    format!("`{}!` inside hot-path fn `{fn_name}` — the steady-state read path must not allocate", tok.text),
                );
            }
            // `Vec::new` etc. (`::` lexes as two `:` puncts).
            if is_punct(code, i + 1, ":")
                && is_punct(code, i + 2, ":")
                && code.get(i + 3).is_some_and(|t| t.kind == TokenKind::Ident && t.text == "new")
                && policy.hot_banned_constructors.iter().any(|c| c == tok.text)
            {
                sink.violation(
                    ctx,
                    tok.line,
                    "hot-path",
                    format!("`{}::new` inside hot-path fn `{fn_name}` — the steady-state read path must not allocate", tok.text),
                );
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_ctx;
    use crate::policy::parse_policy;

    const POLICY: &str = "[hot_path]\nbanned_methods = [\"push\", \"clone\", \"collect\", \"to_vec\"]\nbanned_macros = [\"format\", \"vec\"]\nbanned_constructors = [\"Vec\", \"Box\"]\n\n[[hot_path.function]]\nfile = \"crates/x/src/lib.rs\"\nname = \"scan\"\n";

    fn run_on(src: &str) -> crate::LintReport {
        let policy = parse_policy(POLICY).expect("test policy parses");
        let mut sink = Sink::default();
        let ctx = build_ctx("crates/x/src/lib.rs", src, &mut sink);
        check(&ctx, &policy, &mut sink);
        sink.report
    }

    #[test]
    fn flags_banned_calls_only_inside_registered_fns() {
        let src = "\
fn scan(&self) {
    self.out.push(1);
    let v = Vec::new();
    let s = format!(\"x\");
}
fn setup(&self) {
    self.out.push(1);
    let v: Vec<u32> = items.collect();
}";
        let report = run_on(src);
        assert_eq!(report.violations.len(), 3, "{:?}", report.violations);
        assert!(report.violations.iter().all(|d| d.rule == "hot-path"));
        assert!(report.violations.iter().all(|d| d.message.contains("`scan`")));
    }

    #[test]
    fn cold_blocks_are_exempt() {
        let src = "\
fn scan(&self) {
    let fallback = #[cold]
    || {
        let mut v = Vec::new();
        v.push(1);
        format!(\"slow path {v:?}\")
    };
    step();
}";
        let report = run_on(src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn allow_with_reason_suppresses_amortised_push() {
        let src = "\
fn scan(&self) {
    self.out.push(1); // lint:allow(hot-path) capacity reserved at setup; amortised O(0) alloc
}";
        let report = run_on(src);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn stale_registry_entry_is_a_warning() {
        let report = run_on("fn other() {}");
        assert!(report.violations.is_empty());
        assert_eq!(report.warnings.len(), 1);
        assert!(report.warnings[0].message.contains("stale registry entry"));
        assert!(report.warnings[0].message.contains("`scan`"));
    }

    #[test]
    fn code_like_strings_in_hot_fns_are_not_flagged() {
        let src = "fn scan(&self) { log(\"never .push( or Vec::new here\"); }";
        assert!(run_on(src).violations.is_empty());
    }
}
