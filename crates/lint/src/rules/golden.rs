//! Rule `golden`: the golden fixture directory and the conformance test
//! that exercises it must stay in bijection.  Two directions:
//!
//! * **orphan fixture** — a committed `.bin` whose stem appears in no
//!   string literal of the conformance test is dead weight that would
//!   silently stop pinning anything;
//! * **missing fixture** — a `check*`-call naming a fixture that does not
//!   exist on disk (the test would only notice at runtime; the lint
//!   notices at gate time, before a bless step is forgotten).
//!
//! This replaces the hand-maintained `known` array the golden test used to
//! carry: the referenced-name set is now derived from the test source
//! itself, so adding a conformance test automatically blesses its fixture
//! name.

use std::path::Path;

use crate::lexer::{literal_content, TokenKind};
use crate::policy::Policy;
use crate::rules::is_punct;
use crate::{FileCtx, Sink};

/// The helper functions whose first string argument names a fixture.
const CHECK_FNS: &[&str] = &["check", "check_request", "check_response"];

/// Runs the rule: compares the fixture directory against the test file.
pub fn check(root: &Path, ctxs: &[FileCtx<'_>], policy: &Policy, sink: &mut Sink) {
    let Some(golden) = &policy.golden else { return };
    let Some(ctx) = ctxs.iter().find(|c| c.path == golden.test_file) else {
        sink.report.violations.push(crate::Diagnostic {
            file: golden.test_file.clone(),
            line: 0,
            rule: "golden",
            message: "the golden conformance test file named in lint.toml was not found".into(),
            snippet: String::new(),
        });
        return;
    };

    let mut stems: Vec<String> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join(&golden.fixtures)) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_file() {
                if let Some(stem) = path.file_stem() {
                    stems.push(stem.to_string_lossy().into_owned());
                }
            }
        }
    }
    stems.sort();

    // Every string literal in the test file counts as a reference — names
    // flow through tuple tables as well as direct `check("…", …)` calls.
    let referenced: Vec<&str> = ctx
        .code
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::Str | TokenKind::ByteStr))
        .map(|t| literal_content(t.text))
        .collect();

    for stem in &stems {
        if !referenced.iter().any(|r| r == stem) {
            sink.report.violations.push(crate::Diagnostic {
                file: format!("{}/{stem}.bin", golden.fixtures),
                line: 0,
                rule: "golden",
                message: format!(
                    "orphan golden fixture `{stem}` — no test in {} references it; \
                     remove it or add a conformance test",
                    golden.test_file
                ),
                snippet: String::new(),
            });
        }
    }

    // Direct `check*("name", …)` calls must name an existing fixture.
    let code = &ctx.code;
    for i in 0..code.len() {
        if code[i].kind == TokenKind::Ident
            && CHECK_FNS.contains(&code[i].text)
            && !is_punct(code, i.wrapping_sub(1), ".")
            && is_punct(code, i + 1, "(")
            && code.get(i + 2).is_some_and(|t| t.kind == TokenKind::Str)
        {
            let name = literal_content(code[i + 2].text);
            if !name.is_empty() && !stems.iter().any(|s| s == name) {
                sink.violation(
                    ctx,
                    code[i + 2].line,
                    "golden",
                    format!(
                        "test references golden fixture `{name}` but {}/{name}.bin does not \
                         exist — bless it (EQ_PROTO_BLESS=1) and commit it",
                        golden.fixtures
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_ctx;
    use crate::policy::parse_policy;

    fn run_on(dir: &Path, test_src: &str) -> crate::LintReport {
        let policy = parse_policy(
            "[golden]\nfixtures = \"golden\"\ntest_file = \"crates/p/tests/golden_bytes.rs\"\n",
        )
        .expect("test policy parses");
        let mut sink = Sink::default();
        let ctxs = vec![build_ctx("crates/p/tests/golden_bytes.rs", test_src, &mut sink)];
        check(dir, &ctxs, &policy, &mut sink);
        sink.report
    }

    fn fixture_dir(names: &[&str]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("eq_lint_golden_{names:?}_{}", names.len()));
        let golden = dir.join("golden");
        std::fs::create_dir_all(&golden).expect("temp dir");
        for existing in std::fs::read_dir(&golden).expect("list").flatten() {
            std::fs::remove_file(existing.path()).expect("clean");
        }
        for name in names {
            std::fs::write(golden.join(format!("{name}.bin")), b"x").expect("write fixture");
        }
        dir
    }

    #[test]
    fn bijection_is_silent() {
        let dir = fixture_dir(&["request_ping", "response_pong"]);
        let src = "#[test]\nfn t() {\n    check(\"request_ping\", &[]);\n    for (n,) in [(\"response_pong\",)] { check(n, &[]); }\n}";
        let report = run_on(&dir, src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn orphan_fixture_fires() {
        let dir = fixture_dir(&["request_ping", "stale_extra"]);
        let src = "fn t() { check(\"request_ping\", &[]); }";
        let report = run_on(&dir, src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("orphan"));
        assert!(report.violations[0].file.contains("stale_extra"));
    }

    #[test]
    fn missing_fixture_fires_with_line() {
        let dir = fixture_dir(&["request_ping"]);
        let src = "fn t() {\n    check(\"request_ping\", &[]);\n    check_request(\"request_new_thing\", &req);\n}";
        let report = run_on(&dir, src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].line, 3);
        assert!(report.violations[0].message.contains("request_new_thing"));
    }

    #[test]
    fn missing_test_file_is_a_violation() {
        let policy = parse_policy(
            "[golden]\nfixtures = \"golden\"\ntest_file = \"crates/p/tests/golden_bytes.rs\"\n",
        )
        .expect("test policy parses");
        let mut sink = Sink::default();
        check(Path::new("/nonexistent"), &[], &policy, &mut sink);
        assert_eq!(sink.report.violations.len(), 1);
        assert!(sink.report.violations[0].message.contains("not found"));
    }
}
