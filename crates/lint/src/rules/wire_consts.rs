//! Rule `wire`: single-definition wire constants and blessed versions.
//!
//! The wire format is an external contract: request/response magics, the
//! snapshot and WAL headers, and version numbers all have exactly one
//! authoritative definition, and every other appearance must *reference*
//! the const — a re-typed literal is a fork of the protocol waiting to
//! drift.  For versioned constants pinned to a golden fixture directory,
//! the policy also records a CRC-32 of the blessed fixtures: bumping the
//! version (or editing a fixture) without re-blessing the CRC fails the
//! run, which is precisely the "bumped the version, forgot the fixtures"
//! mistake golden tests alone cannot catch before the bytes ship.

use std::path::Path;

use crate::lexer::{literal_content, TokenKind};
use crate::policy::Policy;
use crate::rules::is_punct;
use crate::{fixture_dir_crc, FileCtx, Sink};

/// Runs the rule across the whole scanned tree.
pub fn check(root: &Path, ctxs: &[FileCtx<'_>], policy: &Policy, sink: &mut Sink) {
    let names: Vec<(&str, &str)> = policy
        .wire_constants
        .iter()
        .map(|c| (c.name.as_str(), c.file.as_str()))
        .chain(policy.wire_versions.iter().map(|v| (v.name.as_str(), v.file.as_str())))
        .collect();

    // Definition sites: `const NAME` in non-test code, per constant.
    for (name, declared_file) in &names {
        let mut defs: Vec<(&FileCtx<'_>, usize)> = Vec::new();
        for ctx in ctxs {
            for i in 0..ctx.code.len() {
                if !ctx.in_test[i]
                    && ctx.code[i].kind == TokenKind::Ident
                    && ctx.code[i].text == *name
                    && i > 0
                    && ctx.code[i - 1].kind == TokenKind::Ident
                    && ctx.code[i - 1].text == "const"
                {
                    defs.push((ctx, i));
                }
            }
        }
        if defs.is_empty() {
            sink.report.violations.push(crate::Diagnostic {
                file: (*declared_file).to_string(),
                line: 0,
                rule: "wire",
                message: format!("wire constant `{name}` is not defined anywhere in the tree"),
                snippet: String::new(),
            });
            continue;
        }
        for (ctx, i) in &defs {
            if ctx.path != *declared_file {
                sink.violation(
                    ctx,
                    ctx.code[*i].line,
                    "wire",
                    format!("wire constant `{name}` defined outside its authoritative file `{declared_file}`"),
                );
            }
        }
        if defs.len() > 1 {
            for (ctx, i) in &defs[1..] {
                sink.violation(
                    ctx,
                    ctx.code[*i].line,
                    "wire",
                    format!(
                        "wire constant `{name}` defined more than once (first at {}:{})",
                        defs[0].0.path, defs[0].0.code[defs[0].1].line
                    ),
                );
            }
        }
    }

    // Literal re-occurrences of magic byte strings outside the definition
    // statement.
    for c in &policy.wire_constants {
        for ctx in ctxs {
            let def_range = definition_range(ctx, &c.name);
            for i in 0..ctx.code.len() {
                let tok = ctx.code[i];
                if ctx.in_test[i]
                    || !matches!(tok.kind, TokenKind::Str | TokenKind::ByteStr)
                    || literal_content(tok.text) != c.literal
                {
                    continue;
                }
                if def_range.is_some_and(|(lo, hi)| i >= lo && i < hi) {
                    continue;
                }
                sink.violation(
                    ctx,
                    tok.line,
                    "wire",
                    format!(
                        "magic literal `{}` re-typed inline; reference `{}` (defined in {}) instead",
                        c.literal, c.name, c.file
                    ),
                );
            }
        }
    }

    // Version values and fixture blessing.
    for v in &policy.wire_versions {
        let Some(ctx) = ctxs.iter().find(|c| c.path == v.file) else { continue };
        match defined_value(ctx, &v.name) {
            Some(actual) if actual == v.value => {}
            Some(actual) => {
                let line = definition_range(ctx, &v.name).map_or(0, |(lo, _)| ctx.code[lo].line);
                sink.violation(
                    ctx,
                    line,
                    "wire",
                    format!(
                        "`{}` is {actual} in the source but {} in lint.toml — bump both \
                         (and re-bless the golden fixtures) together",
                        v.name, v.value
                    ),
                );
            }
            None => {} // absence already reported above
        }
        let (Some(fixtures), Some(expected)) = (&v.fixtures, v.fixture_crc) else { continue };
        match fixture_dir_crc(&root.join(fixtures)) {
            Ok(Some(actual)) if actual == expected => {}
            Ok(Some(actual)) => sink.report.violations.push(crate::Diagnostic {
                file: fixtures.clone(),
                line: 0,
                rule: "wire",
                message: format!(
                    "golden fixtures for `{}` changed without re-blessing: lint.toml \
                     records crc {expected:#010x}, directory hashes to {actual:#010x}",
                    v.name
                ),
                snippet: String::new(),
            }),
            Ok(None) => sink.report.violations.push(crate::Diagnostic {
                file: fixtures.clone(),
                line: 0,
                rule: "wire",
                message: format!(
                    "golden fixture directory for `{}` is missing or empty — a versioned \
                     wire format must ship blessed fixtures",
                    v.name
                ),
                snippet: String::new(),
            }),
            Err(e) => sink.report.violations.push(crate::Diagnostic {
                file: fixtures.clone(),
                line: 0,
                rule: "wire",
                message: format!("cannot hash golden fixtures: {e}"),
                snippet: String::new(),
            }),
        }
    }
}

/// Token range `[const, ;)` of `const <name> …;` in this file, if present.
fn definition_range(ctx: &FileCtx<'_>, name: &str) -> Option<(usize, usize)> {
    let code = &ctx.code;
    for i in 1..code.len() {
        if !ctx.in_test[i]
            && code[i].kind == TokenKind::Ident
            && code[i].text == name
            && code[i - 1].kind == TokenKind::Ident
            && code[i - 1].text == "const"
        {
            // Find the terminating `;`, skipping any inside bracketed
            // groups (`[u8; 4]` has one in the array type).
            let mut j = i;
            let mut depth = 0i32;
            while j < code.len() {
                match code[j].text {
                    "[" | "(" | "{" => depth += 1,
                    "]" | ")" | "}" => depth -= 1,
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            return Some((i - 1, j + 1));
        }
    }
    None
}

/// The numeric value assigned in `const <name>: … = <number>;`.
fn defined_value(ctx: &FileCtx<'_>, name: &str) -> Option<u64> {
    let (lo, hi) = definition_range(ctx, name)?;
    let code = &ctx.code;
    let eq = (lo..hi).find(|&i| is_punct(code, i, "="))?;
    let num = (eq..hi).find(|&i| code[i].kind == TokenKind::Number)?;
    parse_number(code[num].text)
}

/// Parses a numeric literal loosely: underscores stripped, `0x`/`0o`/`0b`
/// radix prefixes honoured, any type suffix ignored.
fn parse_number(text: &str) -> Option<u64> {
    let cleaned = text.replace('_', "");
    let (radix, digits) = match cleaned.as_bytes() {
        [b'0', b'x' | b'X', ..] => (16, &cleaned[2..]),
        [b'0', b'o' | b'O', ..] => (8, &cleaned[2..]),
        [b'0', b'b' | b'B', ..] => (2, &cleaned[2..]),
        _ => (10, cleaned.as_str()),
    };
    let end = digits.find(|ch: char| !ch.is_digit(radix)).unwrap_or(digits.len());
    u64::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_ctx;
    use crate::policy::parse_policy;

    const POLICY: &str = "\
[[wire.constant]]
name = \"REQUEST_MAGIC\"
literal = \"EQRQ\"
file = \"crates/p/src/lib.rs\"

[[wire.version]]
name = \"PROTOCOL_VERSION\"
file = \"crates/p/src/lib.rs\"
value = 1
";

    fn run_on(files: &[(&str, &str)]) -> crate::LintReport {
        let policy = parse_policy(POLICY).expect("test policy parses");
        let mut sink = Sink::default();
        let ctxs: Vec<_> = files.iter().map(|(p, s)| build_ctx(p, s, &mut sink)).collect();
        check(Path::new("/nonexistent"), &ctxs, &policy, &mut sink);
        sink.report
    }

    const GOOD_DEF: &str =
        "pub const REQUEST_MAGIC: [u8; 4] = *b\"EQRQ\";\npub const PROTOCOL_VERSION: u16 = 1;\n";

    #[test]
    fn single_definition_is_clean() {
        let report = run_on(&[("crates/p/src/lib.rs", GOOD_DEF)]);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn missing_and_duplicate_definitions_fire() {
        let report = run_on(&[("crates/p/src/lib.rs", "fn nothing() {}")]);
        assert!(report.violations.iter().any(|d| d.message.contains("not defined")));

        let dup = "const REQUEST_MAGIC: [u8; 4] = *b\"EQRQ\";";
        let report = run_on(&[("crates/p/src/lib.rs", GOOD_DEF), ("crates/q/src/lib.rs", dup)]);
        assert!(report.violations.iter().any(|d| d.message.contains("more than once")));
        assert!(report.violations.iter().any(|d| d.message.contains("authoritative")));
    }

    #[test]
    fn retyped_literal_elsewhere_fires_but_definition_site_is_exempt() {
        let other = "fn f(buf: &mut Vec<u8>) { buf.extend_from_slice(b\"EQRQ\"); }";
        let report = run_on(&[("crates/p/src/lib.rs", GOOD_DEF), ("crates/q/src/lib.rs", other)]);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].message.contains("re-typed"));
        assert_eq!(report.violations[0].file, "crates/q/src/lib.rs");
    }

    #[test]
    fn version_value_mismatch_fires() {
        let src = "pub const REQUEST_MAGIC: [u8; 4] = *b\"EQRQ\";\npub const PROTOCOL_VERSION: u16 = 2;\n";
        let report = run_on(&[("crates/p/src/lib.rs", src)]);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("2 in the source but 1 in lint.toml"));
        assert_eq!(report.violations[0].line, 2);
    }

    #[test]
    fn test_code_may_use_literals_freely() {
        let tests = "#[cfg(test)]\nmod tests {\n    const M: &[u8] = b\"EQRQ\";\n}";
        let report = run_on(&[("crates/p/src/lib.rs", GOOD_DEF), ("crates/q/src/lib.rs", tests)]);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn number_parsing_handles_radixes_and_suffixes() {
        assert_eq!(parse_number("1"), Some(1));
        assert_eq!(parse_number("0xFF"), Some(255));
        assert_eq!(parse_number("1_000u64"), Some(1000));
        assert_eq!(parse_number("0b1010"), Some(10));
        assert_eq!(parse_number("garbage"), None);
    }
}
