//! Rule `lock`: lexical lock-order and hold-across-I/O discipline.
//!
//! The engine tracks *guard bindings* — statements of the shape
//! `let [mut] g = receiver.lock();` (or `.read()` / `.write()`) — with the
//! brace depth at which they were bound, popping them when their block
//! closes or on an explicit `drop(g)`.  While at least one guard is held:
//!
//! * any further zero-arg `.lock()`/`.read()`/`.write()` acquisition must
//!   form a declared (outer, inner) pair with **every** held guard, keyed
//!   by the lock's field name (the identifier the method is called on) —
//!   the policy's `[[lock.order]]` table is the single source of truth
//!   that `serve.rs` today documents only in a comment;
//! * any call to a configured blocking routine (`sync_all`, `write_all`,
//!   …) is flagged — holding a lock across durability or socket I/O turns
//!   every other client of that lock into a disk-latency hostage.  Sites
//!   where that is the *design* (WAL append under the catalog write lock)
//!   carry an explicit `lint:allow(lock)` with the reason inline.
//!
//! Purely lexical, per-file: a guard returned from a helper function is
//! invisible, and a guard smuggled through a struct field is out of scope.
//! The dynamic complement lives in `vendor/parking_lot`'s debug-build
//! lock-order assertion.

use crate::lexer::TokenKind;
use crate::policy::Policy;
use crate::rules::{back_over_parens, is_punct};
use crate::{FileCtx, Sink};

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// A held guard: the bound variable, the lock's field name, and the brace
/// depth its binding lives at.
struct Held {
    var: String,
    lock: String,
    depth: usize,
    line: u32,
}

/// Runs the rule over one file (non-test code only).
pub fn check(ctx: &FileCtx<'_>, policy: &Policy, sink: &mut Sink) {
    let code = &ctx.code;
    let mut depth = 0usize;
    let mut held: Vec<Held> = Vec::new();

    let ordered =
        |outer: &str, inner: &str| policy.lock_order.iter().any(|(o, i)| o == outer && i == inner);

    let mut i = 0;
    while i < code.len() {
        let tok = code[i];
        if ctx.in_test[i] {
            i += 1;
            continue;
        }
        match tok.text {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                held.retain(|h| h.depth <= depth);
            }
            _ => {}
        }

        // Explicit `drop(guard)` releases early.
        if tok.kind == TokenKind::Ident
            && tok.text == "drop"
            && is_punct(code, i + 1, "(")
            && is_punct(code, i + 3, ")")
        {
            if let Some(var) = code.get(i + 2).filter(|t| t.kind == TokenKind::Ident) {
                held.retain(|h| h.var != var.text);
            }
        }

        // Blocking call while a guard is held: ident from the blocking
        // list immediately followed by `(`.
        if tok.kind == TokenKind::Ident
            && is_punct(code, i + 1, "(")
            && policy.blocking_calls.iter().any(|b| b == tok.text)
        {
            if let Some(outer) = held.last() {
                sink.violation(
                    ctx,
                    tok.line,
                    "lock",
                    format!(
                        "`{}` called while holding the `{}` guard (bound line {}); \
                         blocking I/O under a lock stalls every other holder",
                        tok.text, outer.lock, outer.line
                    ),
                );
            }
        }

        // Zero-arg acquisition: `. lock ( )` etc.
        if tok.kind == TokenKind::Ident
            && ACQUIRE_METHODS.contains(&tok.text)
            && is_punct(code, i.wrapping_sub(1), ".")
            && is_punct(code, i + 1, "(")
            && is_punct(code, i + 2, ")")
        {
            if let Some(lock_name) = receiver_name(code, i - 1) {
                for h in &held {
                    if h.lock != lock_name && !ordered(&h.lock, lock_name) {
                        sink.violation(
                            ctx,
                            tok.line,
                            "lock",
                            format!(
                                "acquiring `{lock_name}.{}()` while holding the `{}` guard \
                                 (bound line {}) — pair ({}, {lock_name}) is not in the \
                                 lock-order table",
                                tok.text, h.lock, h.line, h.lock
                            ),
                        );
                    } else if h.lock == lock_name {
                        sink.violation(
                            ctx,
                            tok.line,
                            "lock",
                            format!(
                                "re-acquiring `{lock_name}` while already holding its guard \
                                 (bound line {}) — self-deadlock on a non-reentrant lock",
                                h.line
                            ),
                        );
                    }
                }
                // Guard *binding*: `let [mut] var = …lock();`.
                if let Some(var) = binding_target(code, i) {
                    held.push(Held { var, lock: lock_name.to_string(), depth, line: tok.line });
                }
            }
        }
        i += 1;
    }
}

/// The lock's field name for an acquisition whose `.` sits at `dot`:
/// the identifier immediately before the dot, walking back over one
/// balanced `(...)` group if present (`self.shards[i].read()` ends up at
/// the ident before `[`, which we also step over).  `None` when the
/// receiver is not nameable (e.g. a call result) — those sites are skipped
/// rather than guessed at.
fn receiver_name<'a>(code: &[crate::lexer::Token<'a>], dot: usize) -> Option<&'a str> {
    let mut i = dot.checked_sub(1)?;
    // Step back over one index `[...]` or call `(...)` group.
    loop {
        match code[i].text {
            ")" => {
                let open = back_over_parens(code, i);
                if open == i {
                    return None;
                }
                i = open.checked_sub(1)?;
            }
            "]" => {
                let mut d = 0usize;
                loop {
                    match code[i].text {
                        "]" => d += 1,
                        "[" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i = i.checked_sub(1)?;
                }
                i = i.checked_sub(1)?;
            }
            _ => break,
        }
    }
    let tok = code.get(i)?;
    if tok.kind == TokenKind::Ident && tok.text != "self" {
        Some(tok.text)
    } else {
        None
    }
}

/// When the acquisition at `method` (the `lock`/`read`/`write` ident) is
/// the final call of a `let [mut] var = …;` statement, returns `var`.
/// The `)` must be directly followed by `;` — a chained call after the
/// acquisition (`.lock().pop()`) means the guard is a temporary, not a
/// binding.
fn binding_target(code: &[crate::lexer::Token<'_>], method: usize) -> Option<String> {
    if !is_punct(code, method + 3, ";") {
        return None;
    }
    // Walk back over the receiver chain: `ident ( . ident )*` possibly
    // starting at `self`.
    let mut i = method.checked_sub(1)?; // the `.`
    loop {
        i = i.checked_sub(1)?; // receiver segment
        if code[i].kind != TokenKind::Ident {
            return None;
        }
        if i == 0 {
            return None;
        }
        if is_punct(code, i - 1, ".") {
            i -= 1; // continue down the chain
            continue;
        }
        break;
    }
    // `let [mut] var =` must directly precede the chain.
    if !is_punct(code, i.checked_sub(1)?, "=") {
        return None;
    }
    let var = code.get(i.checked_sub(2)?)?;
    if var.kind != TokenKind::Ident {
        return None;
    }
    let before = i.checked_sub(3)?;
    let is_let = |j: usize| crate::rules::is_ident(code, j, "let");
    if is_let(before)
        || (crate::rules::is_ident(code, before, "mut") && before > 0 && is_let(before - 1))
    {
        Some(var.text.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_ctx;
    use crate::policy::parse_policy;

    fn run_on(src: &str, policy_text: &str) -> crate::LintReport {
        let policy = parse_policy(policy_text).expect("test policy parses");
        let mut sink = Sink::default();
        let ctx = build_ctx("crates/x/src/lib.rs", src, &mut sink);
        check(&ctx, &policy, &mut sink);
        sink.report
    }

    const ORDERED: &str = "[lock]\nblocking = [\"sync_all\", \"write_all\"]\n\n[[lock.order]]\nouter = \"catalog\"\ninner = \"wal\"\n";

    #[test]
    fn declared_pair_is_silent_undeclared_pair_fires() {
        let ok = "fn f(&self) {\n    let mut catalog = self.catalog.write();\n    let mut wal = self.wal.lock();\n    use_both(&mut catalog, &mut wal);\n}";
        assert!(run_on(ok, ORDERED).violations.is_empty());

        let bad = "fn f(&self) {\n    let mut wal = self.wal.lock();\n    let mut catalog = self.catalog.write();\n}";
        let report = run_on(bad, ORDERED);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "lock");
        assert_eq!(report.violations[0].line, 3);
        assert!(report.violations[0].message.contains("(wal, catalog)"));
    }

    #[test]
    fn guards_pop_at_block_close_and_on_drop() {
        let scoped = "fn f(&self) {\n    {\n        let wal = self.wal.lock();\n    }\n    let catalog = self.catalog.write();\n}";
        assert!(run_on(scoped, ORDERED).violations.is_empty());

        let dropped = "fn f(&self) {\n    let wal = self.wal.lock();\n    drop(wal);\n    let catalog = self.catalog.write();\n}";
        assert!(run_on(dropped, ORDERED).violations.is_empty());
    }

    #[test]
    fn chained_temporary_is_not_a_guard_binding() {
        // The classic false positive: the pool guard dies at the `;`.
        let src = "fn f(&self) {\n    let buf = self.scratch_pool.lock().pop().unwrap_or_default();\n    let catalog = self.catalog.write();\n}";
        assert!(run_on(src, ORDERED).violations.is_empty());
    }

    #[test]
    fn temporary_acquisition_under_a_guard_is_still_checked() {
        let src = "fn f(&self) {\n    let catalog = self.catalog.write();\n    let n = self.counters.lock().served;\n}";
        let report = run_on(src, ORDERED);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("counters"));
    }

    #[test]
    fn blocking_call_under_guard_fires_and_allow_silences() {
        let bad =
            "fn f(&self) {\n    let catalog = self.catalog.write();\n    file.sync_all()?;\n}";
        let report = run_on(bad, ORDERED);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("sync_all"));

        let allowed = "fn f(&self) {\n    let catalog = self.catalog.write();\n    file.sync_all()?; // lint:allow(lock) durability inside the ingest critical section is the design\n}";
        assert!(run_on(allowed, ORDERED).violations.is_empty());
    }

    #[test]
    fn reacquiring_the_same_lock_is_a_self_deadlock() {
        let src = "fn f(&self) {\n    let a = self.wal.lock();\n    let b = self.wal.lock();\n}";
        let report = run_on(src, ORDERED);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("self-deadlock"));
    }

    #[test]
    fn unnameable_receivers_are_skipped_not_guessed() {
        let src = "fn f(&self) {\n    let catalog = self.catalog.write();\n    let g = shard_for(key).read();\n}";
        // `shard_for(key)` is a call result: the receiver walk lands on the
        // fn name, which is not a lock field — and we still conservatively
        // treat it as nameable.  Verify it flags (conservative direction).
        let report = run_on(src, ORDERED);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("shard_for"));
    }
}
