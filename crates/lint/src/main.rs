//! The `eq_lint` binary: runs the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p eq_lint                         # lint the workspace
//! cargo run -p eq_lint -- --deny-warnings      # warnings fail too (CI)
//! cargo run -p eq_lint -- --root DIR           # lint another tree
//! cargo run -p eq_lint -- --policy FILE        # explicit policy file
//! ```
//!
//! Exit status: 0 clean, 1 violations (or warnings under
//! `--deny-warnings`), 2 usage or I/O/policy error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_warnings = false;
    let mut root: Option<PathBuf> = None;
    let mut policy_path: Option<PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--root" => match argv.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a value"),
            },
            "--policy" => match argv.next() {
                Some(v) => policy_path = Some(PathBuf::from(v)),
                None => return usage("--policy needs a value"),
            },
            "--help" | "-h" => {
                println!(
                    "eq_lint: serving-tier invariant checks\n\
                     usage: eq_lint [--deny-warnings] [--root DIR] [--policy FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Default root: the workspace this binary was built from, so
    // `cargo run -p eq_lint` works from any directory.
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let policy_path = policy_path.unwrap_or_else(|| root.join("lint.toml"));

    let policy = match eq_lint::load_policy(&policy_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("eq_lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match eq_lint::run(&root, &policy) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("eq_lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render());
    if report.is_clean(deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("eq_lint: {message}\nusage: eq_lint [--deny-warnings] [--root DIR] [--policy FILE]");
    ExitCode::from(2)
}
