//! `eq_lint` — the workspace static-analysis pass.
//!
//! PRs 2–5 established serving-tier invariants that ordinary tests only
//! catch when a runtime path happens to exercise them: the steady-state
//! read path allocates nothing, ingest atomicity hangs off one documented
//! lock order, and the wire format is pinned by golden fixtures.  This
//! crate makes those invariants *lexically* checkable.  A hand-rolled,
//! panic-free lexer (see [`lexer`]) turns every `.rs` file under `crates/`
//! and `src/` into a token stream, and a rule engine driven by the
//! committed `lint.toml` policy (see [`policy`]) walks it:
//!
//! * **`panic`** — no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in
//!   the serving crates' non-test code.
//! * **`lock`** — no lock acquisition inside the scope of another guard
//!   unless the (outer, inner) pair is in the policy's lock-order table,
//!   and no blocking I/O (`sync_all`, `write_all`, …) under a guard.
//! * **`hot-path`** — functions in the hot-path registry must not call
//!   allocating methods/macros/constructors outside `#[cold]` blocks.
//! * **`wire`** — each magic/version constant is defined exactly once, its
//!   literal never reappears elsewhere, and versions with golden fixtures
//!   carry a blessed fixture CRC.
//! * **`golden`** — every fixture in the golden directory is referenced by
//!   the golden test, and every directly-checked name has a fixture.
//!
//! A violation can be suppressed only by an inline annotation on (or
//! immediately above) the offending line:
//!
//! ```text
//! // lint:allow(panic) infallible: slice length checked two lines up
//! ```
//!
//! Every allow is recorded and reported in the run summary, a reason is
//! mandatory, and an allow that suppresses nothing is itself a warning.
//! The pass runs as `cargo run -p eq_lint` and as an in-crate `#[test]`
//! gate in each serving crate.

#![deny(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod policy;
pub mod rules;

use lexer::{lex, Token, TokenKind};
use policy::{parse_policy, Policy, PolicyError};

/// The rule names an allow annotation may suppress.
pub const RULES: &[&str] = &["panic", "lock", "hot-path", "wire", "golden"];

/// One reported problem: `file:line:rule: message` plus the offending line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The rule that fired (`panic`, `lock`, …).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, trimmed of trailing whitespace.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}", self.file, self.line, self.rule, self.message)?;
        if !self.snippet.is_empty() {
            write!(f, "\n    {}", self.snippet.trim_start())?;
        }
        Ok(())
    }
}

/// One `// lint:allow(…)` annotation found in a file.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// Workspace-relative file path.
    pub file: String,
    /// Line of the annotation comment itself.
    pub line: u32,
    /// The rules it suppresses.
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Hard violations; any of these fails the run.
    pub violations: Vec<Diagnostic>,
    /// Soft findings (unused allows, stale registry entries); fail the run
    /// only under `--deny-warnings`.
    pub warnings: Vec<Diagnostic>,
    /// Every allow annotation in force, for the summary.
    pub allows: Vec<AllowRecord>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the run passes.
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.violations.is_empty() && (!deny_warnings || self.warnings.is_empty())
    }

    /// Renders the full human-readable report.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for d in &self.violations {
            let _ = writeln!(out, "error: {d}");
        }
        for d in &self.warnings {
            let _ = writeln!(out, "warning: {d}");
        }
        if !self.allows.is_empty() {
            let _ = writeln!(out, "{} allow annotation(s) in force:", self.allows.len());
            for a in &self.allows {
                let _ = writeln!(
                    out,
                    "  {}:{}: allow({}) — {}",
                    a.file,
                    a.line,
                    a.rules.join(", "),
                    a.reason
                );
            }
        }
        let _ = writeln!(
            out,
            "checked {} file(s): {} violation(s), {} warning(s), {} allow(s)",
            self.files_scanned,
            self.violations.len(),
            self.warnings.len(),
            self.allows.len()
        );
        out
    }
}

/// Errors that abort a lint run before any rule executes.
#[derive(Debug)]
pub enum LintError {
    /// A file or directory could not be read.
    Io {
        /// The path that failed.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The policy file failed to parse.
    Policy(PolicyError),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            LintError::Policy(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

impl From<PolicyError> for LintError {
    fn from(e: PolicyError) -> Self {
        LintError::Policy(e)
    }
}

/// A parsed allow annotation, tracked for usage.
#[derive(Debug)]
pub struct Allow {
    /// Rules this annotation suppresses.
    pub rules: Vec<String>,
    /// Justification text after the closing paren.
    pub reason: String,
    /// Line of the comment itself.
    pub line: u32,
    /// The code line the annotation covers (its own line for a trailing
    /// comment, the next code line for a standalone one).
    pub applies_line: u32,
    /// Set when the annotation suppresses at least one diagnostic.
    pub used: Cell<bool>,
}

/// One analysed source file: code tokens (comments stripped), per-token
/// test-region flags, raw lines for snippets, and its allow annotations.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Raw source lines (for snippets).
    pub lines: Vec<&'a str>,
    /// Non-comment tokens in source order.
    pub code: Vec<Token<'a>>,
    /// `in_test[i]` is true when `code[i]` sits inside `#[cfg(test)]` or
    /// the whole file is a test/bench/example target.
    pub in_test: Vec<bool>,
    /// Whether the whole file is test context.
    pub test_file: bool,
    /// Allow annotations, in file order.
    pub allows: Vec<Allow>,
}

impl FileCtx<'_> {
    /// The trimmed source line at 1-based `line`, or empty.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map_or(String::new(), |l| l.trim_end().to_string())
    }
}

/// Collects diagnostics, consulting each file's allow annotations.
#[derive(Default)]
pub struct Sink {
    /// The report under construction.
    pub report: LintReport,
}

impl Sink {
    /// Records a violation at `line` unless an allow annotation covers it.
    pub fn violation(&mut self, ctx: &FileCtx<'_>, line: u32, rule: &'static str, message: String) {
        for allow in &ctx.allows {
            if allow.applies_line == line && allow.rules.iter().any(|r| r == rule) {
                allow.used.set(true);
                return;
            }
        }
        self.report.violations.push(Diagnostic {
            file: ctx.path.clone(),
            line,
            rule,
            message,
            snippet: ctx.snippet(line),
        });
    }

    /// Records a warning (never suppressed by allows).
    pub fn warning(
        &mut self,
        file: &str,
        line: u32,
        rule: &'static str,
        message: String,
        snippet: String,
    ) {
        self.report.warnings.push(Diagnostic {
            file: file.to_string(),
            line,
            rule,
            message,
            snippet,
        });
    }
}

/// Loads the policy file at `path`.
///
/// # Errors
/// Fails if the file cannot be read or does not parse.
pub fn load_policy(path: &Path) -> Result<Policy, LintError> {
    let text = fs::read_to_string(path)
        .map_err(|source| LintError::Io { path: path.to_path_buf(), source })?;
    Ok(parse_policy(&text)?)
}

/// Runs the full pass over the tree rooted at `root` using `root/lint.toml`.
///
/// # Errors
/// Fails on unreadable files or a malformed policy; rule violations are
/// *not* errors — they land in the returned report.
pub fn run_workspace(root: &Path) -> Result<LintReport, LintError> {
    let policy = load_policy(&root.join("lint.toml"))?;
    run(root, &policy)
}

/// Runs the full pass over the tree rooted at `root` with an explicit
/// policy.  Scans every `.rs` file under `root/crates` and `root/src`,
/// minus the policy's excluded prefixes.
///
/// # Errors
/// Fails only on I/O problems (unreadable directory or file).
pub fn run(root: &Path, policy: &Policy) -> Result<LintReport, LintError> {
    let mut rel_paths = Vec::new();
    for sub in ["crates", "src"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, Path::new(sub), &mut rel_paths)?;
        }
    }
    rel_paths.retain(|rel| {
        let rel_str = path_to_slash(rel);
        !policy.exclude.iter().any(|p| rel_str == *p || rel_str.starts_with(&format!("{p}/")))
    });
    rel_paths.sort();

    let mut sources = Vec::with_capacity(rel_paths.len());
    for rel in &rel_paths {
        let abs = root.join(rel);
        let text =
            fs::read_to_string(&abs).map_err(|source| LintError::Io { path: abs, source })?;
        sources.push(text);
    }

    let mut sink = Sink::default();
    let mut ctxs = Vec::with_capacity(sources.len());
    for (rel, source) in rel_paths.iter().zip(&sources) {
        ctxs.push(build_ctx(&path_to_slash(rel), source, &mut sink));
    }
    sink.report.files_scanned = ctxs.len();

    for ctx in &ctxs {
        if policy
            .panic_crates
            .iter()
            .any(|c| ctx.path == *c || ctx.path.starts_with(&format!("{c}/")))
        {
            rules::panic_hygiene::check(ctx, &mut sink);
        }
        rules::lock_discipline::check(ctx, policy, &mut sink);
        rules::hot_path::check(ctx, policy, &mut sink);
    }
    rules::wire_consts::check(root, &ctxs, policy, &mut sink);
    rules::golden::check(root, &ctxs, policy, &mut sink);

    // Allows that suppressed nothing are warnings: either the violation
    // they covered was fixed (delete the annotation) or they were
    // misplaced (and are silently masking nothing).
    for ctx in &ctxs {
        for allow in &ctx.allows {
            sink.report.allows.push(AllowRecord {
                file: ctx.path.clone(),
                line: allow.line,
                rules: allow.rules.clone(),
                reason: allow.reason.clone(),
            });
            if !allow.used.get() {
                sink.report.warnings.push(Diagnostic {
                    file: ctx.path.clone(),
                    line: allow.line,
                    rule: "annotation",
                    message: format!(
                        "unused lint:allow({}) — it suppresses nothing; remove it",
                        allow.rules.join(", ")
                    ),
                    snippet: ctx.snippet(allow.line),
                });
            }
        }
    }
    Ok(sink.report)
}

/// Recursively collects `.rs` files under `dir`, pushing paths relative to
/// the workspace root.
fn collect_rs_files(dir: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries =
        fs::read_dir(dir).map_err(|source| LintError::Io { path: dir.to_path_buf(), source })?;
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io { path: dir.to_path_buf(), source })?;
        let path = entry.path();
        let name = entry.file_name();
        let rel_child = rel.join(&name);
        if path.is_dir() {
            if name != "target" {
                collect_rs_files(&path, &rel_child, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel_child);
        }
    }
    Ok(())
}

fn path_to_slash(p: &Path) -> String {
    p.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Builds the per-file context: lexes, strips comments, marks
/// `#[cfg(test)]` regions, and parses allow annotations (reporting
/// malformed ones straight into `sink`).
pub fn build_ctx<'a>(path: &str, source: &'a str, sink: &mut Sink) -> FileCtx<'a> {
    let tokens = lex(source);
    let test_file = is_test_path(path);
    let lines: Vec<&str> = source.lines().collect();

    let mut ctx = FileCtx {
        path: path.to_string(),
        lines,
        code: Vec::new(),
        in_test: Vec::new(),
        test_file,
        allows: Vec::new(),
    };
    parse_allows(&tokens, &mut ctx, sink);
    ctx.code = tokens.iter().filter(|t| !t.is_comment()).copied().collect();
    ctx.in_test = mark_test_regions(&ctx.code, test_file);
    ctx
}

/// Whether a workspace-relative path is test context in its entirety.
fn is_test_path(path: &str) -> bool {
    ["tests", "benches", "examples"].iter().any(|d| path.split('/').any(|seg| seg == *d))
}

/// Marks tokens inside `#[cfg(test)]`-attributed items.
fn mark_test_regions(code: &[Token<'_>], test_file: bool) -> Vec<bool> {
    let mut in_test = vec![test_file; code.len()];
    if test_file {
        return in_test;
    }
    let is = |i: usize, kind: TokenKind, text: &str| {
        code.get(i).is_some_and(|t| t.kind == kind && t.text == text)
    };
    let mut i = 0;
    while i < code.len() {
        // #[cfg(test)]  — seven tokens exactly.
        if is(i, TokenKind::Punct, "#")
            && is(i + 1, TokenKind::Punct, "[")
            && is(i + 2, TokenKind::Ident, "cfg")
            && is(i + 3, TokenKind::Punct, "(")
            && is(i + 4, TokenKind::Ident, "test")
            && is(i + 5, TokenKind::Punct, ")")
            && is(i + 6, TokenKind::Punct, "]")
        {
            // The attribute governs the next item: everything up to its
            // closing brace (or terminating semicolon for `mod tests;`).
            let mut j = i + 7;
            for flag in &mut in_test[i..j.min(code.len())] {
                *flag = true;
            }
            while j < code.len() {
                in_test[j] = true;
                match code[j].text {
                    ";" => break,
                    "{" => {
                        let mut depth = 1usize;
                        j += 1;
                        while j < code.len() && depth > 0 {
                            in_test[j] = true;
                            match code[j].text {
                                "{" => depth += 1,
                                "}" => depth -= 1,
                                _ => {}
                            }
                            j += 1;
                        }
                        j = j.saturating_sub(1);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Parses `// lint:allow(rule[, rule]) reason` annotations from the full
/// token stream (comments included).  Malformed annotations — missing rule
/// list, unknown rule name, or missing reason — are violations in their
/// own right.
fn parse_allows(tokens: &[Token<'_>], ctx: &mut FileCtx<'_>, sink: &mut Sink) {
    for (idx, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text.trim_start_matches('/').trim_start();
        let Some(rest) = body.strip_prefix("lint:allow") else { continue };
        let bad = |sink: &mut Sink, ctx: &FileCtx<'_>, message: String| {
            sink.report.violations.push(Diagnostic {
                file: ctx.path.clone(),
                line: tok.line,
                rule: "annotation",
                message,
                snippet: ctx.snippet(tok.line),
            });
        };
        let Some(rest) = rest.trim_start().strip_prefix('(') else {
            bad(sink, ctx, "malformed lint:allow — expected `lint:allow(rule, …) reason`".into());
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad(sink, ctx, "malformed lint:allow — missing `)`".into());
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            bad(sink, ctx, "lint:allow() names no rules".into());
            continue;
        }
        if let Some(unknown) = rules.iter().find(|r| !RULES.contains(&r.as_str())) {
            bad(
                sink,
                ctx,
                format!("lint:allow names unknown rule `{unknown}` (known: {})", RULES.join(", ")),
            );
            continue;
        }
        let reason = rest[close + 1..].trim().to_string();
        if reason.is_empty() {
            bad(
                sink,
                ctx,
                format!("lint:allow({}) must carry a reason after the `)`", rules.join(", ")),
            );
            continue;
        }
        // Trailing comment (code earlier on the same line) covers its own
        // line; a standalone comment covers the next code line.
        let trailing =
            tokens[..idx].iter().rev().take_while(|t| t.line == tok.line).any(|t| !t.is_comment());
        let applies_line = if trailing {
            tok.line
        } else {
            tokens[idx + 1..].iter().find(|t| !t.is_comment()).map_or(0, |t| t.line)
        };
        ctx.allows.push(Allow {
            rules,
            reason,
            line: tok.line,
            applies_line,
            used: Cell::new(false),
        });
    }
}

/// CRC-32 (IEEE 802.3, reflected — the same polynomial `eq_wire` uses)
/// over `data`, continuing from `state`.  Start with `0` by passing
/// `crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF` via [`crc32`]; the
/// two-step form exists so directory hashing can stream file by file.
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &byte in data {
        state ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (state & 1).wrapping_neg();
            state = (state >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    state
}

/// One-shot CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// CRC-32 over a fixture directory: for each regular file in name order,
/// the file name bytes, a zero byte, the file contents, a zero byte.
/// Returns `None` when the directory is missing or empty — the wire rule
/// treats that as its own violation.
///
/// # Errors
/// Fails on unreadable entries.
pub fn fixture_dir_crc(dir: &Path) -> Result<Option<u32>, LintError> {
    if !dir.is_dir() {
        return Ok(None);
    }
    let mut names: Vec<String> = Vec::new();
    let entries =
        fs::read_dir(dir).map_err(|source| LintError::Io { path: dir.to_path_buf(), source })?;
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io { path: dir.to_path_buf(), source })?;
        if entry.path().is_file() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    if names.is_empty() {
        return Ok(None);
    }
    names.sort();
    let mut state = 0xFFFF_FFFFu32;
    for name in &names {
        let path = dir.join(name);
        let bytes =
            fs::read(&path).map_err(|source| LintError::Io { path: path.clone(), source })?;
        state = crc32_update(state, name.as_bytes());
        state = crc32_update(state, &[0]);
        state = crc32_update(state, &bytes);
        state = crc32_update(state, &[0]);
    }
    Ok(Some(state ^ 0xFFFF_FFFF))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_of<'a>(source: &'a str, sink: &mut Sink) -> FileCtx<'a> {
        build_ctx("crates/x/src/lib.rs", source, sink)
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}";
        let mut sink = Sink::default();
        let ctx = ctx_of(src, &mut sink);
        let unwrap_idx = ctx.code.iter().position(|t| t.text == "unwrap").expect("token present");
        assert!(ctx.in_test[unwrap_idx]);
        let live2 = ctx.code.iter().position(|t| t.text == "live2").expect("token present");
        assert!(!ctx.in_test[live2]);
    }

    #[test]
    fn test_paths_are_fully_test_context() {
        let mut sink = Sink::default();
        let ctx = build_ctx("crates/x/tests/it.rs", "fn f() { y.unwrap(); }", &mut sink);
        assert!(ctx.test_file);
        assert!(ctx.in_test.iter().all(|&b| b));
    }

    #[test]
    fn trailing_and_standalone_allows_bind_to_the_right_line() {
        let src = "\
fn f() {
    a.unwrap(); // lint:allow(panic) trailing reason
    // lint:allow(lock, panic) standalone reason
    b.lock();
}";
        let mut sink = Sink::default();
        let ctx = ctx_of(src, &mut sink);
        assert!(sink.report.violations.is_empty());
        assert_eq!(ctx.allows.len(), 2);
        assert_eq!((ctx.allows[0].line, ctx.allows[0].applies_line), (2, 2));
        assert_eq!((ctx.allows[1].line, ctx.allows[1].applies_line), (3, 4));
        assert_eq!(ctx.allows[1].rules, vec!["lock", "panic"]);
    }

    #[test]
    fn malformed_allows_are_violations() {
        for bad in [
            "// lint:allow(panic)",            // no reason
            "// lint:allow() because",         // no rules
            "// lint:allow(pnic) typo reason", // unknown rule
            "// lint:allow panic reason",      // no parens
            "// lint:allow(panic unclosed",    // no closing paren
        ] {
            let mut sink = Sink::default();
            let ctx = ctx_of(bad, &mut sink);
            assert_eq!(sink.report.violations.len(), 1, "{bad:?}");
            assert_eq!(sink.report.violations[0].rule, "annotation");
            assert!(ctx.allows.is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn allow_suppresses_and_marks_used() {
        let src = "fn f() { a.unwrap(); } // lint:allow(panic) fine here";
        let mut sink = Sink::default();
        let ctx = ctx_of(src, &mut sink);
        sink.violation(&ctx, 1, "panic", "boom".into());
        assert!(sink.report.violations.is_empty());
        assert!(ctx.allows[0].used.get());
        // A different rule on the same line is NOT suppressed.
        sink.violation(&ctx, 1, "lock", "held".into());
        assert_eq!(sink.report.violations.len(), 1);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn diagnostics_render_file_line_rule() {
        let d = Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: "panic",
            message: "`.unwrap()` in serving code".into(),
            snippet: "    x.unwrap();".into(),
        };
        let text = d.to_string();
        assert!(text.starts_with("crates/x/src/lib.rs:7:panic: "));
        assert!(text.contains("x.unwrap();"));
    }
}
