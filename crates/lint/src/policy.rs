//! The lint policy: what the committed `lint.toml` declares.
//!
//! The build environment has no registry access, so this module includes a
//! hand-rolled parser for the small TOML subset the policy file actually
//! uses: `[table]` headers, `[[array-of-tables]]` headers, and
//! `key = value` pairs where a value is a string, an integer (decimal or
//! `0x…` hex), a boolean, or a single-line array of strings.  Anything
//! outside that subset is a hard error — a policy typo must fail the lint
//! run, not silently relax it.

use std::fmt;

/// One entry in the hot-path registry: a function that must stay
/// allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotFunction {
    /// Workspace-relative path of the file defining the function.
    pub file: String,
    /// The function's name.
    pub name: String,
}

/// One wire magic constant: defined exactly once, referenced by name
/// everywhere else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireConstant {
    /// The constant's Rust identifier (`REQUEST_MAGIC`, …).
    pub name: String,
    /// The literal byte content (`EQRQ`, `EQSNAP01`, …).
    pub literal: String,
    /// Workspace-relative path of the file allowed to define it.
    pub file: String,
}

/// One versioned wire constant, optionally pinned to a blessed golden
/// fixture directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireVersion {
    /// The constant's Rust identifier (`PROTOCOL_VERSION`, …).
    pub name: String,
    /// Workspace-relative path of the file defining it.
    pub file: String,
    /// The value the policy expects the source to declare.
    pub value: u64,
    /// Golden fixture directory whose blessed contents pin this version.
    pub fixtures: Option<String>,
    /// CRC-32 over the fixture directory contents (names + bytes); a
    /// version bump without re-blessing the fixtures fails the lint run.
    pub fixture_crc: Option<u32>,
}

/// Policy for the golden-fixture orphan check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenPolicy {
    /// Directory of golden fixture files.
    pub fixtures: String,
    /// The test file expected to reference every fixture.
    pub test_file: String,
}

/// The whole committed policy.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Path prefixes (workspace-relative, `/`-separated) to skip entirely.
    pub exclude: Vec<String>,
    /// Crate directories whose non-test code must be panic-free.
    pub panic_crates: Vec<String>,
    /// Method/function names that block on I/O; calling one while holding a
    /// guard is flagged.
    pub blocking_calls: Vec<String>,
    /// Allowed (outer, inner) lock acquisition pairs, by lock field name.
    pub lock_order: Vec<(String, String)>,
    /// Method names banned inside hot-path functions (`push`, `clone`, …).
    pub hot_banned_methods: Vec<String>,
    /// Macro names banned inside hot-path functions (`format`, `vec`, …).
    pub hot_banned_macros: Vec<String>,
    /// Type names whose `::new` is banned inside hot-path functions.
    pub hot_banned_constructors: Vec<String>,
    /// The hot-path function registry.
    pub hot_functions: Vec<HotFunction>,
    /// Wire magic constants.
    pub wire_constants: Vec<WireConstant>,
    /// Versioned wire constants.
    pub wire_versions: Vec<WireVersion>,
    /// Golden-fixture orphan policy, if enabled.
    pub golden: Option<GoldenPolicy>,
}

/// A policy-file parse error: line number plus message.
#[derive(Debug)]
pub struct PolicyError {
    /// 1-based line in the policy file.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyError {}

/// One parsed TOML value (the subset the policy needs).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Str(String),
    Int(u64),
    Bool(bool),
    StrArray(Vec<String>),
}

impl Value {
    fn as_str(&self, line: u32, key: &str) -> Result<&str, PolicyError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(err(line, format!("`{key}` must be a string"))),
        }
    }

    fn as_int(&self, line: u32, key: &str) -> Result<u64, PolicyError> {
        match self {
            Value::Int(v) => Ok(*v),
            _ => Err(err(line, format!("`{key}` must be an integer"))),
        }
    }

    fn as_str_array(&self, line: u32, key: &str) -> Result<Vec<String>, PolicyError> {
        match self {
            Value::StrArray(v) => Ok(v.clone()),
            _ => Err(err(line, format!("`{key}` must be an array of strings"))),
        }
    }
}

fn err(line: u32, message: impl Into<String>) -> PolicyError {
    PolicyError { line, message: message.into() }
}

/// Parses the policy from `lint.toml` text.
///
/// # Errors
/// Returns a [`PolicyError`] on any line outside the supported subset, on
/// an unknown section or key, or on a structurally incomplete entry (e.g.
/// a `[[hot_path.function]]` without a `name`).
pub fn parse_policy(text: &str) -> Result<Policy, PolicyError> {
    let mut policy = Policy::default();
    // Current section and, for array-of-table sections, the pending entry's
    // key/value pairs (flushed when the next header starts or at EOF).
    let mut section = String::new();
    let mut entry: Vec<(u32, String, Value)> = Vec::new();
    let mut entry_line = 0u32;

    let flush = |policy: &mut Policy,
                 section: &str,
                 entry: &mut Vec<(u32, String, Value)>,
                 entry_line: u32|
     -> Result<(), PolicyError> {
        if entry.is_empty()
            && !matches!(
                section,
                "lock.order" | "hot_path.function" | "wire.constant" | "wire.version"
            )
        {
            return Ok(());
        }
        let take = |entry: &[(u32, String, Value)], key: &str| -> Option<(u32, Value)> {
            entry.iter().find(|(_, k, _)| k == key).map(|(l, _, v)| (*l, v.clone()))
        };
        let require = |entry: &[(u32, String, Value)],
                       key: &str|
         -> Result<(u32, Value), PolicyError> {
            take(entry, key)
                .ok_or_else(|| err(entry_line, format!("[[{section}]] entry is missing `{key}`")))
        };
        match section {
            "lock.order" => {
                let (l1, outer) = require(entry, "outer")?;
                let (l2, inner) = require(entry, "inner")?;
                policy.lock_order.push((
                    outer.as_str(l1, "outer")?.to_string(),
                    inner.as_str(l2, "inner")?.to_string(),
                ));
            }
            "hot_path.function" => {
                let (l1, file) = require(entry, "file")?;
                let (l2, name) = require(entry, "name")?;
                policy.hot_functions.push(HotFunction {
                    file: file.as_str(l1, "file")?.to_string(),
                    name: name.as_str(l2, "name")?.to_string(),
                });
            }
            "wire.constant" => {
                let (l1, name) = require(entry, "name")?;
                let (l2, literal) = require(entry, "literal")?;
                let (l3, file) = require(entry, "file")?;
                policy.wire_constants.push(WireConstant {
                    name: name.as_str(l1, "name")?.to_string(),
                    literal: literal.as_str(l2, "literal")?.to_string(),
                    file: file.as_str(l3, "file")?.to_string(),
                });
            }
            "wire.version" => {
                let (l1, name) = require(entry, "name")?;
                let (l2, file) = require(entry, "file")?;
                let (l3, value) = require(entry, "value")?;
                let fixtures = match take(entry, "fixtures") {
                    Some((l, v)) => Some(v.as_str(l, "fixtures")?.to_string()),
                    None => None,
                };
                let fixture_crc = match take(entry, "fixture_crc") {
                    Some((l, v)) => Some(
                        u32::try_from(v.as_int(l, "fixture_crc")?)
                            .map_err(|_| err(l, "`fixture_crc` does not fit in 32 bits"))?,
                    ),
                    None => None,
                };
                if fixtures.is_some() != fixture_crc.is_some() {
                    return Err(err(
                        entry_line,
                        "`fixtures` and `fixture_crc` must be declared together",
                    ));
                }
                policy.wire_versions.push(WireVersion {
                    name: name.as_str(l1, "name")?.to_string(),
                    file: file.as_str(l2, "file")?.to_string(),
                    value: value.as_int(l3, "value")?,
                    fixtures,
                    fixture_crc,
                });
            }
            _ => {}
        }
        entry.clear();
        Ok(())
    };

    for (idx, raw) in text.lines().enumerate() {
        let line = idx as u32 + 1;
        let trimmed = strip_comment(raw).trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix("[[") {
            let name = header
                .strip_suffix("]]")
                .ok_or_else(|| err(line, "malformed `[[…]]` header"))?
                .trim();
            flush(&mut policy, &section, &mut entry, entry_line)?;
            match name {
                "lock.order" | "hot_path.function" | "wire.constant" | "wire.version" => {}
                _ => return Err(err(line, format!("unknown section `[[{name}]]`"))),
            }
            section = name.to_string();
            entry_line = line;
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('[') {
            let name =
                header.strip_suffix(']').ok_or_else(|| err(line, "malformed `[…]` header"))?.trim();
            flush(&mut policy, &section, &mut entry, entry_line)?;
            match name {
                "scan" | "panic" | "lock" | "hot_path" | "golden" => {}
                _ => return Err(err(line, format!("unknown section `[{name}]`"))),
            }
            section = name.to_string();
            continue;
        }
        let (key, value_text) =
            trimmed.split_once('=').ok_or_else(|| err(line, "expected `key = value`"))?;
        let key = key.trim();
        let value = parse_value(value_text.trim(), line)?;
        match section.as_str() {
            "scan" => match key {
                "exclude" => policy.exclude = value.as_str_array(line, key)?,
                _ => return Err(err(line, format!("unknown key `{key}` in [scan]"))),
            },
            "panic" => match key {
                "crates" => policy.panic_crates = value.as_str_array(line, key)?,
                _ => return Err(err(line, format!("unknown key `{key}` in [panic]"))),
            },
            "lock" => match key {
                "blocking" => policy.blocking_calls = value.as_str_array(line, key)?,
                _ => return Err(err(line, format!("unknown key `{key}` in [lock]"))),
            },
            "hot_path" => match key {
                "banned_methods" => policy.hot_banned_methods = value.as_str_array(line, key)?,
                "banned_macros" => policy.hot_banned_macros = value.as_str_array(line, key)?,
                "banned_constructors" => {
                    policy.hot_banned_constructors = value.as_str_array(line, key)?
                }
                _ => return Err(err(line, format!("unknown key `{key}` in [hot_path]"))),
            },
            "golden" => {
                let golden = policy.golden.get_or_insert(GoldenPolicy {
                    fixtures: String::new(),
                    test_file: String::new(),
                });
                match key {
                    "fixtures" => golden.fixtures = value.as_str(line, key)?.to_string(),
                    "test_file" => golden.test_file = value.as_str(line, key)?.to_string(),
                    _ => return Err(err(line, format!("unknown key `{key}` in [golden]"))),
                }
            }
            "lock.order" | "hot_path.function" | "wire.constant" | "wire.version" => {
                entry.push((line, key.to_string(), value));
            }
            "" => return Err(err(line, "key/value pair before any section header")),
            other => return Err(err(line, format!("unexpected key in [{other}]"))),
        }
    }
    flush(&mut policy, &section, &mut entry, entry_line)?;
    if let Some(golden) = &policy.golden {
        if golden.fixtures.is_empty() || golden.test_file.is_empty() {
            return Err(err(0, "[golden] needs both `fixtures` and `test_file`"));
        }
    }
    Ok(policy)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_value(text: &str, line: u32) -> Result<Value, PolicyError> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or_else(|| err(line, "unterminated array"))?;
        let mut items = Vec::new();
        for part in split_array(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, line)? {
                Value::Str(s) => items.push(s),
                _ => return Err(err(line, "arrays may only contain strings")),
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body.strip_suffix('"').ok_or_else(|| err(line, "unterminated string"))?;
        if body.contains('\\') {
            return Err(err(line, "escape sequences in strings are not supported"));
        }
        return Ok(Value::Str(body.to_string()));
    }
    let parsed = if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(&hex.replace('_', ""), 16)
    } else {
        text.replace('_', "").parse::<u64>()
    };
    parsed.map(Value::Int).map_err(|_| err(line, format!("cannot parse value `{text}`")))
}

/// Splits a single-line array body on commas outside quotes.
fn split_array(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let bytes = body.as_bytes();
    let mut start = 0;
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b',' if !in_str => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r##"
# comment
[scan]
exclude = ["crates/lint/tests/corpus"]

[panic]
crates = ["crates/earthqube", "crates/wire"]  # trailing comment

[lock]
blocking = ["sync_all", "write_all"]

[[lock.order]]
outer = "catalog"
inner = "wal"

[hot_path]
banned_methods = ["push", "clone"]
banned_macros = ["format"]
banned_constructors = ["Vec", "Box"]

[[hot_path.function]]
file = "crates/hashindex/src/arena.rs"
name = "distance"

[[wire.constant]]
name = "REQUEST_MAGIC"
literal = "EQRQ"
file = "crates/proto/src/lib.rs"

[[wire.version]]
name = "PROTOCOL_VERSION"
file = "crates/proto/src/lib.rs"
value = 1
fixtures = "crates/proto/tests/golden"
fixture_crc = 0xDEAD_BEEF

[golden]
fixtures = "crates/proto/tests/golden"
test_file = "crates/proto/tests/golden_bytes.rs"
"##;

    #[test]
    fn parses_the_full_schema() {
        let p = parse_policy(SAMPLE).unwrap();
        assert_eq!(p.exclude, vec!["crates/lint/tests/corpus"]);
        assert_eq!(p.panic_crates, vec!["crates/earthqube", "crates/wire"]);
        assert_eq!(p.blocking_calls, vec!["sync_all", "write_all"]);
        assert_eq!(p.lock_order, vec![("catalog".to_string(), "wal".to_string())]);
        assert_eq!(p.hot_banned_methods, vec!["push", "clone"]);
        assert_eq!(p.hot_functions.len(), 1);
        assert_eq!(p.hot_functions[0].name, "distance");
        assert_eq!(p.wire_constants[0].literal, "EQRQ");
        let v = &p.wire_versions[0];
        assert_eq!((v.value, v.fixture_crc), (1, Some(0xDEAD_BEEF)));
        assert_eq!(p.golden.as_ref().unwrap().test_file, "crates/proto/tests/golden_bytes.rs");
    }

    #[test]
    fn unknown_sections_and_keys_are_hard_errors() {
        assert!(parse_policy("[typo]\n").is_err());
        assert!(parse_policy("[[typo.section]]\n").is_err());
        assert!(parse_policy("[scan]\nexclud = []\n").is_err());
        assert!(parse_policy("key = 1\n").is_err());
    }

    #[test]
    fn incomplete_entries_are_hard_errors() {
        assert!(parse_policy("[[lock.order]]\nouter = \"a\"\n").is_err());
        assert!(parse_policy(
            "[[wire.version]]\nname = \"V\"\nfile = \"f\"\nvalue = 1\nfixtures = \"d\"\n"
        )
        .is_err());
    }

    #[test]
    fn value_grammar_errors_carry_line_numbers() {
        let e = parse_policy("[scan]\nexclude = [\"a\", 3]\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse_policy("[panic]\ncrates = \"unterminated\n").is_err());
        assert!(parse_policy("[lock]\nblocking = [\"open\n").is_err());
    }
}
