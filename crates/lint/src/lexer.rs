//! A comment/string/char-literal-aware Rust lexer.
//!
//! The rule engine does not need a parser — every serving-tier invariant it
//! enforces is visible in the token stream — but it absolutely needs to
//! know that `"unwrap("` inside a string literal, `.unwrap()` inside a doc
//! comment, and `'{'` inside a char literal are *not* code.  This module
//! provides exactly that: a total, panic-free tokenizer that classifies
//! every byte of a source file into identifiers, literals, comments and
//! punctuation, with 1-based line numbers.
//!
//! Totality is load-bearing: the lexer runs over every `.rs` file in the
//! tree including hostile or half-written ones, so *any* byte sequence must
//! lex to completion (unterminated strings and comments simply run to end
//! of file).  The property suite in `tests/proptest_lint.rs` pins this.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `Vec`, …).
    Ident,
    /// A numeric literal (integers and floats, any radix, suffixes kept).
    Number,
    /// A string literal, including raw strings (`"…"`, `r#"…"#`).
    Str,
    /// A byte-string literal (`b"…"`, `br#"…"#`).
    ByteStr,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`) — *not* a char literal.
    Lifetime,
    /// A `// …` comment (doc comments included), newline excluded.
    LineComment,
    /// A `/* … */` comment, nesting handled.
    BlockComment,
    /// Any other single character (braces, dots, operators, …).
    Punct,
}

/// One token: its kind, its exact source text, and the 1-based line its
/// first byte sits on.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// The token class.
    pub kind: TokenKind,
    /// The exact source slice, prefixes and quotes included.
    pub text: &'a str,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token<'_> {
    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `source` completely.  Never panics, never loses bytes:
/// concatenating the text of all tokens (plus the skipped whitespace)
/// reproduces the input.
pub fn lex(source: &str) -> Vec<Token<'_>> {
    Lexer { src: source.as_bytes(), source, pos: 0, line: 1 }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    source: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut tokens = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            // Defensive: every branch must advance; if one ever fails to,
            // emit the byte as punctuation rather than looping forever.
            if self.pos == start {
                self.advance(1);
            }
            if let Some(text) = self.source.get(start..self.pos) {
                if !text.trim().is_empty() {
                    tokens.push(Token { kind, text, line });
                }
            }
        }
        tokens
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advances `n` bytes, counting newlines.
    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.src.len() {
                if self.src[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let c = self.peek(0);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                self.advance(1);
                TokenKind::Punct // whitespace; dropped by `run`
            }
            b'/' if self.peek(1) == b'/' => self.line_comment(),
            b'/' if self.peek(1) == b'*' => self.block_comment(),
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b'r' if self.raw_string_ahead(1) => {
                self.advance(1);
                self.raw_string();
                TokenKind::Str
            }
            b'b' if self.peek(1) == b'"' => {
                self.advance(1);
                self.string();
                TokenKind::ByteStr
            }
            b'b' if self.peek(1) == b'\'' => {
                self.advance(1);
                self.char_literal();
                TokenKind::Char
            }
            b'b' if self.peek(1) == b'r' && self.raw_string_ahead(2) => {
                self.advance(2);
                self.raw_string();
                TokenKind::ByteStr
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
            _ if c.is_ascii_digit() => self.number(),
            _ => {
                self.advance(utf8_len(c));
                TokenKind::Punct
            }
        }
    }

    /// Whether `r`/`br` at the current position starts a raw string: zero
    /// or more `#` followed by a quote.
    fn raw_string_ahead(&self, mut at: usize) -> bool {
        while self.peek(at) == b'#' {
            at += 1;
        }
        self.peek(at) == b'"'
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.advance(1);
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.advance(2);
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.advance(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.advance(2);
            } else {
                self.advance(1);
            }
        }
        TokenKind::BlockComment
    }

    /// A `"…"` string starting at the opening quote (any `b` prefix already
    /// consumed).  The kind is decided by the caller.
    fn string(&mut self) -> TokenKind {
        self.advance(1);
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.advance(2),
                b'"' => {
                    self.advance(1);
                    break;
                }
                _ => self.advance(1),
            }
        }
        TokenKind::Str
    }

    /// A raw string starting at the `#`s/quote (prefix letters consumed):
    /// counts the `#`s, then runs to the matching `"###…`.
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.advance(1);
        }
        self.advance(1); // opening quote
        while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                let mut matched = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        matched = false;
                        break;
                    }
                }
                if matched {
                    self.advance(1 + hashes);
                    return;
                }
            }
            self.advance(1);
        }
    }

    /// Distinguishes `'a` (lifetime) from `'x'` / `'\n'` (char literal):
    /// a quote followed by an identifier char is a lifetime unless the
    /// character after it closes the literal.
    fn char_or_lifetime(&mut self) -> TokenKind {
        let next = self.peek(1);
        if next == b'\\' {
            self.char_literal();
            return TokenKind::Char;
        }
        if (next == b'_' || next.is_ascii_alphanumeric()) && self.peek(2) != b'\'' {
            // Lifetime: consume the quote and the identifier.
            self.advance(2);
            while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
                self.advance(1);
            }
            return TokenKind::Lifetime;
        }
        self.char_literal();
        TokenKind::Char
    }

    /// A char literal starting at the opening quote.
    fn char_literal(&mut self) {
        self.advance(1);
        // Bounded scan: a well-formed char literal closes within a few
        // bytes; on garbage, stop at the quote or after a short window so
        // an apostrophe in a comment-free token soup cannot swallow the
        // rest of the file.
        let mut budget = 12usize;
        while self.pos < self.src.len() && budget > 0 {
            match self.peek(0) {
                b'\\' => self.advance(2),
                b'\'' => {
                    self.advance(1);
                    return;
                }
                b'\n' => return,
                _ => self.advance(utf8_len(self.peek(0))),
            }
            budget -= 1;
        }
    }

    fn ident(&mut self) -> TokenKind {
        while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
            self.advance(1);
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        // Loose by design: digits, radix prefixes, underscores, suffixes
        // and a fractional part all glob into one token.  The rules only
        // ever compare numeric tokens after parsing them properly.
        while self.peek(0) == b'_'
            || self.peek(0) == b'.' && self.peek(1).is_ascii_digit()
            || self.peek(0).is_ascii_alphanumeric()
        {
            if self.peek(0) == b'.' {
                self.advance(1);
            }
            self.advance(1);
        }
        TokenKind::Number
    }
}

/// Length in bytes of the UTF-8 sequence starting with `first` (1 for
/// ASCII and for malformed leads, so the lexer always advances).
fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

/// The unquoted content of a string/byte-string literal token: strips the
/// `b`/`r` prefixes, `#` guards and quotes.  Returns an empty string for
/// malformed literals rather than panicking.
pub fn literal_content(text: &str) -> &str {
    let open = match text.find('"') {
        Some(i) => i,
        None => return "",
    };
    let hashes = text[..open].chars().filter(|&c| c == '#').count();
    let body_start = open + 1;
    let body_end = text.len().saturating_sub(1 + hashes);
    if body_end <= body_start {
        return "";
    }
    text.get(body_start..body_end).unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let toks = kinds("let x = 42 + 0xFF_u32;");
        assert_eq!(toks[0], (TokenKind::Ident, "let"));
        assert_eq!(toks[1], (TokenKind::Ident, "x"));
        assert_eq!(toks[2], (TokenKind::Punct, "="));
        assert_eq!(toks[3], (TokenKind::Number, "42"));
        assert_eq!(toks[5], (TokenKind::Number, "0xFF_u32"));
    }

    #[test]
    fn strings_hide_code_like_content() {
        let toks = kinds(r#"let s = "call .unwrap() here";"#);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks =
            kinds(r####"let a = r#"raw "quoted" text"#; let b = b"bytes"; let c = br##"x"##;"####);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t.starts_with("r#")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::ByteStr && t.starts_with("b\"")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::ByteStr && t.starts_with("br")));
    }

    #[test]
    fn comments_are_classified_not_dropped() {
        let toks = kinds("code(); // trailing .unwrap()\n/* block\nspanning */ more();");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::LineComment && t.contains("unwrap")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::BlockComment && t.contains("spanning")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "more"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<(u32, &str)> = toks.iter().map(|t| (t.line, t.text)).collect();
        assert_eq!(lines, vec![(1, "a"), (2, "b"), (4, "c")]);
    }

    #[test]
    fn unterminated_literals_run_to_eof_without_panicking() {
        for src in ["\"never closed", "r#\"also open", "/* open block", "'", "b\"x"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?} must still lex");
        }
    }

    #[test]
    fn literal_content_strips_quotes_and_prefixes() {
        assert_eq!(literal_content("\"EQRQ\""), "EQRQ");
        assert_eq!(literal_content("b\"EQSNAP01\""), "EQSNAP01");
        assert_eq!(literal_content("r#\"raw\"#"), "raw");
        assert_eq!(literal_content("br##\"x\"##"), "x");
        assert_eq!(literal_content("\""), "");
        assert_eq!(literal_content("no quotes"), "");
    }
}
