//! Corpus: the `wire` rule's violation side.  Never compiled — lexed by
//! eq_lint only.

pub fn violation_retyped_literal(buf: &mut Vec<u8>) {
    buf.extend_from_slice(b"CMAG");
}

pub fn referencing_the_const_is_fine(buf: &mut Vec<u8>) {
    buf.extend_from_slice(&CORPUS_MAGIC);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_retype_the_literal() {
        assert_eq!(&CORPUS_MAGIC, b"CMAG");
    }
}
