//! Corpus: the `lock` rule.  Never compiled — lexed by eq_lint only.

pub fn violation_unordered_pair(alpha: &Lock, gamma: &Lock) {
    let _a = alpha.lock();
    let _g = gamma.lock();
}

pub fn violation_blocking_under_guard(alpha: &Lock, file: &File) {
    let _a = alpha.lock();
    file.sync_all();
}

pub fn violation_self_deadlock(alpha: &Lock) {
    let _first = alpha.lock();
    let _second = alpha.lock();
}

pub fn allowed_blocking(alpha: &Lock, file: &File) {
    let _a = alpha.lock();
    // lint:allow(lock) corpus: durability inside this critical section is the design
    file.sync_all();
}

pub fn declared_pair_is_fine(alpha: &Lock, beta: &Lock) {
    let _a = alpha.lock();
    let _b = beta.lock();
}

pub fn false_positive_guards(alpha: &Lock, gamma: &Lock, file: &File) {
    // A chained temporary is not a held guard.
    let popped = alpha.lock().pop();
    let _g = gamma.lock();
    drop(_g);
    // Guard released at block close, then a fresh acquisition.
    {
        let _scoped = alpha.lock();
    }
    let _g2 = gamma.lock();
    drop(_g2);
    // Blocking call with no guard held at all.
    file.sync_all();
    consume(popped);
}
