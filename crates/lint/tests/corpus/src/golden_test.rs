//! Corpus: the conformance test the `golden` rule reads.  Never compiled —
//! lexed by eq_lint only.  `golden/blessed.bin` is referenced (clean),
//! `golden/orphan.bin` is not (orphan violation), and `missing_fixture`
//! names no file on disk (missing-fixture violation).

fn conformance() {
    check("blessed", &[]);
    check("missing_fixture", &[]);
}
