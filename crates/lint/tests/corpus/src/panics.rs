//! Corpus: the `panic` rule.  Never compiled — lexed by eq_lint only.

pub fn violation_method(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn violation_macro() -> u32 {
    todo!("still a panic site")
}

pub fn allowed(x: Option<u32>) -> u32 {
    // lint:allow(panic) corpus: provably present, see the guard two lines up
    x.expect("always present")
}

pub fn unused_allow() -> u32 {
    // lint:allow(panic) corpus: deliberately suppresses nothing — must warn
    1 + 1
}

pub fn false_positive_guards(x: Option<u32>) -> u32 {
    let s = "calling unwrap() or panic!() inside a string literal is fine";
    // A comment mentioning x.unwrap() is fine too.
    x.unwrap_or(0) + s.len() as u32
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let y: Option<u32> = None;
        assert!(std::panic::catch_unwind(|| y.unwrap()).is_err());
        panic!("test context is exempt");
    }
}
