//! Corpus: the `hot-path` rule.  Never compiled — lexed by eq_lint only.

pub fn hot_violation(out: &mut Vec<u32>) {
    out.push(1);
    let v = Vec::new();
    let s = format!("{v:?}");
    consume(v, s);
}

pub fn hot_allowed(out: &mut Vec<u32>) {
    // lint:allow(hot-path) corpus: capacity reserved by the caller; amortised
    out.push(2);
}

pub fn hot_cold_guard(out: &mut Vec<u32>) {
    let fallback = #[cold]
    || {
        out.push(3);
        format!("cold error arm may allocate")
    };
    step(fallback);
    let banned_in_string = "never flag .push( or Vec::new in a literal";
    log(banned_in_string);
}

pub fn unregistered_fn_may_allocate(out: &mut Vec<u32>) {
    out.push(4);
    let _v: Vec<u32> = things().collect();
}
