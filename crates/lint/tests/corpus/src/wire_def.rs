//! Corpus: authoritative wire-constant definitions (the clean side of the
//! `wire` rule).  Never compiled — lexed by eq_lint only.

/// The corpus request magic; the definition-site literal is exempt.
pub const CORPUS_MAGIC: [u8; 4] = *b"CMAG";

/// The corpus protocol version, matched against lint.toml.
pub const CORPUS_VERSION: u16 = 1;
