//! Property suite for the lint front end.  The lexer is *total*: any byte
//! soup — unterminated strings, nested comment openers, stray quotes,
//! raw-string guards with no body — must lex to completion without
//! panicking, always making progress, and never inventing text that is
//! not in the source.  The allow-annotation parser must round-trip any
//! well-formed annotation it could be asked to read.

use eq_lint::lexer::{lex, TokenKind};
use eq_lint::{build_ctx, Sink, RULES};
use proptest::prelude::*;

/// Fragments chosen to collide with every lexer mode: string/char/raw/byte
/// literal openers and closers, comment openers with no closer, lifetimes,
/// multi-byte UTF-8, and innocuous code.
const FRAGMENTS: &[&str] = &[
    "\"",
    "'",
    "`",
    "\\",
    "\\\"",
    "r#\"",
    "\"#",
    "r##",
    "b\"",
    "br#\"",
    "b'",
    "//",
    "/*",
    "*/",
    "/**/",
    "'a",
    "'\\''",
    "ident",
    "fn main() {",
    "}",
    "\n",
    "\r\n",
    "0x1_f",
    "1.5e9",
    "…",
    "émoji",
    "#[cfg(test)]",
    "lint:allow",
    "// lint:allow(panic) r",
    ";",
    "::",
    "<<=",
    "\u{0}",
];

fn arb_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<usize>(), 0..60)
        .prop_map(|picks| picks.into_iter().map(|i| FRAGMENTS[i % FRAGMENTS.len()]).collect())
}

fn arb_annotation() -> impl Strategy<Value = (Vec<&'static str>, String)> {
    (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(mask, extra, word)| {
        let mask = mask % (1 << RULES.len());
        let rules: Vec<&'static str> = RULES
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0 || mask == 0 && *i == 0)
            .map(|(_, r)| *r)
            .collect();
        let words = ["amortised", "infallible", "checked above", "by design", "see docs"];
        let reason = format!("{} #{}", words[word % words.len()], extra % 100);
        (rules, reason)
    })
}

proptest! {
    /// Lexing arbitrary token soup terminates, never panics, and every
    /// token is a faithful slice of the input in source order.
    #[test]
    fn lexer_is_total_over_token_soup(source in arb_soup()) {
        let tokens = lex(&source);
        let mut cursor = 0usize;
        let mut last_line = 1u32;
        for tok in &tokens {
            let found = source[cursor..].find(tok.text);
            prop_assert!(found.is_some(), "token {:?} not found after byte {}", tok.text, cursor);
            prop_assert!(!tok.text.is_empty(), "empty token");
            prop_assert!(tok.line >= last_line, "line numbers regressed");
            cursor += found.unwrap_or(0) + tok.text.len();
            last_line = tok.line;
        }
        // And the whole front end (test-region marking, allow parsing)
        // is just as total.
        let mut sink = Sink::default();
        let ctx = build_ctx("crates/x/src/lib.rs", &source, &mut sink);
        prop_assert_eq!(ctx.code.len(), ctx.in_test.len());
    }

    /// A well-formed annotation formats, lexes and parses back to exactly
    /// its rule list and reason, bound to the following code line.
    #[test]
    fn allow_annotations_roundtrip(pair in arb_annotation()) {
        let (rules, reason) = pair;
        let source = format!("// lint:allow({}) {}\nfn next_line() {{}}\n", rules.join(", "), reason);
        let mut sink = Sink::default();
        let ctx = build_ctx("crates/x/src/lib.rs", &source, &mut sink);
        prop_assert!(sink.report.violations.is_empty(), "{:?}", sink.report.violations);
        prop_assert_eq!(ctx.allows.len(), 1);
        let allow = &ctx.allows[0];
        prop_assert_eq!(&allow.rules, &rules);
        prop_assert_eq!(&allow.reason, &reason);
        prop_assert_eq!(allow.applies_line, 2);
    }

    /// Classification stays stable under concatenation with comments: a
    /// line comment swallows any soup to end of line without panicking.
    #[test]
    fn comments_swallow_soup(soup in arb_soup()) {
        let one_line: String = soup.chars().filter(|&c| c != '\n' && c != '\r').collect();
        let source = format!("// {one_line}\nfn f() {{}}");
        let tokens = lex(&source);
        prop_assert!(tokens.iter().any(|t| t.kind == TokenKind::Ident && t.text == "fn"));
        prop_assert!(matches!(tokens.first().map(|t| t.kind), Some(TokenKind::LineComment)));
    }
}
