//! End-to-end run of the lint engine over the committed corpus tree
//! (`tests/corpus/`), a miniature workspace whose policy and sources
//! contain, per rule family, one deliberate violation, one annotated
//! (allowed) site and one false-positive guard.  These tests pin the
//! *exact* finding set: a rule that stops firing, fires twice, or starts
//! flagging the guard sites breaks the corpus before it breaks the real
//! workspace.

use std::path::Path;

use eq_lint::LintReport;

fn corpus_report() -> LintReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    eq_lint::run_workspace(&root).expect("corpus tree lints without I/O or policy errors")
}

/// (rule, file, line, message fragment) for every expected violation.
const EXPECTED: &[(&str, &str, u32, &str)] = &[
    ("panic", "src/panics.rs", 4, "unwrap"),
    ("panic", "src/panics.rs", 8, "todo"),
    ("lock", "src/locks.rs", 5, "(alpha, gamma) is not in the lock-order table"),
    ("lock", "src/locks.rs", 10, "sync_all"),
    ("lock", "src/locks.rs", 15, "self-deadlock"),
    ("hot-path", "src/hot.rs", 4, ".push()"),
    ("hot-path", "src/hot.rs", 5, "Vec::new"),
    ("hot-path", "src/hot.rs", 6, "format!"),
    ("wire", "src/wire_use.rs", 5, "re-typed"),
    ("golden", "golden/orphan.bin", 0, "orphan"),
    ("golden", "src/golden_test.rs", 8, "missing_fixture"),
];

#[test]
fn every_rule_family_fires_exactly_on_the_planted_violations() {
    let report = corpus_report();
    for &(rule, file, line, fragment) in EXPECTED {
        assert!(
            report.violations.iter().any(|d| d.rule == rule
                && d.file == file
                && d.line == line
                && d.message.contains(fragment)),
            "missing expected violation {rule} at {file}:{line} ({fragment:?});\ngot: {:#?}",
            report.violations
        );
    }
    assert_eq!(
        report.violations.len(),
        EXPECTED.len(),
        "unexpected extra violations (false positive on a guard site?): {:#?}",
        report.violations
    );
}

#[test]
fn annotated_sites_are_silent_and_recorded_in_the_summary() {
    let report = corpus_report();
    // The allowed sites (panics.rs expect, locks.rs sync_all, hot.rs push)
    // produce no violations…
    for (file, line) in [("src/panics.rs", 13), ("src/locks.rs", 21), ("src/hot.rs", 12)] {
        assert!(
            !report.violations.iter().any(|d| d.file == file && d.line == line),
            "annotated site {file}:{line} was flagged anyway"
        );
    }
    // …and every annotation (including the deliberately unused one) is in
    // the allow summary with its reason.
    assert_eq!(report.allows.len(), 4, "{:#?}", report.allows);
    assert!(report.allows.iter().all(|a| a.reason.contains("corpus")));
}

#[test]
fn unused_allow_and_stale_registry_entry_are_warnings() {
    let report = corpus_report();
    assert_eq!(report.warnings.len(), 2, "{:#?}", report.warnings);
    assert!(report
        .warnings
        .iter()
        .any(|w| w.file == "src/panics.rs" && w.message.contains("suppresses nothing")));
    assert!(report
        .warnings
        .iter()
        .any(|w| w.file == "src/hot.rs" && w.message.contains("hot_missing")));
    // Warnings gate only under --deny-warnings semantics.
    assert!(!report.is_clean(false) && !report.is_clean(true), "corpus has violations");
}

#[test]
fn report_renders_file_line_rule_diagnostics() {
    let report = corpus_report();
    let rendered = report.render();
    assert!(rendered.contains("error: src/panics.rs:4:panic:"), "{rendered}");
    assert!(rendered.contains("x.unwrap()"), "snippet missing:\n{rendered}");
    assert!(rendered.contains("allow annotation(s) in force"), "{rendered}");
}
