//! # AgoraEO / EarthQube — satellite image search (VLDB 2022 reproduction)
//!
//! This umbrella crate re-exports the workspace crates that together
//! reproduce *"Satellite Image Search in AgoraEO"* (Aksoy et al., PVLDB
//! 15(12), 2022):
//!
//! * [`bigearthnet`] — synthetic BigEarthNet-MM archive substrate,
//! * [`milan`] — the MiLaN metric-learning deep-hashing model,
//! * [`hashindex`] — Hamming hash-table index and search baselines,
//! * [`docstore`] — embedded document store (MongoDB substitute),
//! * [`earthqube`] — the EarthQube back-end (query panel, CBIR, statistics),
//! * [`agora`] — the AgoraEO asset registry,
//! * [`proto`] — the binary RPC protocol of the network serving tier,
//! * [`geo`], [`neural`], [`wire`] — supporting substrates.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![warn(missing_docs)]

pub use eq_agora as agora;
pub use eq_bigearthnet as bigearthnet;
pub use eq_docstore as docstore;
pub use eq_earthqube as earthqube;
pub use eq_geo as geo;
pub use eq_hashindex as hashindex;
pub use eq_milan as milan;
pub use eq_neural as neural;
pub use eq_proto as proto;
pub use eq_wire as wire;
