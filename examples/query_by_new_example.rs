//! Demo scenario "Query-by-New-Example" (§4): newly collected Sentinel
//! images have no land-cover labels yet; upload such an image, let MiLaN
//! produce its binary code on the fly, retrieve semantically similar
//! archive images, and sketch the automatic labelling process the paper
//! suggests ("based on the semantic search results, one could design an
//! automatic labeling process").
//!
//! Run with: `cargo run --release --example query_by_new_example`

use agoraeo::bigearthnet::{ArchiveGenerator, GeneratorConfig, Label};
use agoraeo::earthqube::{EarthQube, EarthQubeConfig};

fn main() {
    let archive =
        ArchiveGenerator::new(GeneratorConfig { num_patches: 700, seed: 44, ..Default::default() })
            .expect("valid generator configuration")
            .generate();
    let mut config = EarthQubeConfig::fast(44);
    config.milan.epochs = 25;
    let eq = EarthQube::build(&archive, config).expect("back-end builds");

    // A freshly acquired, unlabeled patch: generated with a different seed,
    // so it is not part of the archive.  Its "true" labels are known to the
    // generator, which lets us check the auto-labelling proposal below.
    let external =
        ArchiveGenerator::new(GeneratorConfig { num_patches: 1, seed: 4242, ..Default::default() })
            .expect("valid generator configuration")
            .generate_patch(0);
    println!("Uploaded external image {} (labels withheld)", external.meta.name);

    let k = 15;
    let response = eq.search_by_new_example(&external, k).expect("CBIR query");
    println!("\n=== Most similar archive images ===");
    println!("{}", response.panel.render_page(0));
    println!("{}", response.statistics.render_bar_chart(10, 30));

    // Automatic labelling sketch: propose every label that occurs in at
    // least 40 % of the retrieved neighbours.
    let threshold = (response.total() as f64 * 0.4).ceil() as usize;
    let proposed: Vec<Label> = response
        .statistics
        .ranked()
        .into_iter()
        .filter(|(_, count)| *count >= threshold)
        .map(|(label, _)| label)
        .collect();
    println!("Proposed labels (≥40% of neighbours): ");
    for label in &proposed {
        println!("  - {label}");
    }

    // Compare the proposal with the withheld ground truth.
    let truth: Vec<Label> = external.meta.labels.iter().collect();
    println!("\nWithheld ground-truth labels:");
    for label in &truth {
        println!("  - {label}");
    }
    let hits = proposed.iter().filter(|l| external.meta.labels.contains(**l)).count();
    println!(
        "\n{} of the {} proposed labels are correct ({} ground-truth labels in total)",
        hits,
        proposed.len(),
        truth.len()
    );
}
