//! Remote serving demo: put the `QueryServer` behind the `eq_proto` TCP
//! tier, drive it with blocking clients over loopback — one-shot calls,
//! a pipelined batch, a live remote ingest — and shut down gracefully.
//!
//! Run with: `cargo run --release --example remote_serving`

use std::sync::Arc;

use agoraeo::bigearthnet::{ArchiveGenerator, GeneratorConfig};
use agoraeo::earthqube::net::{EqClient, NetServer};
use agoraeo::earthqube::{EarthQubeConfig, ImageQuery, QueryRequest, QueryServer, ServeConfig};

fn main() {
    // 1. Build the query server and put it on the wire (ephemeral port).
    let archive =
        ArchiveGenerator::new(GeneratorConfig { num_patches: 300, seed: 31, ..Default::default() })
            .expect("valid generator configuration")
            .generate();
    let mut config = EarthQubeConfig::fast(31);
    config.milan.epochs = 12;
    let server =
        Arc::new(QueryServer::build(&archive, config, ServeConfig::default()).expect("builds"));
    let net = NetServer::bind(Arc::clone(&server), "127.0.0.1:0", 4).expect("binds");
    println!(
        "NetServer listening on {} ({} images, 4 workers)",
        net.local_addr(),
        server.archive_size()
    );

    // 2. One-shot calls over a reused connection.
    let mut client = EqClient::connect(net.local_addr()).expect("connects");
    client.ping().expect("pong");
    let all = client.search(&ImageQuery::all()).expect("search");
    println!("remote search: {} images match the empty query", all.total());
    let name = &archive.patches()[0].meta.name;
    let similar = client.similar_to(name, 8).expect("similar_to");
    println!("remote similar_to({name}): {} neighbours", similar.total());

    // 3. Remote equivalence: the wire adds nothing and loses nothing.
    assert_eq!(all, server.search(&ImageQuery::all()).expect("local search"));
    assert_eq!(similar, server.similar_to(name, 8).expect("local similar_to"));
    println!("remote responses are byte-identical to in-process calls");

    // 4. A pipelined batch: N requests, one round trip.
    let requests: Vec<QueryRequest> = archive
        .patches()
        .iter()
        .take(24)
        .map(|p| QueryRequest::SimilarTo { name: p.meta.name.clone(), k: 6 })
        .collect();
    let batched = client.run_batch(&requests).expect("batch");
    let answered = batched.iter().filter(|r| r.is_ok()).count();
    println!("pipelined batch: {answered}/{} requests answered", requests.len());

    // 5. Concurrent clients from several threads, while one ingests.
    let fresh = ArchiveGenerator::new(GeneratorConfig::tiny(6, 6060)).unwrap().generate();
    std::thread::scope(|scope| {
        let addr = net.local_addr();
        scope.spawn(move || {
            let mut writer = EqClient::connect(addr).expect("ingest client connects");
            let report = writer.ingest(fresh.patches()).expect("remote ingest");
            println!("remote ingest: {} patches appended", report.metadata_docs);
        });
        for _ in 0..2 {
            let requests = &requests;
            scope.spawn(move || {
                let mut reader = EqClient::connect(addr).expect("reader connects");
                let results = reader.run_batch(requests).expect("reader batch");
                assert!(results.iter().all(Result::is_ok));
            });
        }
    });

    // 6. Server-side stats over the wire, then graceful shutdown.
    let stats = client.stats().expect("stats");
    print!("{}", stats.render());
    assert_eq!(stats.archive_size, 306);
    net.shutdown();
    assert!(client.ping().is_err(), "the connection observed the shutdown");
    println!("NetServer shut down cleanly");
}
