//! Concurrent serving demo: wrap the EarthQube back-end in a `QueryServer`,
//! fan a mixed query workload over worker threads while ingesting new
//! patches on the write path, and print the serving statistics.
//!
//! Run with: `cargo run --release --example concurrent_serving`

use agoraeo::bigearthnet::{ArchiveGenerator, Country, GeneratorConfig, Label};
use agoraeo::earthqube::{
    EarthQubeConfig, ImageQuery, LabelFilter, LabelOperator, QueryRequest, QueryServer, ServeConfig,
};
use agoraeo::geo::GeoShape;

fn main() {
    // 1. Build the server over a synthetic archive (engine + sharded index).
    let archive =
        ArchiveGenerator::new(GeneratorConfig { num_patches: 400, seed: 21, ..Default::default() })
            .expect("valid generator configuration")
            .generate();
    let mut config = EarthQubeConfig::fast(21);
    config.milan.epochs = 15;
    let server =
        QueryServer::build(&archive, config, ServeConfig::default()).expect("server builds");
    println!(
        "QueryServer ready: {} images across {} index shards, cache capacity {}",
        server.archive_size(),
        server.serve_config().shards,
        server.serve_config().cache_capacity,
    );

    // 2. A mixed workload: CBIR queries, label searches, spatial searches.
    let mut requests = Vec::new();
    for (i, patch) in archive.patches().iter().enumerate().take(48) {
        requests.push(match i % 3 {
            0 => QueryRequest::SimilarTo { name: patch.meta.name.clone(), k: 10 },
            1 => QueryRequest::Metadata(ImageQuery::all().with_labels(LabelFilter::new(
                LabelOperator::Some,
                vec![Label::ALL[(i * 5) % Label::ALL.len()]],
            ))),
            _ => {
                QueryRequest::Metadata(ImageQuery::all().with_shape(GeoShape::Rect(
                    Country::ALL[i % Country::ALL.len()].bounding_box(),
                )))
            }
        });
    }

    // 3. Serve the workload on 4 workers while the write path ingests new
    //    patches — queries and ingest proceed concurrently.
    let fresh = ArchiveGenerator::new(GeneratorConfig::tiny(8, 4040)).unwrap().generate();
    std::thread::scope(|scope| {
        let ingest = scope.spawn(|| server.ingest(fresh.patches()).expect("ingest succeeds"));
        let results = server.run_workload(&requests, 4);
        let answered = results.iter().filter(|r| r.is_ok()).count();
        println!("Workload pass 1: {answered}/{} queries answered", requests.len());
        ingest.join().expect("ingest thread");
    });
    println!("Live-ingested {} patches during the workload", fresh.len());

    // 4. Repeat the workload: the LRU result cache now answers most of it.
    let results = server.run_workload(&requests, 4);
    let answered = results.iter().filter(|r| r.is_ok()).count();
    println!("Workload pass 2: {answered}/{} queries answered\n", requests.len());

    // 5. The serving statistics snapshot.
    println!("=== ServerStats ===");
    print!("{}", server.stats().render());
}
