//! Experiment E6 (printable form): ablation of the three MiLaN losses.
//!
//! The paper motivates each loss (§2.2): the triplet loss builds the
//! semantic metric space, the bit-balance loss makes every bit ~50 % active
//! and the bits independent, and the quantization loss keeps outputs near
//! ±1 so binarisation loses little.  This binary trains three model
//! variants and reports what each regulariser contributes.
//!
//! Run with: `cargo run --release --example loss_ablation`

use agoraeo::bigearthnet::ArchiveGenerator;
use agoraeo::bigearthnet::GeneratorConfig;
use agoraeo::milan::metrics::quantization_error;
use agoraeo::milan::{
    mean_average_precision, CodeStatistics, LossWeights, Milan, MilanConfig, TrainingDataset,
};

fn main() {
    let archive =
        ArchiveGenerator::new(GeneratorConfig { num_patches: 500, seed: 66, ..Default::default() })
            .expect("valid generator configuration")
            .generate();
    let dataset = TrainingDataset::from_archive(&archive);

    let variants: Vec<(&str, LossWeights)> = vec![
        ("triplet only", LossWeights::triplet_only(2.0)),
        (
            "+ bit balance",
            LossWeights { triplet: 1.0, bit_balance: 0.1, quantization: 0.0, margin: 2.0 },
        ),
        ("+ quantization (full MiLaN)", LossWeights::default()),
    ];

    println!(
        "{:<30} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "variant", "mAP@10", "bal.dev", "bit corr", "quant.err", "distinct"
    );
    for (name, weights) in variants {
        let mut model =
            Milan::new(MilanConfig { epochs: 35, loss: weights, ..MilanConfig::fast(64, 66) })
                .expect("valid model configuration");
        model.train(&dataset);

        let codes = model.hash_archive(&archive);
        let stats = CodeStatistics::from_codes(&codes);
        let continuous = model.encode_continuous(dataset.features());
        let q_err = quantization_error(&continuous);

        // Retrieval quality with a simple Hamming ranking.
        let mut queries = Vec::new();
        for q in (0..archive.len()).step_by(10) {
            let q_labels = archive.patches()[q].meta.labels;
            let mut ranked: Vec<(u32, usize)> = (0..archive.len())
                .filter(|i| *i != q)
                .map(|i| (codes[q].hamming_distance(&codes[i]), i))
                .collect();
            ranked.sort_unstable();
            let rel: Vec<bool> = ranked
                .iter()
                .map(|(_, i)| archive.patches()[*i].meta.labels.intersects(q_labels))
                .collect();
            let total = rel.iter().filter(|r| **r).count();
            queries.push((rel, total));
        }
        let map = mean_average_precision(&queries, 10);

        println!(
            "{:<30} {:>8.3} {:>12.3} {:>12.3} {:>12.3} {:>10}",
            name,
            map,
            stats.balance_deviation,
            stats.mean_bit_correlation,
            q_err,
            stats.distinct_codes
        );
    }

    println!(
        "\nExpected shape (paper / Roy et al. 2021): adding the bit-balance loss lowers the balance\n\
         deviation and bit correlation; adding the quantization loss lowers the quantization error;\n\
         retrieval quality stays comparable or improves as the codes become more informative."
    );
}
