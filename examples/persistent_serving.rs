//! Persistent serving demo: open a `QueryServer` on a persistence
//! directory, ingest live traffic into the write-ahead log, "crash", and
//! recover to the exact pre-crash state — then show the cold-start win of
//! loading the checkpoint instead of rebuilding from the archive, and how
//! little an incremental checkpoint writes compared to the first full one.
//!
//! Run with: `cargo run --release --example persistent_serving`

use std::time::Instant;

use agoraeo::bigearthnet::{ArchiveGenerator, GeneratorConfig};
use agoraeo::earthqube::{EarthQubeConfig, ImageQuery, QueryServer, ServeConfig};

fn main() {
    let dir = std::env::temp_dir().join(format!("eq_persistent_serving_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. First boot: `open` finds no manifest, builds the full back-end
    //    (ingest + MiLaN training + encoding) and checkpoints it.
    let archive =
        ArchiveGenerator::new(GeneratorConfig { num_patches: 400, seed: 33, ..Default::default() })
            .expect("valid generator configuration")
            .generate();
    let mut config = EarthQubeConfig::fast(33);
    config.milan.epochs = 15;
    let start = Instant::now();
    let server = QueryServer::open(&dir, &archive, config.clone(), ServeConfig::default())
        .expect("first open builds and checkpoints");
    let build_time = start.elapsed();
    println!(
        "cold boot (build + checkpoint): {} images in {:.2?}",
        server.archive_size(),
        build_time
    );

    // 2. Live traffic: every ingest and feedback submission is appended to
    //    the write-ahead log inside the ingest lock section.
    let fresh = ArchiveGenerator::new(GeneratorConfig::tiny(12, 4242)).unwrap().generate();
    for chunk in fresh.patches().chunks(4) {
        server.ingest(chunk).expect("live ingest");
    }
    server.submit_feedback("the archive grew while persisted!", Some("reaction")).unwrap();
    let reference = server.search(&ImageQuery::all()).expect("search");
    println!(
        "ingested {} live patches (WAL-logged); archive now {} images",
        fresh.patches().len(),
        server.archive_size()
    );

    // 3. "Crash": drop the server without another checkpoint.  The WAL is
    //    the only durable trace of the live ingests.
    drop(server);
    println!("server dropped (simulated crash) — recovering from checkpoint + WAL …");

    // 4. Recovery: the manifest's chunk set plus WAL-segment replay
    //    restores the exact pre-crash state, byte for byte.
    let start = Instant::now();
    let recovered = QueryServer::recover(&dir).expect("recovery");
    let recover_time = start.elapsed();
    let after = recovered.search(&ImageQuery::all()).expect("search");
    assert_eq!(after, reference, "recovered responses must be byte-identical");
    println!(
        "recovered {} images + {} feedback entries in {:.2?} — responses byte-identical",
        recovered.archive_size(),
        recovered.list_feedback().expect("feedback").len(),
        recover_time
    );
    println!(
        "cold-start speedup vs full rebuild: {:.1}x",
        build_time.as_secs_f64() / recover_time.as_secs_f64().max(1e-9)
    );

    // 5. An incremental checkpoint folds the WAL into delta chunks and
    //    retires the covered segments — recovery after it replays nothing,
    //    and only the state dirtied since boot was written.
    let stats = recovered.checkpoint(&dir).expect("checkpoint");
    println!(
        "incremental checkpoint ({:?}): {} bytes in {} chunks, {} WAL segments retired",
        stats.kind, stats.bytes_written, stats.chunks_written, stats.segments_retired
    );
    println!("{}", recovered.stats().render());

    let _ = std::fs::remove_dir_all(&dir);
}
