//! Demo scenario "Spatial Exploration and Query-by-Existing-Example" (§4):
//! submit a geospatial query covering the south-western tip of Portugal,
//! render the images in the area, pick one, and run content-based image
//! retrieval to display similar images across all ten countries — the text
//! equivalent of Figure 1.
//!
//! Run with: `cargo run --release --example spatial_qbe`

use agoraeo::bigearthnet::{ArchiveGenerator, Country, GeneratorConfig};
use agoraeo::earthqube::{EarthQube, EarthQubeConfig, ImageQuery};
use agoraeo::geo::{BBox, GeoShape};

fn main() {
    let archive =
        ArchiveGenerator::new(GeneratorConfig { num_patches: 800, seed: 33, ..Default::default() })
            .expect("valid generator configuration")
            .generate();
    let mut config = EarthQubeConfig::fast(33);
    config.milan.epochs = 25;
    let eq = EarthQube::build(&archive, config).expect("back-end builds");

    // 1. Spatial query: the south-western tip of Portugal (the Algarve /
    //    Sagres area), drawn as a rectangle on the map.
    let sw_portugal = GeoShape::Rect(BBox::new(-9.2, 36.9, -7.8, 38.0).expect("valid bbox"));
    let spatial = eq.search(&ImageQuery::all().with_shape(sw_portugal)).expect("valid query");
    println!("=== Spatial query: south-western tip of Portugal ===");
    println!("{}", spatial.panel.render_page(0));
    println!(
        "(query executed through index: {:?}, candidates scanned: {})",
        spatial.plan.as_ref().unwrap().index_used,
        spatial.plan.as_ref().unwrap().scanned
    );

    // 2. "Render" the retrieved images: EarthQube caps map rendering at
    //    1000 images; here we just show how many would be rendered and
    //    produce one RGB thumbnail through the rendered-images collection.
    let renderable = spatial.panel.renderable_names();
    println!("{} images would be rendered on the map", renderable.len());
    if let Some(name) = renderable.first() {
        if let Some(patch) = archive.find_by_name(name) {
            let (size, rgb) = patch.render_rgb();
            println!("Rendered RGB thumbnail for {name}: {size}×{size} px, {} bytes", rgb.len());
        }
    }

    // 3. Query-by-existing-example: take the first retrieved image and ask
    //    for its most similar images across all ten countries (Figure 1).
    let Some(query_image) = spatial.panel.page(0).entries.first().cloned() else {
        println!("No images found in the query area — try a larger archive.");
        return;
    };
    let similar = eq.similar_to(&query_image.name, 12).expect("CBIR query");
    println!("\n=== Figure 1: images similar to the query image ===");
    println!("Query image: {}", query_image.describe());
    println!("{}", similar.panel.render_page(0));

    // Count in how many different countries the similar images were found.
    let mut countries: Vec<String> =
        similar.panel.page(0).entries.iter().map(|e| e.country.clone()).collect();
    countries.sort();
    countries.dedup();
    println!(
        "Similar images span {} of the {} BigEarthNet countries: {}",
        countries.len(),
        Country::ALL.len(),
        countries.join(", ")
    );
    println!("\n{}", similar.statistics.render_bar_chart(10, 30));
}
