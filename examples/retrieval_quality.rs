//! Experiment E2 (printable form): retrieval quality of MiLaN hash codes
//! versus the two baselines — exact k-NN on the raw float features and
//! untrained random-hyperplane (LSH) codes.
//!
//! The paper claims the learned codes enable "highly accurate retrieval";
//! this binary prints mAP@10, precision@10 and recall@50 for all three
//! methods on the synthetic archive (shared-label ground truth).
//!
//! Run with: `cargo run --release --example retrieval_quality`

use agoraeo::bigearthnet::{Archive, ArchiveGenerator, GeneratorConfig};
use agoraeo::hashindex::{
    DistanceMetric, FloatKnnIndex, HammingIndex, HashTableIndex, RandomHyperplaneHasher,
};
use agoraeo::milan::{
    mean_average_precision, precision_at_k, recall_at_k, FeatureExtractor, Milan, MilanConfig,
    Normalizer, TrainingDataset,
};

const K_MAP: usize = 10;
const K_RECALL: usize = 50;

fn main() {
    let archive =
        ArchiveGenerator::new(GeneratorConfig { num_patches: 800, seed: 55, ..Default::default() })
            .expect("valid generator configuration")
            .generate();
    let dataset = TrainingDataset::from_archive(&archive);
    let extractor = FeatureExtractor::new();
    let features = extractor.extract_all(&archive);
    let normalizer = Normalizer::fit(&features);
    let normalized = normalizer.apply_all(&features);

    // --- MiLaN: trained deep-hash codes ------------------------------------
    let mut milan = Milan::new(MilanConfig { epochs: 40, ..MilanConfig::fast(128, 55) })
        .expect("valid model configuration");
    let report = milan.train(&dataset);
    println!(
        "MiLaN trained for {} epochs: loss {:.4} -> {:.4}",
        report.epochs.len(),
        report.initial_loss().unwrap_or(0.0),
        report.final_loss().unwrap_or(0.0)
    );
    let milan_codes = milan.hash_archive(&archive);
    let mut milan_index = HashTableIndex::new(milan.code_bits());
    for (i, c) in milan_codes.iter().enumerate() {
        milan_index.insert(i as u64, c.clone());
    }

    // --- Baseline 1: untrained LSH codes over the same features -------------
    let lsh = RandomHyperplaneHasher::new(normalized[0].len(), 128, 55);
    let lsh_codes: Vec<_> = normalized.iter().map(|f| lsh.hash(f)).collect();
    let mut lsh_index = HashTableIndex::new(128);
    for (i, c) in lsh_codes.iter().enumerate() {
        lsh_index.insert(i as u64, c.clone());
    }

    // --- Baseline 2: exact float k-NN ---------------------------------------
    let mut float_index = FloatKnnIndex::new(normalized[0].len(), DistanceMetric::Euclidean);
    for (i, f) in normalized.iter().enumerate() {
        float_index.insert(i as u64, f);
    }

    // --- Evaluate -----------------------------------------------------------
    let queries: Vec<usize> = (0..archive.len()).step_by(8).collect();
    println!("\nEvaluating {} queries (ground truth: shared CLC label)\n", queries.len());
    println!("{:<28} {:>9} {:>14} {:>12}", "method", "mAP@10", "precision@10", "recall@50");

    let milan_rank = |q: usize, k: usize| -> Vec<u64> {
        milan_index
            .knn(&milan_codes[q], k + 1)
            .into_iter()
            .map(|n| n.id)
            .filter(|id| *id != q as u64)
            .collect()
    };
    let lsh_rank = |q: usize, k: usize| -> Vec<u64> {
        lsh_index
            .knn(&lsh_codes[q], k + 1)
            .into_iter()
            .map(|n| n.id)
            .filter(|id| *id != q as u64)
            .collect()
    };
    let float_rank = |q: usize, k: usize| -> Vec<u64> {
        float_index
            .knn(&normalized[q], k + 1)
            .into_iter()
            .map(|n| n.id)
            .filter(|id| *id != q as u64)
            .collect()
    };

    report_method("MiLaN (128-bit hash)", &archive, &queries, milan_rank);
    report_method("LSH, untrained (128-bit)", &archive, &queries, lsh_rank);
    report_method("Exact float k-NN", &archive, &queries, float_rank);

    println!(
        "\nExpected shape (paper): MiLaN ≫ untrained codes, and close to (or above) exact k-NN on\n\
         the raw features, at a fraction of the query cost (see benches/e1_search_scaling)."
    );
}

fn report_method(
    name: &str,
    archive: &Archive,
    queries: &[usize],
    rank: impl Fn(usize, usize) -> Vec<u64>,
) {
    let mut map_queries = Vec::new();
    let mut precision_sum = 0.0;
    let mut recall_sum = 0.0;
    for &q in queries {
        let q_labels = archive.patches()[q].meta.labels;
        let total_relevant = archive
            .patches()
            .iter()
            .enumerate()
            .filter(|(i, p)| *i != q && p.meta.labels.intersects(q_labels))
            .count();
        let ranked = rank(q, K_RECALL);
        let relevance: Vec<bool> = ranked
            .iter()
            .map(|id| archive.patches()[*id as usize].meta.labels.intersects(q_labels))
            .collect();
        precision_sum += precision_at_k(&relevance, K_MAP);
        recall_sum += recall_at_k(&relevance, total_relevant, K_RECALL);
        map_queries.push((relevance, total_relevant));
    }
    let map = mean_average_precision(&map_queries, K_MAP);
    println!(
        "{:<28} {:>9.3} {:>14.3} {:>12.3}",
        name,
        map,
        precision_sum / queries.len() as f64,
        recall_sum / queries.len() as f64
    );
}
