//! Demo scenario "Label-based Exploration" (§4 of the paper):
//! search for industrial areas adjacent to inland water bodies — a proxy for
//! possible water pollution by industrial waste — across the ten BigEarthNet
//! countries, then inspect the label-statistics view (Figure 2-4) to
//! discover co-occurring land-cover classes.
//!
//! Run with: `cargo run --release --example label_exploration`

use agoraeo::bigearthnet::{ArchiveGenerator, GeneratorConfig, Label};
use agoraeo::earthqube::{EarthQube, EarthQubeConfig, ImageQuery, LabelFilter, LabelOperator};

fn main() {
    let archive =
        ArchiveGenerator::new(GeneratorConfig { num_patches: 800, seed: 21, ..Default::default() })
            .expect("valid generator configuration")
            .generate();
    let mut config = EarthQubeConfig::fast(21);
    config.milan.epochs = 15;
    let eq = EarthQube::build(&archive, config).expect("back-end builds");

    // "Industrial areas adjacent to inland water bodies": the `At least &
    // more` operator requires both labels to be present, extra labels are
    // allowed (the paper's description of the operator).
    let query = ImageQuery::all().with_labels(LabelFilter::new(
        LabelOperator::AtLeastAndMore,
        vec![Label::IndustrialOrCommercialUnits, Label::WaterBodies],
    ));
    let strict = eq.search(&query).expect("valid query");
    println!("=== Industrial units AND inland water bodies (At least & more) ===");
    println!("{}", strict.panel.render_page(0));

    // Broaden with the `Some` operator to see the wider context.
    let broad_query = ImageQuery::all().with_labels(LabelFilter::new(
        LabelOperator::Some,
        vec![Label::IndustrialOrCommercialUnits, Label::WaterBodies, Label::WaterCourses],
    ));
    let broad = eq.search(&broad_query).expect("valid query");
    println!("=== Broadened query (Some operator) — label statistics (Figure 2-4) ===");
    println!("{}", broad.statistics.render_bar_chart(12, 36));

    // The paper's narrative: visitors "may then find out that certain areas
    // include land principally occupied by agriculture whose irrigation may
    // come from nearby polluted water bodies".
    let agri = broad.statistics.count(Label::LandPrincipallyOccupiedByAgriculture);
    println!(
        "Land principally occupied by agriculture co-occurs in {agri} of the {} retrieved images",
        broad.total()
    );
    if let Some((label, count)) = broad.statistics.dominant() {
        println!("Dominant co-occurring class: {label} ({count} images)");
    }
}
