//! Quickstart: generate a small synthetic BigEarthNet archive, train MiLaN,
//! build EarthQube, and run one filtered search plus one similarity search.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! `main` is `pub` so `tests/quickstart_smoke.rs` can include this file and
//! run the flow under `cargo test`, keeping the headline demo from rotting.

use agoraeo::bigearthnet::{ArchiveGenerator, GeneratorConfig, Label};
use agoraeo::earthqube::{EarthQube, EarthQubeConfig, ImageQuery, LabelFilter, LabelOperator};

/// The end-to-end quickstart flow of the paper's demonstration.
pub fn main() {
    // 1. Generate a deterministic synthetic archive (stand-in for the real
    //    590,326-patch BigEarthNet archive; see ARCHITECTURE.md "Substitutions").
    let archive =
        ArchiveGenerator::new(GeneratorConfig { num_patches: 600, seed: 7, ..Default::default() })
            .expect("valid generator configuration")
            .generate();
    println!("Generated a synthetic archive with {} Sentinel-1/2 patch pairs", archive.len());
    let stats = archive.stats();
    println!(
        "  mean labels per patch: {:.2}; most frequent label: {}",
        stats.mean_labels_per_patch,
        Label::from_index(
            stats.label_counts.iter().enumerate().max_by_key(|(_, c)| **c).map(|(i, _)| i).unwrap()
        )
        .unwrap()
    );

    // 2. Build the EarthQube back-end: ingestion, MiLaN training, CBIR index.
    let mut config = EarthQubeConfig::fast(7);
    config.milan.epochs = 25;
    let eq = EarthQube::build(&archive, config).expect("back-end builds");
    println!(
        "EarthQube ready: {} metadata documents, {}-bit MiLaN codes, {} indexed images",
        eq.archive_size(),
        eq.cbir().unwrap().code_bits(),
        eq.cbir().unwrap().len()
    );

    // 3. A label-filtered metadata search: coastal images (Some operator).
    let query = ImageQuery::all().with_labels(LabelFilter::new(
        LabelOperator::Some,
        vec![Label::SeaAndOcean, Label::BeachesDunesSands, Label::CoastalLagoons],
    ));
    let response = eq.search(&query).expect("valid query");
    println!("\n=== Label search: coastal images ===");
    println!("{}", response.panel.render_page(0));
    println!("{}", response.statistics.render_bar_chart(8, 30));

    // 4. Content-based similarity search from the first coastal hit.
    if let Some(entry) = response.panel.page(0).entries.first() {
        let similar = eq.similar_to(&entry.name, 10).expect("CBIR query");
        println!("=== Images similar to {} ===", entry.name);
        println!("{}", similar.panel.render_page(0));
    }

    // 5. The AgoraEO view: what assets did this session register?
    println!("=== AgoraEO assets ===");
    for kind in [
        agoraeo::agora::AssetKind::Dataset,
        agoraeo::agora::AssetKind::Model,
        agoraeo::agora::AssetKind::Index,
        agoraeo::agora::AssetKind::Service,
    ] {
        for asset in eq.registry().discover_by_kind(kind) {
            println!("  [{}] {} — {}", kind.name(), asset.name, asset.description);
        }
    }
}
