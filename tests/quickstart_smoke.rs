//! Smoke test: the quickstart example — the paper's headline flow — must run
//! end-to-end.  The example source is compiled into this test directly, so
//! the flow is exercised by plain `cargo test` (no recursive cargo
//! invocation) and cannot silently rot.

#[path = "../examples/quickstart.rs"]
mod quickstart;

#[test]
fn quickstart_example_runs_end_to_end() {
    quickstart::main();
}
