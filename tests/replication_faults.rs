//! Replication & failover faults: replicas must serve byte-identical
//! reads while rejecting writes, resume from their durable (acked)
//! position across restarts, survive hostile replication frames on
//! neighbouring connections, and — the acceptance scenario — promote with
//! zero acknowledged-write loss while the fenced old generation's
//! unreplicated suffix can never re-enter the new lineage.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use agoraeo::bigearthnet::{Archive, ArchiveGenerator, GeneratorConfig, Label, Patch};
use agoraeo::earthqube::net::{response_to_payload, EqClient, NetServer};
use agoraeo::earthqube::replicate::SyncStatus;
use agoraeo::earthqube::{
    ClusterClient, EarthQubeConfig, EarthQubeError, ImageQuery, LabelFilter, LabelOperator,
    PrefilterMode, QueryServer, Replica, RetryPolicy, SearchResponse, ServeConfig,
};

const SEED: u64 = 15_012;

/// A scratch directory that cleans up after itself.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!("eq_repl_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        ScratchDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn generate(n: usize, seed: u64) -> Archive {
    ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate()
}

/// A primary attached to `dir` and serving on loopback.
fn primary(archive: &Archive, seed: u64, dir: &Path) -> (Arc<QueryServer>, NetServer) {
    let mut config = EarthQubeConfig::fast(seed);
    config.milan.epochs = 3;
    let server = Arc::new(QueryServer::build(archive, config, ServeConfig::default()).unwrap());
    server.checkpoint(dir).unwrap();
    let net = NetServer::bind(Arc::clone(&server), "127.0.0.1:0", 2).unwrap();
    (server, net)
}

/// A fast retry policy so fault paths don't stall the test suite.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 4,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(20),
        jitter_seed: SEED,
    }
}

fn label_query() -> ImageQuery {
    ImageQuery::all().with_labels(LabelFilter::new(
        LabelOperator::Some,
        vec![Label::MixedForest, Label::SeaAndOcean, Label::Pastures],
    ))
}

fn assert_byte_identical(a: &SearchResponse, b: &SearchResponse, what: &str) {
    assert_eq!(a, b, "{what}: responses differ");
    let mut wa = agoraeo::wire::Writer::new();
    response_to_payload(a).encode(&mut wa);
    let mut wb = agoraeo::wire::Writer::new();
    response_to_payload(b).encode(&mut wb);
    assert_eq!(wa.as_bytes(), wb.as_bytes(), "{what}: responses encode to different bytes");
}

/// Snapshot seeding, catch-up, byte-identical read service and typed
/// write rejection — the base replica contract.
#[test]
fn replica_serves_byte_identical_reads_and_rejects_writes() {
    let dir_p = ScratchDir::new("base_p");
    let dir_r = ScratchDir::new("base_r");
    let archive = generate(14, SEED);
    let extra = generate(5, SEED + 1);
    let (server, net) = primary(&archive, SEED, dir_p.path());

    // Writes past the checkpoint, so catch-up replays real WAL traffic.
    let mut client = EqClient::connect(net.local_addr()).unwrap();
    client.ingest(extra.patches()).unwrap();
    client.submit_feedback("replicate me", Some("praise")).unwrap();

    let addr = net.local_addr().to_string();
    let mut replica = Replica::bootstrap(dir_r.path(), &addr, 1, fast_policy()).unwrap();
    let sync = replica.catch_up().unwrap();
    assert!(sync.caught_up(), "fresh replica must reach the primary's position: {sync:?}");
    assert!(sync.records_applied >= 6, "ingest + feedback records expected, got {sync:?}");

    // Reads are byte-identical — metadata search, CBIR and the filtered
    // paths, plan included.
    let follower = Arc::clone(replica.server());
    assert_byte_identical(
        &server.search(&ImageQuery::all()).unwrap(),
        &follower.search(&ImageQuery::all()).unwrap(),
        "metadata search",
    );
    for patch in archive.patches().iter().take(6).chain(extra.patches().iter().take(2)) {
        assert_byte_identical(
            &server.similar_to(&patch.meta.name, 5).unwrap(),
            &follower.similar_to(&patch.meta.name, 5).unwrap(),
            &format!("similar_to {}", patch.meta.name),
        );
    }
    let name = &archive.patches()[0].meta.name;
    for mode in [PrefilterMode::Auto, PrefilterMode::ForceBitmap, PrefilterMode::ForcePostFilter] {
        let ours = server.similar_to_filtered(name, 6, &label_query(), mode).unwrap();
        let theirs = follower.similar_to_filtered(name, 6, &label_query(), mode).unwrap();
        assert_eq!(ours.plan, theirs.plan, "filtered plan differs under {mode:?}");
        assert_byte_identical(&ours.response, &theirs.response, "filtered similar_to");
    }

    // Writes bounce with the typed error, in-process and over the wire.
    assert!(matches!(follower.ingest(&extra.patches()[..1]), Err(EarthQubeError::NotPrimary(_))));
    assert!(matches!(follower.submit_feedback("no", None), Err(EarthQubeError::NotPrimary(_))));
    assert!(matches!(follower.checkpoint(dir_r.path()), Err(EarthQubeError::NotPrimary(_))));
    let replica_net = NetServer::bind(Arc::clone(&follower), "127.0.0.1:0", 1).unwrap();
    let mut replica_client = EqClient::connect(replica_net.local_addr()).unwrap();
    assert!(matches!(
        replica_client.ingest(&extra.patches()[..1]),
        Err(EarthQubeError::NotPrimary(_))
    ));
    assert!(matches!(
        replica_client.submit_feedback("no", None),
        Err(EarthQubeError::NotPrimary(_))
    ));
    // The same connection still serves reads after the rejections.
    assert_byte_identical(
        &server.search(&ImageQuery::all()).unwrap(),
        &replica_client.search(&ImageQuery::all()).unwrap(),
        "wire read after rejected write",
    );

    replica_net.shutdown();
    net.shutdown();
}

/// A replica that disconnects (here: its process restarts) resumes from
/// its durable position — no re-seed, no re-applied records, and the
/// mirrored WAL still tracks the primary through segment rotations.
#[test]
fn replica_restart_resumes_from_acked_position_without_reseed() {
    let dir_p = ScratchDir::new("resume_p");
    let dir_r = ScratchDir::new("resume_r");
    let archive = generate(10, SEED + 10);
    let extra = generate(8, SEED + 11);
    let (server, net) = primary(&archive, SEED + 10, dir_p.path());
    // Tiny segments force rotations mid-stream, so resume must also cope
    // with a position in a later segment.
    server.set_segment_limit(2048);
    let addr = net.local_addr().to_string();

    let mut client = EqClient::connect(net.local_addr()).unwrap();
    client.ingest(&extra.patches()[..4]).unwrap();

    let first_applied;
    {
        let mut replica = Replica::bootstrap(dir_r.path(), &addr, 7, fast_policy()).unwrap();
        let sync = replica.catch_up().unwrap();
        assert!(sync.caught_up());
        assert_eq!(sync.reseeds, 0, "a fresh bootstrap of an empty dir seeds, not reseeds");
        first_applied = sync.records_applied;
        // Dropping the replica closes its pull connection — the
        // "disconnect" half of the scenario.
    }

    // More acked writes while the replica is away.
    client.ingest(&extra.patches()[4..]).unwrap();
    client.submit_feedback("while you were out", None).unwrap();

    let mut replica = Replica::bootstrap(dir_r.path(), &addr, 7, fast_policy()).unwrap();
    let sync = replica.catch_up().unwrap();
    assert!(sync.caught_up());
    assert_eq!(sync.reseeds, 0, "restart must resume from the durable position, not re-seed");
    assert!(
        sync.records_applied < first_applied + 10,
        "resume must not replay the pre-restart records (applied {} after {first_applied})",
        sync.records_applied
    );
    let follower = replica.server();
    assert_eq!(follower.archive_size(), server.archive_size());
    assert_byte_identical(
        &server.search(&ImageQuery::all()).unwrap(),
        &follower.search(&ImageQuery::all()).unwrap(),
        "post-resume metadata search",
    );
    // The mirrored WAL sits at the same (generation, segment, offset).
    assert_eq!(follower.repl_state().segment, server.repl_state().segment);
    assert_eq!(follower.repl_state().offset, server.repl_state().offset);
    assert!(server.repl_state().segment > server.repl_state().first_segment.saturating_sub(1));

    net.shutdown();
}

/// A hostile frame on one replication connection errors only that
/// connection: concurrent pulls and queries on other connections are
/// unaffected.
#[test]
fn torn_replication_frame_kills_only_that_stream() {
    use std::io::{Read as _, Write as _};

    let dir_p = ScratchDir::new("torn_p");
    let archive = generate(8, SEED + 20);
    let (server, net) = primary(&archive, SEED + 20, dir_p.path());
    let state = server.repl_state();

    let mut healthy = EqClient::connect(net.local_addr()).unwrap();
    let batch =
        healthy.repl_pull(1, state.generation, state.segment, state.offset, 1 << 20).unwrap();
    assert!(!batch.reseed);

    // A frame with a valid preamble but corrupt checksum: the server must
    // error this connection (error frame and/or close)...
    let mut hostile = std::net::TcpStream::connect(net.local_addr()).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(&agoraeo::proto::REQUEST_MAGIC);
    frame.extend_from_slice(&32u32.to_le_bytes());
    frame.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    frame.extend_from_slice(&[0xAB; 32]);
    hostile.write_all(&frame).unwrap();
    hostile.flush().unwrap();
    let mut sink = Vec::new();
    // ...either way the stream ends rather than hanging.
    hostile.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let _ = hostile.read_to_end(&mut sink);

    // The healthy replication stream and the query path keep working.
    let batch =
        healthy.repl_pull(1, state.generation, state.segment, state.offset, 1 << 20).unwrap();
    assert!(!batch.reseed);
    healthy.ping().unwrap();
    assert_eq!(
        healthy.search(&ImageQuery::all()).unwrap(),
        server.search(&ImageQuery::all()).unwrap()
    );

    net.shutdown();
}

/// The acceptance scenario: kill the primary, promote the replica, and
/// verify (a) zero acknowledged-write loss, (b) the promoted server takes
/// writes under a fresh generation, (c) the old generation is fenced —
/// its positions answer `reseed`, and the resurrected old primary's
/// unreplicated suffix is discarded when it rejoins as a replica.
#[test]
fn failover_promotes_with_zero_acked_loss_and_fences_the_old_generation() {
    let dir_p = ScratchDir::new("failover_p");
    let dir_r = ScratchDir::new("failover_r");
    let archive = generate(12, SEED + 30);
    let extra = generate(9, SEED + 31);
    let batch_a: Vec<Patch> = extra.patches()[0..3].to_vec();
    let batch_b: Vec<Patch> = extra.patches()[3..6].to_vec();
    let batch_c: Vec<Patch> = extra.patches()[6..9].to_vec();

    let (old_primary, net) = primary(&archive, SEED + 30, dir_p.path());
    let addr = net.local_addr().to_string();
    let old_generation = old_primary.repl_state().generation;

    // Batch A is acknowledged to the client and replicated.
    let mut client = EqClient::connect(net.local_addr()).unwrap();
    client.ingest(&batch_a).unwrap();
    let mut replica = Replica::bootstrap(dir_r.path(), &addr, 3, fast_policy()).unwrap();
    assert!(replica.catch_up().unwrap().caught_up());

    // The primary "dies": its front end goes away mid-flight...
    net.shutdown();
    // ...but the process lingers and even keeps writing — batch B is
    // *never acknowledged to any replicated client* and must die with the
    // old generation.
    old_primary.ingest(&batch_b).unwrap();

    // Promote.  The replica cuts its applied state into a checkpoint under
    // a fresh generation and starts taking writes.
    let promoted = replica.promote().unwrap();
    assert!(promoted.is_primary());
    let new_state = promoted.repl_state();
    assert!(new_state.attached && new_state.primary);
    assert_ne!(new_state.generation, old_generation, "promotion must fence via a new generation");

    // (a) Zero acknowledged-write loss: everything acked before the crash
    // is served by the new primary.
    assert_eq!(promoted.archive_size(), archive.patches().len() + batch_a.len());
    for patch in &batch_a {
        assert!(!promoted.similar_to(&patch.meta.name, 3).unwrap().panel.entries().is_empty());
    }

    // (b) The new primary accepts writes; batch C exists only in the new
    // lineage.
    let new_net = NetServer::bind(Arc::clone(&promoted), "127.0.0.1:0", 2).unwrap();
    let new_addr = new_net.local_addr().to_string();
    let mut new_client = EqClient::connect(new_net.local_addr()).unwrap();
    new_client.ingest(&batch_c).unwrap();

    // (c) Fencing: a follower of the old lineage presenting the old
    // generation is told to reseed, whatever position it claims.
    let old_state = old_primary.repl_state();
    let verdict = new_client
        .repl_pull(99, old_state.generation, old_state.segment, old_state.offset, 1 << 20)
        .unwrap();
    assert!(verdict.reseed, "an old-generation position must be disowned, not served");

    // The resurrected old primary rejoins as a replica of the new one: its
    // recovered lineage is disowned, it re-seeds, and its unreplicated
    // suffix (batch B) is gone — split-brain cannot merge.
    drop(old_primary);
    let mut rejoined = Replica::bootstrap(dir_p.path(), &new_addr, 4, fast_policy()).unwrap();
    let sync = rejoined.catch_up().unwrap();
    assert!(sync.reseeds >= 1, "the fenced lineage must have been re-seeded: {sync:?}");
    let follower = rejoined.server();
    assert_eq!(follower.archive_size(), promoted.archive_size());
    for patch in &batch_b {
        assert!(
            matches!(
                follower.similar_to(&patch.meta.name, 3),
                Err(EarthQubeError::UnknownImage(_))
            ),
            "unreplicated write {} survived the fence",
            patch.meta.name
        );
        assert!(matches!(
            promoted.similar_to(&patch.meta.name, 3),
            Err(EarthQubeError::UnknownImage(_))
        ));
    }
    for patch in batch_a.iter().chain(&batch_c) {
        assert_byte_identical(
            &promoted.similar_to(&patch.meta.name, 4).unwrap(),
            &follower.similar_to(&patch.meta.name, 4).unwrap(),
            "post-failover replica read",
        );
    }

    new_net.shutdown();
}

/// The cluster client: reads fan out across primary + replicas, writes
/// follow the primary across a failover, and the retry policy rides out
/// the promotion window.
#[test]
fn cluster_client_fans_reads_and_follows_the_primary_across_failover() {
    let dir_p = ScratchDir::new("cluster_p");
    let dir_r1 = ScratchDir::new("cluster_r1");
    let dir_r2 = ScratchDir::new("cluster_r2");
    let archive = generate(10, SEED + 40);
    let extra = generate(6, SEED + 41);
    let batch_a: Vec<Patch> = extra.patches()[..3].to_vec();
    let batch_b: Vec<Patch> = extra.patches()[3..].to_vec();

    let (server, net) = primary(&archive, SEED + 40, dir_p.path());
    let addr = net.local_addr().to_string();
    let mut r1 = Replica::bootstrap(dir_r1.path(), &addr, 1, fast_policy()).unwrap();
    let mut r2 = Replica::bootstrap(dir_r2.path(), &addr, 2, fast_policy()).unwrap();
    let net_r1 = NetServer::bind(Arc::clone(r1.server()), "127.0.0.1:0", 1).unwrap();
    let net_r2 = NetServer::bind(Arc::clone(r2.server()), "127.0.0.1:0", 1).unwrap();

    // Endpoints deliberately listed replicas-first: primary discovery must
    // skip non-primaries, not assume an order.
    let mut cluster = ClusterClient::new(
        [net_r1.local_addr().to_string(), net_r2.local_addr().to_string(), addr.clone()],
        fast_policy(),
    )
    .unwrap();
    assert_eq!(cluster.primary_addr().unwrap(), addr);

    // A write routes to the primary even though reads rotate.
    cluster.ingest(&batch_a).unwrap();
    assert_eq!(server.archive_size(), archive.patches().len() + batch_a.len());
    assert!(r1.catch_up().unwrap().caught_up());
    assert!(r2.catch_up().unwrap().caught_up());

    // Reads fan out round-robin and every endpoint answers identically.
    let reference = server.search(&ImageQuery::all()).unwrap();
    for _ in 0..6 {
        assert_byte_identical(&reference, &cluster.search(&ImageQuery::all()).unwrap(), "fan-out");
    }
    let name = &archive.patches()[1].meta.name;
    let direct = server.similar_to_filtered(name, 5, &label_query(), PrefilterMode::Auto).unwrap();
    for _ in 0..3 {
        let via =
            cluster.similar_to_filtered(name, 5, &label_query(), PrefilterMode::Auto).unwrap();
        assert_eq!(via.plan, direct.plan);
        assert_byte_identical(&direct.response, &via.response, "filtered fan-out");
    }

    // Failover: the primary dies, r1 is promoted behind its existing
    // front end.
    net.shutdown();
    drop(server);
    let promoted = r1.promote().unwrap();
    assert!(promoted.is_primary());

    // Reads keep flowing (the dead endpoint is cooled down and skipped)...
    for _ in 0..4 {
        assert_byte_identical(&reference, &cluster.search(&ImageQuery::all()).unwrap(), "degraded");
    }
    // ...and the next write re-discovers the promoted primary and lands:
    // `NotPrimary` / connection-refused are retried, and the acknowledged
    // result is durable on the new primary.
    cluster.ingest(&batch_b).unwrap();
    assert_eq!(promoted.archive_size(), archive.patches().len() + batch_a.len() + batch_b.len());
    assert_eq!(cluster.primary_addr().unwrap(), net_r1.local_addr().to_string());

    // Reads served after the failover include the new write once the
    // surviving replica re-points (r2 still follows the dead primary, so
    // it re-bootstraps against the new one — re-seeding is expected).
    // Its front end must go first: the directory lock lives as long as
    // any handle to the old server instance.
    net_r2.shutdown();
    drop(r2);
    let mut r2 =
        Replica::bootstrap(dir_r2.path(), &net_r1.local_addr().to_string(), 2, fast_policy())
            .unwrap();
    assert!(r2.catch_up().unwrap().caught_up());
    assert_eq!(r2.server().archive_size(), promoted.archive_size());

    net_r1.shutdown();
}

/// The bounded retry budget: connecting to a dead endpoint fails with the
/// last transport error instead of hanging, and a zero-jitter policy
/// still sleeps monotonically bounded delays.
#[test]
fn connect_with_retry_exhausts_its_budget_quickly() {
    let policy = RetryPolicy {
        attempts: 3,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
        jitter_seed: 1,
    };
    let started = std::time::Instant::now();
    // Port 9 (discard) on loopback is closed in the test environment.
    let result = EqClient::connect_with_retry("127.0.0.1:9", &policy);
    assert!(matches!(result, Err(EarthQubeError::Net(_))));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "a refused endpoint must fail fast, took {:?}",
        started.elapsed()
    );
}

/// `SyncStatus` surfaces catch-up state transitions faithfully: a caught
/// up replica reports `CaughtUp` and applies nothing.
#[test]
fn caught_up_replica_pulls_are_empty() {
    let dir_p = ScratchDir::new("idle_p");
    let dir_r = ScratchDir::new("idle_r");
    let archive = generate(8, SEED + 50);
    let (_server, net) = primary(&archive, SEED + 50, dir_p.path());
    let addr = net.local_addr().to_string();

    let mut replica = Replica::bootstrap(dir_r.path(), &addr, 5, fast_policy()).unwrap();
    replica.catch_up().unwrap();
    let before = replica.sync_state();
    assert!(matches!(replica.sync_once().unwrap(), SyncStatus::CaughtUp));
    let after = replica.sync_state();
    assert_eq!(after.records_applied, before.records_applied);
    assert_eq!(after.batches, before.batches + 1);

    net.shutdown();
}
