//! Cross-crate integration tests: the three demo scenarios of §4 running
//! end-to-end through the public API (archive generation → ingestion →
//! MiLaN training → CBIR → query panel → result panel / statistics).

use agoraeo::bigearthnet::{ArchiveGenerator, Country, GeneratorConfig, Label};
use agoraeo::earthqube::{
    DownloadCart, EarthQube, EarthQubeConfig, EarthQubeError, ImageQuery, LabelFilter,
    LabelOperator,
};
use agoraeo::geo::{BBox, GeoShape};

fn build_earthqube(n: usize, seed: u64) -> (EarthQube, agoraeo::bigearthnet::Archive) {
    let archive = ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate();
    let mut config = EarthQubeConfig::fast(seed);
    config.milan.epochs = 8;
    (EarthQube::build(&archive, config).unwrap(), archive)
}

#[test]
fn scenario_label_based_exploration() {
    // §4 scenario 1: industrial areas adjacent to inland water bodies.
    let (eq, archive) = build_earthqube(250, 101);
    let query = ImageQuery::all().with_labels(LabelFilter::new(
        LabelOperator::AtLeastAndMore,
        vec![Label::IndustrialOrCommercialUnits, Label::WaterBodies],
    ));
    let response = eq.search(&query).unwrap();

    // Ground truth by direct archive scan.
    let expected = archive
        .patches()
        .iter()
        .filter(|p| {
            p.meta.labels.contains(Label::IndustrialOrCommercialUnits)
                && p.meta.labels.contains(Label::WaterBodies)
        })
        .count();
    assert_eq!(response.total(), expected);

    // Every retrieved image carries both labels, and the statistics count
    // them in every retrieved image.
    assert_eq!(response.statistics.count(Label::IndustrialOrCommercialUnits), expected);
    assert_eq!(response.statistics.count(Label::WaterBodies), expected);

    // The label-statistics bar chart is renderable either way (it reports
    // the image count, or an explicit empty-retrieval message).
    let chart = response.statistics.render_bar_chart(10, 30);
    assert!(chart.contains("images") || chart.contains("no labels"));
}

#[test]
fn scenario_spatial_exploration_and_query_by_existing_example() {
    // §4 scenario 2: spatial query over Portugal, then CBIR from a hit.
    let (eq, _) = build_earthqube(300, 102);
    let portugal = GeoShape::Rect(Country::Portugal.bounding_box());
    let spatial = eq.search(&ImageQuery::all().with_shape(portugal)).unwrap();
    assert!(spatial.total() > 0, "the generator always places patches in Portugal");
    assert_eq!(
        spatial.plan.as_ref().unwrap().index_used.as_deref(),
        Some("location"),
        "spatial queries must go through the geohash index"
    );
    for entry in spatial.panel.page(0).entries {
        assert_eq!(entry.country, "Portugal");
    }

    // Query-by-existing-example from the first hit.
    let query_image = spatial.panel.page(0).entries.first().unwrap().name.clone();
    let similar = eq.similar_to(&query_image, 10).unwrap();
    assert!(similar.total() > 0);
    assert!(similar.total() <= 10);
    let entries = similar.panel.page(0).entries;
    // Sorted by Hamming distance, query image excluded.
    for w in entries.windows(2) {
        assert!(w[0].distance.unwrap() <= w[1].distance.unwrap());
    }
    assert!(entries.iter().all(|e| e.name != query_image));

    // The download cart combines results from both searches without duplicates.
    let mut cart = DownloadCart::new();
    cart.add_page(&spatial.panel.page(0));
    let before = cart.len();
    cart.add_page(&spatial.panel.page(0));
    assert_eq!(cart.len(), before, "adding the same page twice must not duplicate");
    cart.add_page(&similar.panel.page(0));
    assert!(cart.len() >= before);
}

#[test]
fn scenario_query_by_new_example_supports_auto_labelling() {
    // §4 scenario 3: an external unlabeled image is encoded on the fly.
    let (eq, _) = build_earthqube(300, 103);
    let external = ArchiveGenerator::new(GeneratorConfig::tiny(1, 9999)).unwrap().generate_patch(0);
    let response = eq.search_by_new_example(&external, 12).unwrap();
    assert_eq!(response.total(), 12);
    // The statistics over the neighbours give a label proposal; it must
    // contain at least one label (every archive patch has ≥ 1 label).
    assert!(response.statistics.dominant().is_some());
}

#[test]
fn combined_spatial_temporal_label_query_matches_reference_scan() {
    let (eq, archive) = build_earthqube(300, 104);
    let from = agoraeo::bigearthnet::AcquisitionDate::new(2017, 9, 1).unwrap();
    let to = agoraeo::bigearthnet::AcquisitionDate::new(2018, 2, 28).unwrap();
    let bbox = BBox::new(-10.0, 36.0, 30.0, 66.0).unwrap(); // most of Europe (clips N-Finland / W-Ireland)
    let query = ImageQuery::all()
        .with_shape(GeoShape::Rect(bbox))
        .with_date_range(from, to)
        .with_labels(LabelFilter::new(
            LabelOperator::Some,
            vec![Label::MixedForest, Label::ConiferousForest],
        ));
    let response = eq.search(&query).unwrap();
    let expected = archive
        .patches()
        .iter()
        .filter(|p| {
            bbox.contains(p.meta.bbox.center())
                && p.meta.date >= from
                && p.meta.date <= to
                && (p.meta.labels.contains(Label::MixedForest)
                    || p.meta.labels.contains(Label::ConiferousForest))
        })
        .count();
    assert_eq!(response.total(), expected);
}

#[test]
fn error_paths_are_reported_not_panicked() {
    let (mut eq, _) = build_earthqube(30, 105);
    assert!(matches!(eq.similar_to("does-not-exist", 5), Err(EarthQubeError::UnknownImage(_))));
    assert!(matches!(
        eq.search(&ImageQuery::all().with_labels(LabelFilter::new(LabelOperator::Some, vec![]))),
        Err(EarthQubeError::BadRequest(_))
    ));
    assert!(matches!(eq.submit_feedback("  ", None), Err(EarthQubeError::BadRequest(_))));
    // Valid feedback still works afterwards.
    eq.submit_feedback("works end to end", Some("reaction")).unwrap();
    assert_eq!(eq.list_feedback().unwrap().len(), 1);
}

#[test]
fn agora_registry_exposes_the_full_cbir_pipeline() {
    let (eq, _) = build_earthqube(30, 106);
    let registry = eq.registry();
    let pipeline = registry.pipeline("earthqube-cbir").expect("pipeline registered");
    assert_eq!(pipeline.stages.len(), 4);
    for stage in &pipeline.stages {
        assert!(registry.get(stage).is_some(), "pipeline stage {stage} must be a registered asset");
    }
    assert_eq!(registry.discover_by_tag("cbir").len(), 2);
}
