//! Cross-crate integration tests for the metadata path:
//! archive generation → document schema → ingestion → indexed queries,
//! checking that every indexed access path returns exactly what a direct
//! scan of the archive returns.

use agoraeo::bigearthnet::{ArchiveGenerator, Country, GeneratorConfig, Label, Season};
use agoraeo::docstore::{Database, Filter, Value};
use agoraeo::earthqube::{
    ingest_metadata, schema::collections, schema::fields, LabelFilter, LabelOperator,
};
use agoraeo::geo::GeoShape;

fn ingested(n: usize, seed: u64) -> (Database, Vec<agoraeo::bigearthnet::PatchMetadata>) {
    let metas =
        ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate_metadata_only();
    let mut db = Database::new();
    ingest_metadata(&mut db, &metas).unwrap();
    (db, metas)
}

#[test]
fn country_queries_match_reference_counts_for_all_countries() {
    let (db, metas) = ingested(400, 301);
    let coll = db.collection(collections::METADATA).unwrap();
    for country in Country::ALL {
        let result = coll.find(&Filter::Eq(fields::COUNTRY.into(), country.name().into()));
        let expected = metas.iter().filter(|m| m.country == country).count();
        assert_eq!(result.ids.len(), expected, "mismatch for {country}");
        assert_eq!(result.plan.index_used.as_deref(), Some(fields::COUNTRY));
        // The index never scans more than it has to.
        assert_eq!(result.plan.scanned, expected);
    }
}

#[test]
fn season_queries_partition_the_archive() {
    let (db, metas) = ingested(300, 302);
    let coll = db.collection(collections::METADATA).unwrap();
    let mut total = 0usize;
    for season in Season::ALL {
        let count = coll.count(&Filter::Eq(fields::SEASON.into(), season.name().into()));
        assert_eq!(count, metas.iter().filter(|m| m.season() == season).count());
        total += count;
    }
    assert_eq!(total, metas.len());
}

#[test]
fn spatial_queries_agree_with_direct_footprint_checks() {
    let (db, metas) = ingested(400, 303);
    let coll = db.collection(collections::METADATA).unwrap();
    for country in [Country::Portugal, Country::Finland, Country::Switzerland] {
        let shape = GeoShape::Rect(country.bounding_box());
        let result = coll.find(&Filter::GeoWithin(fields::LOCATION.into(), shape.clone()));
        let expected: Vec<&str> = metas
            .iter()
            .filter(|m| shape.contains(m.bbox.center()))
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(result.ids.len(), expected.len(), "geo mismatch for {country}");
        assert_eq!(result.plan.index_used.as_deref(), Some(fields::LOCATION));
        let names: Vec<&str> = result
            .ids
            .iter()
            .map(|id| coll.get(*id).unwrap().get(fields::NAME).unwrap().as_str().unwrap())
            .collect();
        for name in names {
            assert!(expected.contains(&name));
        }
    }
}

#[test]
fn all_three_label_operators_agree_with_label_set_algebra() {
    let (db, metas) = ingested(350, 304);
    let coll = db.collection(collections::METADATA).unwrap();
    let selections: Vec<Vec<Label>> = vec![
        vec![Label::MixedForest],
        vec![Label::SeaAndOcean, Label::BeachesDunesSands],
        vec![Label::Pastures, Label::NonIrrigatedArableLand],
    ];
    for labels in selections {
        for op in [LabelOperator::Some, LabelOperator::AtLeastAndMore, LabelOperator::Exactly] {
            let lf = LabelFilter::new(op, labels.clone());
            let count = coll.count(&lf.to_filter());
            let expected = metas.iter().filter(|m| lf.matches(m.labels)).count();
            assert_eq!(count, expected, "operator {op:?} with {labels:?}");
        }
    }
}

#[test]
fn primary_key_lookups_hit_every_ingested_patch() {
    let (db, metas) = ingested(150, 305);
    let coll = db.collection(collections::METADATA).unwrap();
    for meta in &metas {
        let doc =
            coll.get_by_key(&Value::Str(meta.name.clone())).expect("patch is retrievable by name");
        assert_eq!(doc.get(fields::PATCH_ID).unwrap().as_int().unwrap() as u32, meta.id.0);
        assert_eq!(
            doc.get(fields::LABELS).unwrap().as_str().unwrap(),
            meta.labels.to_ascii_codes(),
            "label codes must round-trip"
        );
    }
}

#[test]
fn date_range_queries_respect_the_acquisition_window() {
    let (db, metas) = ingested(300, 306);
    let coll = db.collection(collections::METADATA).unwrap();
    // Everything lies in the BigEarthNet window.
    let start = agoraeo::bigearthnet::AcquisitionDate::new(2017, 6, 1).unwrap();
    let end = agoraeo::bigearthnet::AcquisitionDate::new(2018, 5, 31).unwrap();
    let full = Filter::Gte(fields::DATE.into(), Value::Date(start.ordinal()))
        .and(Filter::Lte(fields::DATE.into(), Value::Date(end.ordinal())));
    assert_eq!(coll.count(&full), metas.len());
    // A narrow window matches a strict subset.
    let jan = agoraeo::bigearthnet::AcquisitionDate::new(2018, 1, 1).unwrap();
    let feb = agoraeo::bigearthnet::AcquisitionDate::new(2018, 2, 28).unwrap();
    let narrow = Filter::Gte(fields::DATE.into(), Value::Date(jan.ordinal()))
        .and(Filter::Lte(fields::DATE.into(), Value::Date(feb.ordinal())));
    let count = coll.count(&narrow);
    let expected = metas.iter().filter(|m| m.date >= jan && m.date <= feb).count();
    assert_eq!(count, expected);
    assert!(count < metas.len());
}

#[test]
fn collection_stats_reflect_the_ingested_archive() {
    let (db, metas) = ingested(200, 307);
    let stats = db.collection(collections::METADATA).unwrap().stats();
    assert_eq!(stats.count, metas.len());
    assert!(stats.attribute_indexes.contains(&fields::COUNTRY.to_string()));
    assert!(stats.attribute_indexes.contains(&fields::SEASON.to_string()));
    assert_eq!(stats.geo_index.as_deref(), Some(fields::LOCATION));
    assert!(stats.approximate_bytes > 0);
}
