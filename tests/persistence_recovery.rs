//! Crash-recovery tests of the durable storage tier: a `QueryServer` that
//! is checkpointed, killed mid-ingest (torn WAL record) and recovered must
//! answer the umbrella determinism workload byte-identically to a server
//! that never crashed, and recovery itself must be idempotent.

use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

use agoraeo::bigearthnet::{Archive, ArchiveGenerator, Country, GeneratorConfig, Label};
use agoraeo::earthqube::{
    EarthQubeConfig, ImageQuery, LabelFilter, LabelOperator, QueryRequest, QueryServer,
    SearchResponse, ServeConfig,
};
use agoraeo::geo::GeoShape;

const SEED: u64 = 7878;

fn generate(n: usize, seed: u64) -> Archive {
    ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate()
}

fn engine_config(seed: u64) -> EarthQubeConfig {
    let mut config = EarthQubeConfig::fast(seed);
    config.milan.epochs = 5;
    config
}

/// The umbrella determinism workload: CBIR, label, spatial and
/// query-by-new-example traffic (the same mix as `concurrent_serving.rs`,
/// plus the model-dependent new-example path so recovery of the trained
/// weights is exercised too).
fn workload(archive: &Archive) -> Vec<QueryRequest> {
    let mut requests = Vec::new();
    for (i, patch) in archive.patches().iter().enumerate().take(24) {
        requests.push(match i % 4 {
            0 => QueryRequest::SimilarTo { name: patch.meta.name.clone(), k: 8 },
            1 => QueryRequest::Metadata(ImageQuery::all().with_labels(LabelFilter::new(
                LabelOperator::Some,
                vec![Label::ALL[(i * 5) % Label::ALL.len()]],
            ))),
            2 => {
                QueryRequest::Metadata(ImageQuery::all().with_shape(GeoShape::Rect(
                    Country::ALL[i % Country::ALL.len()].bounding_box(),
                )))
            }
            _ => QueryRequest::NewExample {
                patch: Box::new(
                    ArchiveGenerator::new(GeneratorConfig::tiny(1, 40_000 + i as u64))
                        .unwrap()
                        .generate_patch(0),
                ),
                k: 6,
            },
        });
    }
    requests
}

fn responses(server: &QueryServer, requests: &[QueryRequest]) -> Vec<SearchResponse> {
    requests.iter().map(|r| server.execute(r).unwrap()).collect()
}

fn assert_identical(a: &QueryServer, b: &QueryServer, requests: &[QueryRequest], what: &str) {
    let (ra, rb) = (responses(a, requests), responses(b, requests));
    for (i, (x, y)) in ra.iter().zip(&rb).enumerate() {
        assert_eq!(x.panel, y.panel, "{what}: panel of request {i} differs");
        assert_eq!(x.statistics, y.statistics, "{what}: statistics of request {i} differ");
        assert_eq!(x.plan, y.plan, "{what}: plan of request {i} differs");
    }
}

/// A scratch directory that cleans up after itself.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!("eq_recovery_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        ScratchDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Every WAL segment file in the directory, sorted by segment index.
fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal.") && n.ends_with(".eqw"))
        })
        .collect();
    segments.sort();
    segments
}

/// Chops `n` bytes off the end of the live (highest-indexed) WAL segment,
/// simulating a crash in the middle of a record `write` (a torn write: the
/// length/CRC frame no longer matches the payload).
fn tear_wal_tail(dir: &Path, n: u64) {
    let wal = segment_files(dir).pop().expect("a WAL segment exists");
    let file = OpenOptions::new().write(true).open(&wal).expect("WAL exists");
    let len = file.metadata().unwrap().len();
    assert!(len > n, "WAL too short to tear");
    file.set_len(len - n).unwrap();
}

/// The acceptance scenario: checkpoint, ingest patch-by-patch, kill the WAL
/// mid-record, recover — and compare byte-for-byte against an uncrashed
/// reference server that applied exactly the writes that became durable.
#[test]
fn torn_wal_recovery_matches_an_uncrashed_server() {
    let dir = ScratchDir::new("torn");
    let initial = generate(60, SEED);
    let extra = generate(8, 555_555); // distinct seed → distinct patch names

    // The server that will "crash": checkpoint first, then ingest the extra
    // patches one at a time so each becomes one WAL record.
    let crashed =
        QueryServer::build(&initial, engine_config(SEED), ServeConfig::default()).unwrap();
    crashed.checkpoint(dir.path()).unwrap();
    for patch in extra.patches() {
        crashed.ingest(std::slice::from_ref(patch)).unwrap();
    }
    crashed.submit_feedback("mid-flight comment", None).unwrap();
    drop(crashed); // the "kill"

    // Tear the feedback record (the last one) mid-write: after recovery the
    // eight ingested patches survive, the torn feedback does not.
    tear_wal_tail(dir.path(), 3);
    let recovered = QueryServer::recover(dir.path()).unwrap();
    assert_eq!(recovered.archive_size(), 68);
    assert!(recovered.list_feedback().unwrap().is_empty(), "torn record must be discarded");

    // The uncrashed reference applies exactly the durable writes.
    let reference =
        QueryServer::build(&initial, engine_config(SEED), ServeConfig::default()).unwrap();
    reference.ingest(extra.patches()).unwrap();

    let requests = workload(&initial);
    assert_identical(&recovered, &reference, &requests, "recovered vs uncrashed");

    // The appended patches themselves answer identically too.
    for patch in extra.patches() {
        assert_eq!(
            recovered.similar_to(&patch.meta.name, 5).unwrap(),
            reference.similar_to(&patch.meta.name, 5).unwrap()
        );
    }
}

/// Tearing into the middle of an *ingest* record drops exactly that patch:
/// recovery falls back to the longest intact record prefix.
#[test]
fn torn_ingest_record_recovers_the_intact_prefix() {
    let dir = ScratchDir::new("torn_ingest");
    let initial = generate(30, SEED + 1);
    let extra = generate(5, 666_666);

    let crashed =
        QueryServer::build(&initial, engine_config(SEED + 1), ServeConfig::default()).unwrap();
    crashed.checkpoint(dir.path()).unwrap();
    for patch in extra.patches() {
        crashed.ingest(std::slice::from_ref(patch)).unwrap();
    }
    drop(crashed);
    tear_wal_tail(dir.path(), 100); // well into the last ingest record

    let recovered = QueryServer::recover(dir.path()).unwrap();
    assert_eq!(recovered.archive_size(), 34, "the torn fifth patch must be dropped");

    let reference =
        QueryServer::build(&initial, engine_config(SEED + 1), ServeConfig::default()).unwrap();
    reference.ingest(&extra.patches()[..4]).unwrap();
    let requests = workload(&initial);
    assert_identical(&recovered, &reference, &requests, "prefix recovery");
}

/// Recovery is idempotent: a second recovery of the same directory — after
/// the first one already truncated the torn tail — yields a server with
/// identical answers and identical on-disk state.
#[test]
fn second_recovery_is_idempotent() {
    let dir = ScratchDir::new("idempotent");
    let initial = generate(25, SEED + 2);
    let extra = generate(4, 777_777);

    let crashed =
        QueryServer::build(&initial, engine_config(SEED + 2), ServeConfig::default()).unwrap();
    crashed.checkpoint(dir.path()).unwrap();
    for patch in extra.patches() {
        crashed.ingest(std::slice::from_ref(patch)).unwrap();
    }
    drop(crashed);
    tear_wal_tail(dir.path(), 7);

    let first = QueryServer::recover(dir.path()).unwrap();
    let first_size = first.archive_size();
    let requests = workload(&initial);
    let first_responses = responses(&first, &requests);
    drop(first); // releases the WAL handle; no writes happened

    let second = QueryServer::recover(dir.path()).unwrap();
    assert_eq!(second.archive_size(), first_size);
    let second_responses = responses(&second, &requests);
    assert_eq!(first_responses, second_responses, "second recovery must change nothing");

    // And a third, for good measure — the truncation performed by the first
    // recovery must itself be stable.
    drop(second);
    let third = QueryServer::recover(dir.path()).unwrap();
    assert_eq!(responses(&third, &requests), first_responses);
}

/// A checkpoint with no subsequent writes restores the exact server: the
/// plain snapshot path, no WAL involved.
#[test]
fn checkpoint_without_wal_traffic_roundtrips() {
    let dir = ScratchDir::new("plain");
    let initial = generate(40, SEED + 3);
    let original = QueryServer::build(
        &initial,
        engine_config(SEED + 3),
        ServeConfig { shards: 4, cache_capacity: 64 },
    )
    .unwrap();
    original.checkpoint(dir.path()).unwrap();
    // Capture the original's answers, then drop it: recovery takes the WAL
    // file lock, which refuses to coexist with a live writer.
    let requests = workload(&initial);
    let expected_serve = original.serve_config();
    let expected_occupancy = original.stats().shard_occupancy;
    let expected_responses = responses(&original, &requests);
    drop(original);

    let recovered = QueryServer::recover(dir.path()).unwrap();
    assert_eq!(recovered.serve_config(), expected_serve);
    assert_eq!(
        recovered.stats().shard_occupancy,
        expected_occupancy,
        "shard layout must be restored verbatim"
    );
    assert_eq!(responses(&recovered, &requests), expected_responses, "snapshot-only recovery");
}

/// An incremental checkpoint after a one-patch ingest writes a small
/// fraction of the full snapshot, and retires the WAL segments the new
/// manifest no longer needs — the two headline properties of the
/// incremental design, asserted on the real write path.
#[test]
fn incremental_checkpoint_writes_a_fraction_and_retires_segments() {
    use agoraeo::earthqube::CheckpointKind;

    let dir = ScratchDir::new("fraction");
    let initial = generate(60, SEED + 7);
    let srv =
        QueryServer::build(&initial, engine_config(SEED + 7), ServeConfig::default()).unwrap();
    let full = srv.checkpoint(dir.path()).unwrap();
    assert_eq!(full.kind, CheckpointKind::Full);

    let extra = generate(1, 123_123);
    srv.ingest(extra.patches()).unwrap();
    let segments_before = segment_files(dir.path()).len();
    let incr = srv.checkpoint(dir.path()).unwrap();
    assert_eq!(incr.kind, CheckpointKind::Incremental);
    assert!(
        incr.bytes_written * 10 < full.bytes_written,
        "one dirty patch must checkpoint in <10% of the full snapshot \
         ({} vs {} bytes)",
        incr.bytes_written,
        full.bytes_written
    );
    assert_eq!(incr.segments_retired as usize, segments_before, "covered segments must retire");
    assert_eq!(segment_files(dir.path()).len(), 1, "only the fresh live segment remains");
}

/// A hole in the middle of the segment chain means records were lost;
/// recovery must refuse, never silently skip to the next segment.
#[test]
fn missing_middle_segment_is_a_hard_error() {
    let dir = ScratchDir::new("gap");
    let initial = generate(20, SEED + 5);
    let srv =
        QueryServer::build(&initial, engine_config(SEED + 5), ServeConfig::default()).unwrap();
    srv.checkpoint(dir.path()).unwrap();
    srv.set_segment_limit(1); // every synced batch seals its segment
    for seed in [901u64, 902, 903] {
        srv.ingest(generate(1, seed).patches()).unwrap();
    }
    drop(srv);
    let segments = segment_files(dir.path());
    assert!(segments.len() >= 3, "rotation must have produced a chain");
    std::fs::remove_file(&segments[1]).unwrap(); // punch a hole mid-chain
    let err = QueryServer::recover(dir.path()).unwrap_err();
    assert!(err.to_string().contains("missing segment"), "unexpected error: {err}");
}

/// A manifest whose chain start is gone while later segments survive is
/// stale — replaying only the surviving suffix would silently drop the
/// records of the missing segment, so recovery must refuse.
#[test]
fn chain_not_starting_at_first_segment_is_a_stale_manifest_error() {
    let dir = ScratchDir::new("stale_start");
    let initial = generate(20, SEED + 6);
    let srv =
        QueryServer::build(&initial, engine_config(SEED + 6), ServeConfig::default()).unwrap();
    srv.checkpoint(dir.path()).unwrap();
    srv.ingest(generate(2, 999_999).patches()).unwrap();
    srv.checkpoint(dir.path()).unwrap(); // incremental: chain restarts past segment 0
    srv.set_segment_limit(1);
    srv.ingest(generate(1, 999_998).patches()).unwrap(); // seals the chain start
    srv.ingest(generate(1, 999_997).patches()).unwrap();
    drop(srv);
    let segments = segment_files(dir.path());
    assert!(segments.len() >= 2);
    std::fs::remove_file(&segments[0]).unwrap(); // the manifest's first segment
    let err = QueryServer::recover(dir.path()).unwrap_err();
    assert!(err.to_string().contains("stale manifest"), "unexpected error: {err}");
}

/// Restoring a superseded manifest over an advanced directory must not
/// quietly resurrect the old checkpoint: the chunks and segments it
/// references were swept when its successor published.
#[test]
fn restored_old_manifest_over_an_advanced_directory_is_refused() {
    let dir = ScratchDir::new("old_manifest");
    let initial = generate(20, SEED + 8);
    let srv =
        QueryServer::build(&initial, engine_config(SEED + 8), ServeConfig::default()).unwrap();
    srv.checkpoint(dir.path()).unwrap();
    let old_manifest = std::fs::read(dir.path().join("manifest.eqm")).unwrap();
    srv.ingest(generate(2, 555_444).patches()).unwrap();
    srv.checkpoint(dir.path()).unwrap(); // supersedes: sweeps old shard chunks
    drop(srv);
    std::fs::write(dir.path().join("manifest.eqm"), &old_manifest).unwrap();
    assert!(QueryServer::recover(dir.path()).is_err(), "resurrected manifest must be refused");
}
