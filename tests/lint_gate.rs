//! Workspace lint gate: the root package's `cargo test` (the tier-1
//! command) runs the same static-analysis pass as
//! `cargo run -p eq_lint -- --deny-warnings`, so the serving-tier
//! invariants are enforced even when only the umbrella crate is tested.

use std::path::Path;

#[test]
fn workspace_lint_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = eq_lint::run_workspace(root).expect("lint pass runs without I/O errors");
    assert!(report.is_clean(true), "eq_lint found problems:\n{}", report.render());
}
