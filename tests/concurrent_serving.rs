//! Cross-crate tests of the concurrent serving layer: the `QueryServer`
//! must be a drop-in, thread-safe replacement for the sequential
//! `EarthQube` engine — byte-identical results, live ingest isolated from
//! queries, and a result cache that never serves stale data.

use agoraeo::bigearthnet::{Archive, ArchiveGenerator, GeneratorConfig};
use agoraeo::bigearthnet::{Country, Label};
use agoraeo::earthqube::{
    EarthQube, EarthQubeConfig, ImageQuery, LabelFilter, LabelOperator, QueryRequest, QueryServer,
    ServeConfig,
};
use agoraeo::geo::GeoShape;

const SEED: u64 = 4242;

fn generate(n: usize, seed: u64) -> Archive {
    ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate()
}

fn engine_config(seed: u64) -> EarthQubeConfig {
    let mut config = EarthQubeConfig::fast(seed);
    config.milan.epochs = 5;
    config
}

/// A mixed workload over the archive: CBIR + label + spatial queries.
fn workload(archive: &Archive) -> Vec<QueryRequest> {
    let mut requests = Vec::new();
    for (i, patch) in archive.patches().iter().enumerate().take(24) {
        requests.push(match i % 3 {
            0 => QueryRequest::SimilarTo { name: patch.meta.name.clone(), k: 8 },
            1 => QueryRequest::Metadata(ImageQuery::all().with_labels(LabelFilter::new(
                LabelOperator::Some,
                vec![Label::ALL[(i * 5) % Label::ALL.len()]],
            ))),
            _ => {
                QueryRequest::Metadata(ImageQuery::all().with_shape(GeoShape::Rect(
                    Country::ALL[i % Country::ALL.len()].bounding_box(),
                )))
            }
        });
    }
    requests
}

/// The concurrent server returns byte-identical `ResultPanel`s (and
/// statistics, and plans) to the sequential engine for a fixed seed,
/// regardless of the worker count.
#[test]
fn concurrent_results_are_identical_to_the_sequential_engine() {
    let archive = generate(80, SEED);
    let engine = EarthQube::build(&archive, engine_config(SEED)).unwrap();
    let server = QueryServer::build(&archive, engine_config(SEED), ServeConfig::default()).unwrap();
    let requests = workload(&archive);

    let sequential: Vec<_> = requests
        .iter()
        .map(|request| match request {
            QueryRequest::Metadata(q) => engine.search(q).unwrap(),
            QueryRequest::SimilarTo { name, k } => engine.similar_to(name, *k).unwrap(),
            QueryRequest::NewExample { patch, k } => {
                engine.search_by_new_example(patch, *k).unwrap()
            }
        })
        .collect();

    for workers in [1, 4, 8] {
        let concurrent = server.run_workload(&requests, workers);
        assert_eq!(concurrent.len(), sequential.len());
        for (got, want) in concurrent.into_iter().zip(&sequential) {
            let got = got.unwrap();
            assert_eq!(got.panel, want.panel, "panels must be byte-identical at {workers} workers");
            assert_eq!(got.statistics, want.statistics);
            assert_eq!(got.plan, want.plan);
        }
    }
}

/// Mixed query + ingest traffic: worker threads hammer the read path while
/// another thread appends patches through the write path.  Nothing panics,
/// every response is internally consistent, and afterwards the server's
/// answers are identical to a second server that applied the same ingests
/// sequentially.
#[test]
fn mixed_query_and_ingest_traffic_matches_sequential_execution() {
    let initial = generate(60, SEED + 1);
    let extra = generate(20, 999_999); // distinct seed → distinct patch names
    let server =
        QueryServer::build(&initial, engine_config(SEED + 1), ServeConfig::default()).unwrap();
    let requests = workload(&initial);

    std::thread::scope(|scope| {
        // Write path: ingest the extra patches a few at a time.
        let ingester = {
            let server = &server;
            let extra = &extra;
            scope.spawn(move || {
                for chunk in extra.patches().chunks(5) {
                    server.ingest(chunk).unwrap();
                }
            })
        };
        // Read path: four workers run the workload concurrently with ingest.
        for _ in 0..4 {
            let server = &server;
            let requests = &requests;
            scope.spawn(move || {
                for request in requests {
                    let response = server.execute(request).unwrap();
                    // Internal consistency even while ingest is running:
                    // distances sorted ascending, no duplicate names.
                    let page = response.panel.page(0);
                    let mut prev = 0u32;
                    for entry in &page.entries {
                        if let Some(d) = entry.distance {
                            assert!(d >= prev, "distances must be sorted");
                            prev = d;
                        }
                    }
                    let mut names: Vec<&String> = page.entries.iter().map(|e| &e.name).collect();
                    names.sort();
                    names.dedup();
                    assert_eq!(names.len(), page.entries.len(), "no duplicate results");
                }
            });
        }
        ingester.join().unwrap();
    });

    assert_eq!(server.archive_size(), 80);
    assert_eq!(server.stats().ingested_images, 20);

    // Reference: the same initial engine state with the same ingests applied
    // sequentially (the model build is deterministic for a fixed seed).
    let reference =
        QueryServer::build(&initial, engine_config(SEED + 1), ServeConfig::default()).unwrap();
    reference.ingest(extra.patches()).unwrap();

    let mut post_requests = workload(&initial);
    // Also query the live-ingested images.
    for patch in extra.patches().iter().take(6) {
        post_requests.push(QueryRequest::SimilarTo { name: patch.meta.name.clone(), k: 6 });
    }
    let got = server.run_workload(&post_requests, 4);
    let want = reference.run_workload(&post_requests, 1);
    for (g, w) in got.into_iter().zip(want) {
        assert_eq!(g.unwrap(), w.unwrap(), "concurrent ingest must converge to sequential state");
    }
}

/// Regression: a cached result must not survive an ingest that changes it.
#[test]
fn cache_is_invalidated_on_ingest() {
    let initial = generate(30, SEED + 2);
    let extra = generate(4, 888_888);
    let server =
        QueryServer::build(&initial, engine_config(SEED + 2), ServeConfig::default()).unwrap();

    // Prime the cache.
    let everything = ImageQuery::all();
    assert_eq!(server.search(&everything).unwrap().total(), 30);
    assert_eq!(server.search(&everything).unwrap().total(), 30);
    let stats = server.stats();
    assert_eq!(stats.cache_hits, 1, "second identical query must be a cache hit");
    assert!(stats.cache_entries > 0);

    server.ingest(extra.patches()).unwrap();

    // The post-ingest answer reflects the appended images — a stale cached
    // panel of 30 entries would fail this.
    assert_eq!(server.search(&everything).unwrap().total(), 34);
    // And the new images are immediately retrievable by similarity.
    let response = server.similar_to(&extra.patches()[0].meta.name, 5).unwrap();
    assert!(response.total() > 0);
}

/// The serving counters add up across a workload.
#[test]
fn server_stats_track_the_workload() {
    let archive = generate(25, SEED + 3);
    let server =
        QueryServer::build(&archive, engine_config(SEED + 3), ServeConfig::default()).unwrap();
    let requests = workload(&archive);
    // Two full passes: the first fills the cache, the second repeats every
    // query and must be answered from it entirely.
    for _ in 0..2 {
        let results = server.run_workload(&requests, 4);
        assert!(results.iter().all(Result::is_ok));
    }

    let stats = server.stats();
    assert_eq!(stats.queries_served, 2 * requests.len() as u64);
    assert!(stats.cache_hits >= requests.len() as u64, "stats: {stats:?}");
    assert!(stats.cache_hit_rate() > 0.0);
    assert_eq!(stats.archive_size, 25);
    assert_eq!(stats.shard_occupancy.len(), ServeConfig::default().shards);
    assert_eq!(stats.shard_occupancy.iter().sum::<usize>(), 25);
}
