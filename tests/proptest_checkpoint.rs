//! Property-based convergence: an arbitrary interleaving of ingest batches,
//! incremental checkpoints, clean crashes, torn-tail crashes and
//! crash-injected checkpoints must end up answering queries exactly like a
//! reference server that saw the same ingests and then took one full
//! checkpoint into a fresh lineage (a fresh generation tag).
//!
//! This binary holds a single test on purpose: the crash-point registry is
//! process-global, and a second concurrently running checkpoint test would
//! trip points armed here.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use agoraeo::bigearthnet::{Archive, ArchiveGenerator, Country, GeneratorConfig, Label};
use agoraeo::earthqube::failpoints;
use agoraeo::earthqube::{
    EarthQubeConfig, ImageQuery, LabelFilter, LabelOperator, QueryRequest, QueryServer,
    SearchResponse, ServeConfig,
};
use agoraeo::geo::GeoShape;
use proptest::prelude::*;

const SEED: u64 = 40_412;
const INITIAL: usize = 20;
/// Large enough for the worst case: 8 ops, every one an ingest of 3.
const POOL: usize = 24;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Ingest the next `n` patches from the fixed pool.
    Ingest(usize),
    /// Incremental checkpoint into the attached directory (may skip).
    Checkpoint,
    /// Drop the server and recover from disk.
    Crash,
    /// Crash, then scribble a partial record onto the live WAL segment —
    /// the torn tail of a write that never returned to its caller.
    CrashTorn,
    /// Arm the indexed declared crash point, attempt a checkpoint, crash.
    CrashAtPoint(usize),
}

fn decode(raw: &[(usize, usize)]) -> Vec<Op> {
    raw.iter()
        .map(|&(sel, param)| match sel {
            0 | 1 => Op::Ingest(1 + param % 3),
            2 => Op::Checkpoint,
            3 => Op::Crash,
            4 => Op::CrashTorn,
            _ => Op::CrashAtPoint(param % failpoints::ALL_POINTS.len()),
        })
        .collect()
}

fn generate(n: usize, seed: u64) -> Archive {
    ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate()
}

fn engine_config(seed: u64) -> EarthQubeConfig {
    let mut config = EarthQubeConfig::fast(seed);
    config.milan.epochs = 5;
    config
}

fn workload(archive: &Archive) -> Vec<QueryRequest> {
    let mut requests = Vec::new();
    for (i, patch) in archive.patches().iter().enumerate().take(12) {
        requests.push(match i % 4 {
            0 => QueryRequest::SimilarTo { name: patch.meta.name.clone(), k: 8 },
            1 => QueryRequest::Metadata(ImageQuery::all().with_labels(LabelFilter::new(
                LabelOperator::Some,
                vec![Label::ALL[(i * 5) % Label::ALL.len()]],
            ))),
            2 => {
                QueryRequest::Metadata(ImageQuery::all().with_shape(GeoShape::Rect(
                    Country::ALL[i % Country::ALL.len()].bounding_box(),
                )))
            }
            _ => QueryRequest::NewExample {
                patch: Box::new(
                    ArchiveGenerator::new(GeneratorConfig::tiny(1, 90_000 + i as u64))
                        .unwrap()
                        .generate_patch(0),
                ),
                k: 6,
            },
        });
    }
    requests
}

fn responses(server: &QueryServer, requests: &[QueryRequest]) -> Vec<SearchResponse> {
    requests.iter().map(|r| server.execute(r).unwrap()).collect()
}

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("eq_prop_{tag}_{}_{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        ScratchDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let path = entry.unwrap().path();
        if path.is_file() {
            std::fs::copy(&path, dst.join(path.file_name().unwrap())).unwrap();
        }
    }
}

/// Appends a partial record frame to the highest-indexed WAL segment —
/// what a kill mid-`append` (before the sync acknowledged the write)
/// leaves behind.  Recovery must truncate it, not refuse the chain.
fn scribble_torn_tail(dir: &Path) {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name()?.to_str()?.to_string();
            (name.starts_with("wal.") && name.ends_with(".eqw")).then_some(p)
        })
        .collect();
    segments.sort();
    let live = segments.last().expect("an attached directory always has a live segment");
    let mut file = std::fs::OpenOptions::new().append(true).open(live).unwrap();
    file.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x01]).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The convergence property from the issue: whatever the interleaving,
    /// the final recovered state answers the fixed workload exactly like a
    /// reference that ingested the same batches and took a single full
    /// checkpoint (fresh generation, fresh segment lineage, no deltas).
    #[test]
    fn interleavings_converge_to_a_single_full_checkpoint(
        raw in proptest::collection::vec((0usize..6, 0usize..24), 1..9),
    ) {
        let ops = decode(&raw);
        let initial = generate(INITIAL, SEED);
        let pool = generate(POOL, SEED + 1);
        let requests = workload(&initial);

        // One trained base checkpoint per case keeps the property about
        // persistence, not training.
        let dir = ScratchDir::new("ivl");
        let base = dir.path().join("base");
        QueryServer::build(&initial, engine_config(SEED), ServeConfig::default())
            .unwrap()
            .checkpoint(&base)
            .unwrap();

        // --- Subject: replay the interleaving against `live`. ---------
        let live = dir.path().join("live");
        copy_dir(&base, &live);
        let mut srv = QueryServer::recover(&live).unwrap();
        // Small segments so rotation, retirement and orphan segments all
        // actually occur inside an 8-op interleaving.
        srv.set_segment_limit(1);
        let mut batches: Vec<usize> = Vec::new();
        let mut cursor = 0usize;
        for op in &ops {
            match *op {
                Op::Ingest(n) => {
                    let n = n.min(POOL - cursor);
                    if n == 0 {
                        continue;
                    }
                    srv.ingest(&pool.patches()[cursor..cursor + n]).unwrap();
                    cursor += n;
                    batches.push(n);
                }
                Op::Checkpoint => {
                    srv.checkpoint(&live).unwrap();
                }
                Op::Crash => {
                    drop(srv);
                    srv = QueryServer::recover(&live).unwrap();
                    srv.set_segment_limit(1);
                }
                Op::CrashTorn => {
                    drop(srv);
                    scribble_torn_tail(&live);
                    srv = QueryServer::recover(&live).unwrap();
                    srv.set_segment_limit(1);
                }
                Op::CrashAtPoint(point) => {
                    // The checkpoint may abort at the point (dirty state is
                    // restored) or skip before reaching it (nothing dirty);
                    // either way the directory is a legal crash boundary.
                    failpoints::arm(failpoints::ALL_POINTS[point]);
                    let _ = srv.checkpoint(&live);
                    failpoints::disarm();
                    drop(srv);
                    srv = QueryServer::recover(&live).unwrap();
                    srv.set_segment_limit(1);
                }
            }
            prop_assert_eq!(srv.archive_size(), INITIAL + cursor);
        }
        drop(srv);
        let subject = QueryServer::recover(&live).unwrap();
        prop_assert_eq!(subject.archive_size(), INITIAL + cursor);

        // --- Reference: same batches, one full checkpoint. ------------
        let refdir = dir.path().join("reference");
        copy_dir(&base, &refdir);
        let reference = QueryServer::recover(&refdir).unwrap();
        let mut at = 0usize;
        for &n in &batches {
            reference.ingest(&pool.patches()[at..at + n]).unwrap();
            at += n;
        }
        // Checkpointing into a directory the server is not attached to
        // always writes a full snapshot under a fresh generation tag.
        let full = dir.path().join("full");
        reference.checkpoint(&full).unwrap();
        drop(reference);
        let oracle = QueryServer::recover(&full).unwrap();

        prop_assert_eq!(responses(&subject, &requests), responses(&oracle, &requests));
    }
}
