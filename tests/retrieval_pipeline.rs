//! Cross-crate integration tests for the retrieval pipeline:
//! features → MiLaN codes → Hamming indexes → retrieval metrics.
//!
//! These tests pin the *shape* of the paper's claims: all index variants
//! return identical result sets, hash-based retrieval is semantically
//! meaningful, and the learned codes beat untrained codes.

use agoraeo::bigearthnet::{ArchiveGenerator, GeneratorConfig};
use agoraeo::hashindex::{
    HammingIndex, HashTableIndex, LinearScanIndex, MultiIndexHashing, RandomHyperplaneHasher,
};
use agoraeo::milan::{
    mean_average_precision, CodeStatistics, FeatureExtractor, Milan, MilanConfig, Normalizer,
    TrainingDataset,
};

fn trained_setup(n: usize, seed: u64, bits: u32) -> (agoraeo::bigearthnet::Archive, Milan) {
    let archive = ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate();
    let dataset = TrainingDataset::from_archive(&archive);
    let mut model =
        Milan::new(MilanConfig { epochs: 20, ..MilanConfig::fast(bits, seed) }).unwrap();
    model.train(&dataset);
    (archive, model)
}

#[test]
fn all_hamming_indexes_agree_on_milan_codes() {
    let (archive, model) = trained_setup(150, 201, 64);
    let codes = model.hash_archive(&archive);

    let mut table = HashTableIndex::new(64);
    let mut linear = LinearScanIndex::new(64);
    let mut mih = MultiIndexHashing::new(64, 4);
    for (i, c) in codes.iter().enumerate() {
        table.insert(i as u64, c.clone());
        linear.insert(i as u64, c.clone());
        mih.insert(i as u64, c.clone());
    }

    for q in (0..codes.len()).step_by(17) {
        for radius in [0u32, 4, 10] {
            let a = table.radius_search(&codes[q], radius);
            let b = linear.radius_search(&codes[q], radius);
            let c = mih.radius_search(&codes[q], radius);
            assert_eq!(a, b, "hash table vs linear scan disagree (q={q}, r={radius})");
            assert_eq!(b, c, "linear scan vs MIH disagree (q={q}, r={radius})");
        }
        let ka = table.knn(&codes[q], 10);
        let kb = linear.knn(&codes[q], 10);
        assert_eq!(ka, kb, "kNN mismatch at q={q}");
    }
}

#[test]
fn hamming_neighbours_share_labels_more_often_than_random_pairs() {
    let (archive, model) = trained_setup(250, 202, 64);
    let codes = model.hash_archive(&archive);
    let mut index = HashTableIndex::new(64);
    for (i, c) in codes.iter().enumerate() {
        index.insert(i as u64, c.clone());
    }

    let mut neighbour_hits = 0usize;
    let mut neighbour_total = 0usize;
    let mut random_hits = 0usize;
    let mut random_total = 0usize;
    for q in (0..archive.len()).step_by(5) {
        let q_labels = archive.patches()[q].meta.labels;
        for n in index.knn(&codes[q], 6).into_iter().skip(1) {
            neighbour_total += 1;
            if archive.patches()[n.id as usize].meta.labels.intersects(q_labels) {
                neighbour_hits += 1;
            }
        }
        // Random pairs: compare against a fixed stride of unrelated patches.
        for offset in [37usize, 91, 133] {
            let other = (q + offset) % archive.len();
            if other != q {
                random_total += 1;
                if archive.patches()[other].meta.labels.intersects(q_labels) {
                    random_hits += 1;
                }
            }
        }
    }
    let neighbour_rate = neighbour_hits as f64 / neighbour_total as f64;
    let random_rate = random_hits as f64 / random_total as f64;
    assert!(
        neighbour_rate > random_rate,
        "Hamming neighbours ({neighbour_rate:.3}) should share labels more often than random pairs ({random_rate:.3})"
    );
}

#[test]
fn trained_codes_outperform_untrained_lsh_codes() {
    let (archive, model) = trained_setup(300, 203, 96);
    let extractor = FeatureExtractor::new();
    let features = extractor.extract_all(&archive);
    let normalizer = Normalizer::fit(&features);
    let normalized = normalizer.apply_all(&features);

    let milan_codes = model.hash_archive(&archive);
    let lsh = RandomHyperplaneHasher::new(normalized[0].len(), 96, 203);
    let lsh_codes: Vec<_> = normalized.iter().map(|f| lsh.hash(f)).collect();

    let map_of = |codes: &[agoraeo::hashindex::BinaryCode]| {
        let mut queries = Vec::new();
        for q in (0..archive.len()).step_by(7) {
            let q_labels = archive.patches()[q].meta.labels;
            let mut ranked: Vec<(u32, usize)> = (0..archive.len())
                .filter(|i| *i != q)
                .map(|i| (codes[q].hamming_distance(&codes[i]), i))
                .collect();
            ranked.sort_unstable();
            let rel: Vec<bool> = ranked
                .iter()
                .map(|(_, i)| archive.patches()[*i].meta.labels.intersects(q_labels))
                .collect();
            let total = rel.iter().filter(|r| **r).count();
            queries.push((rel, total));
        }
        mean_average_precision(&queries, 10)
    };

    let milan_map = map_of(&milan_codes);
    let lsh_map = map_of(&lsh_codes);
    assert!(
        milan_map > lsh_map,
        "metric-learned codes (mAP {milan_map:.3}) must beat untrained LSH codes (mAP {lsh_map:.3})"
    );
}

#[test]
fn code_statistics_show_the_effect_of_the_regularisers() {
    let (archive, model) = trained_setup(200, 204, 64);
    let stats = CodeStatistics::from_codes(&model.hash_archive(&archive));
    assert_eq!(stats.bits, 64);
    assert_eq!(stats.count, archive.len());
    // Trained codes occupy many buckets rather than collapsing.
    assert!(
        stats.distinct_codes > archive.len() / 4,
        "codes collapsed: {} buckets",
        stats.distinct_codes
    );
    // And no bit is permanently stuck for every image.
    assert!(stats.balance_deviation < 0.5);
}

#[test]
fn external_patch_encoding_is_stable_across_calls() {
    let (archive, model) = trained_setup(100, 205, 64);
    let external =
        ArchiveGenerator::new(GeneratorConfig::tiny(1, 11111)).unwrap().generate_patch(0);
    let a = model.hash_patch(&external);
    let b = model.hash_patch(&external);
    assert_eq!(a, b);
    assert_eq!(a.bits(), 64);
    // And differs from (almost all) archive codes: it is a new image.
    let archive_codes = model.hash_archive(&archive);
    let identical = archive_codes.iter().filter(|c| **c == a).count();
    assert!(identical < archive.len() / 2);
}
