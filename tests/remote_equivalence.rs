//! Remote equivalence: the same ingest + query workload driven (a)
//! directly on a `QueryServer` and (b) through `EqClient` over loopback
//! must produce identical results — equal response values, **byte-equal**
//! protocol encodings, identical result ids/scores, and identical stats
//! deltas.  Two servers are built from the same seed (every build step is
//! deterministic), one per path, so even the serving counters must agree.

use std::sync::Arc;

use agoraeo::bigearthnet::{Archive, ArchiveGenerator, GeneratorConfig, Label};
use agoraeo::earthqube::net::{response_to_payload, EqClient, NetServer};
use agoraeo::earthqube::{
    EarthQubeConfig, ImageQuery, LabelFilter, LabelOperator, PrefilterMode, QueryRequest,
    QueryServer, SearchResponse, ServeConfig,
};
use agoraeo::geo::GeoShape;

fn build_server(archive: &Archive, seed: u64) -> QueryServer {
    let mut config = EarthQubeConfig::fast(seed);
    config.milan.epochs = 3; // train for real: the workload exercises CBIR
    QueryServer::build(archive, config, ServeConfig::default()).unwrap()
}

/// The shared workload: metadata searches (filtered and unfiltered),
/// CBIR neighbour queries, query-by-new-example, and one failing request.
fn workload(archive: &Archive) -> Vec<QueryRequest> {
    let mut requests = vec![
        QueryRequest::Metadata(ImageQuery::all()),
        QueryRequest::Metadata(ImageQuery::all().with_labels(LabelFilter::new(
            LabelOperator::Some,
            vec![Label::MixedForest, Label::SeaAndOcean],
        ))),
        QueryRequest::Metadata(
            ImageQuery::all()
                .with_shape(GeoShape::Rect(agoraeo::bigearthnet::Country::Portugal.bounding_box())),
        ),
    ];
    for patch in archive.patches().iter().take(6) {
        requests.push(QueryRequest::SimilarTo { name: patch.meta.name.clone(), k: 7 });
    }
    let external = ArchiveGenerator::new(GeneratorConfig::tiny(1, 4242)).unwrap().generate_patch(0);
    requests.push(QueryRequest::NewExample { patch: Box::new(external), k: 5 });
    requests.push(QueryRequest::SimilarTo { name: "ghost".into(), k: 3 });
    requests
}

fn assert_byte_identical(local: &SearchResponse, remote: &SearchResponse, what: &str) {
    assert_eq!(remote, local, "{what}: remote response differs from in-process");
    // Equality of the Rust values could in principle hide encoding
    // differences; pin the protocol bytes too.
    let mut local_bytes = agoraeo::wire::Writer::new();
    response_to_payload(local).encode(&mut local_bytes);
    let mut remote_bytes = agoraeo::wire::Writer::new();
    response_to_payload(remote).encode(&mut remote_bytes);
    assert_eq!(
        local_bytes.as_bytes(),
        remote_bytes.as_bytes(),
        "{what}: remote response encodes to different bytes"
    );
}

#[test]
fn remote_workload_is_byte_identical_to_in_process() {
    let archive = ArchiveGenerator::new(GeneratorConfig::tiny(40, 501)).unwrap().generate();
    let extra = ArchiveGenerator::new(GeneratorConfig::tiny(4, 777)).unwrap().generate();
    let requests = workload(&archive);

    // Path (a): in-process, including a live ingest mid-workload.
    let local = build_server(&archive, 501);
    let local_before = local.stats();
    let local_ingest = local.ingest(extra.patches()).unwrap();
    let local_results: Vec<_> = requests.iter().map(|r| local.execute(r)).collect();
    let local_after = local.stats();

    // Path (b): the identical server driven through the wire.
    let remote = Arc::new(build_server(&archive, 501));
    let net = NetServer::bind(Arc::clone(&remote), "127.0.0.1:0", 2).unwrap();
    let mut client = EqClient::connect(net.local_addr()).unwrap();
    let remote_before = client.stats().unwrap();
    let remote_ingest = client.ingest(extra.patches()).unwrap();
    let remote_results = client.run_batch(&requests).unwrap();
    let remote_after = client.stats().unwrap();

    // Ingest reports agree.
    assert_eq!(remote_ingest, local_ingest);

    // Every workload slot agrees: same result ids (names), same scores
    // (hamming distances), same statistics, byte-identical encodings;
    // failing requests reconstruct the same error.
    assert_eq!(remote_results.len(), local_results.len());
    for (i, (remote_result, local_result)) in remote_results.iter().zip(&local_results).enumerate()
    {
        match (remote_result, local_result) {
            (Ok(remote), Ok(local)) => assert_byte_identical(local, remote, &format!("slot {i}")),
            (Err(remote), Err(local)) => {
                assert_eq!(remote, local, "slot {i}: error variants differ")
            }
            (r, l) => panic!("slot {i}: remote {r:?} vs in-process {l:?}"),
        }
    }

    // Stats deltas agree: the wire adds no phantom queries and loses none.
    assert_eq!(remote_before, local_before, "pre-workload stats differ");
    assert_eq!(
        remote_after.queries_served - remote_before.queries_served,
        local_after.queries_served - local_before.queries_served
    );
    assert_eq!(
        remote_after.cache_misses - remote_before.cache_misses,
        local_after.cache_misses - local_before.cache_misses
    );
    assert_eq!(remote_after.ingested_images, local_after.ingested_images);
    assert_eq!(remote_after.archive_size, local_after.archive_size);
    assert_eq!(remote_after.shard_occupancy, local_after.shard_occupancy);

    // And the full post-workload snapshots, transported over the wire,
    // agree with the in-process view of the remote server itself.
    assert_eq!(remote_after, remote.stats());

    net.shutdown();
}

/// Filtered similarity search crosses the wire unchanged: the response is
/// byte-identical to the in-process call and the execution plan —
/// strategy, candidate count, residual flag, matching population — is
/// reported identically for every prefilter mode, for both the top-k and
/// the radius variant.
#[test]
fn filtered_search_is_byte_identical_over_the_wire() {
    let archive = ArchiveGenerator::new(GeneratorConfig::tiny(30, 503)).unwrap().generate();
    let server = Arc::new(build_server(&archive, 503));
    let net = NetServer::bind(Arc::clone(&server), "127.0.0.1:0", 2).unwrap();
    let mut client = EqClient::connect(net.local_addr()).unwrap();

    let query = ImageQuery::all().with_labels(LabelFilter::new(
        LabelOperator::Some,
        vec![Label::MixedForest, Label::SeaAndOcean, Label::Pastures],
    ));
    let name = &archive.patches()[2].meta.name;
    for mode in [PrefilterMode::Auto, PrefilterMode::ForceBitmap, PrefilterMode::ForcePostFilter] {
        let local = server.similar_to_filtered(name, 8, &query, mode).unwrap();
        let remote = client.similar_to_filtered(name, 8, &query, mode).unwrap();
        assert_eq!(remote.plan, local.plan, "top-k plan differs under {mode:?}");
        assert_byte_identical(
            &local.response,
            &remote.response,
            &format!("similar_to_filtered under {mode:?}"),
        );

        let local = server.similar_within_filtered(name, 24, &query, mode).unwrap();
        let remote = client.similar_within_filtered(name, 24, &query, mode).unwrap();
        assert_eq!(remote.plan, local.plan, "radius plan differs under {mode:?}");
        assert_byte_identical(
            &local.response,
            &remote.response,
            &format!("similar_within_filtered under {mode:?}"),
        );
    }

    // Failing filtered requests reconstruct the same typed error too.
    let local = server.similar_to_filtered("ghost", 3, &query, PrefilterMode::Auto);
    let remote = client.similar_to_filtered("ghost", 3, &query, PrefilterMode::Auto);
    assert_eq!(remote.unwrap_err(), local.unwrap_err());

    net.shutdown();
}

/// Re-running a (sub)workload through the cache must be equivalent over
/// the wire too: the second pass is served from the result cache, and the
/// responses are still byte-identical to in-process ones.
#[test]
fn cached_responses_cross_the_wire_unchanged() {
    let archive = ArchiveGenerator::new(GeneratorConfig::tiny(18, 502)).unwrap().generate();
    let server = Arc::new(build_server(&archive, 502));
    let net = NetServer::bind(Arc::clone(&server), "127.0.0.1:0", 2).unwrap();
    let mut client = EqClient::connect(net.local_addr()).unwrap();

    let name = &archive.patches()[0].meta.name;
    let first = client.similar_to(name, 5).unwrap();
    let second = client.similar_to(name, 5).unwrap();
    assert_eq!(first, second);
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert_byte_identical(&server.similar_to(name, 5).unwrap(), &second, "cached similar_to");
    net.shutdown();
}
