//! Crash-point injection: every declared persistence failpoint is armed in
//! turn, the checkpoint is killed at exactly that I/O boundary, and the
//! directory must recover to byte-identical query answers.
//!
//! The failpoint registry is process-global (one armed point at a time),
//! so this suite lives in its own test binary: arming a point here can
//! never trip a checkpoint running concurrently in another test.

use std::path::{Path, PathBuf};

use agoraeo::bigearthnet::{Archive, ArchiveGenerator, Country, GeneratorConfig, Label};
use agoraeo::earthqube::failpoints;
use agoraeo::earthqube::{
    EarthQubeConfig, ImageQuery, LabelFilter, LabelOperator, QueryRequest, QueryServer,
    SearchResponse, ServeConfig,
};
use agoraeo::geo::GeoShape;

const SEED: u64 = 6161;

fn generate(n: usize, seed: u64) -> Archive {
    ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate()
}

fn engine_config(seed: u64) -> EarthQubeConfig {
    let mut config = EarthQubeConfig::fast(seed);
    config.milan.epochs = 5;
    config
}

/// The same determinism mix as `persistence_recovery.rs`: CBIR, label,
/// spatial and query-by-new-example traffic.
fn workload(archive: &Archive) -> Vec<QueryRequest> {
    let mut requests = Vec::new();
    for (i, patch) in archive.patches().iter().enumerate().take(16) {
        requests.push(match i % 4 {
            0 => QueryRequest::SimilarTo { name: patch.meta.name.clone(), k: 8 },
            1 => QueryRequest::Metadata(ImageQuery::all().with_labels(LabelFilter::new(
                LabelOperator::Some,
                vec![Label::ALL[(i * 5) % Label::ALL.len()]],
            ))),
            2 => {
                QueryRequest::Metadata(ImageQuery::all().with_shape(GeoShape::Rect(
                    Country::ALL[i % Country::ALL.len()].bounding_box(),
                )))
            }
            _ => QueryRequest::NewExample {
                patch: Box::new(
                    ArchiveGenerator::new(GeneratorConfig::tiny(1, 50_000 + i as u64))
                        .unwrap()
                        .generate_patch(0),
                ),
                k: 6,
            },
        });
    }
    requests
}

fn responses(server: &QueryServer, requests: &[QueryRequest]) -> Vec<SearchResponse> {
    requests.iter().map(|r| server.execute(r).unwrap()).collect()
}

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!("eq_crash_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        ScratchDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Clones a checkpoint directory file-by-file, so every crash scenario
/// starts from the same expensive-to-build base without rebuilding it.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let path = entry.unwrap().path();
        if path.is_file() {
            std::fs::copy(&path, dst.join(path.file_name().unwrap())).unwrap();
        }
    }
}

/// The tentpole acceptance scenario: for **every** declared crash point —
/// segment pre-create, header sync, chunk write/sync, the four manifest
/// publication steps, segment retirement and chunk GC — kill an
/// incremental checkpoint exactly there, recover the directory, and
/// demand byte-identical answers to an uncrashed reference.  Iterating
/// `failpoints::ALL_POINTS` means a newly declared point can never be
/// silently skipped by this suite.
#[test]
fn every_declared_crash_point_recovers_byte_identically() {
    let dir = ScratchDir::new("matrix");
    let base = dir.path().join("base");
    let initial = generate(30, SEED);
    let extra = generate(2, 888_888);
    let requests = workload(&initial);

    // One expensive build; every scenario below re-clones this checkpoint.
    {
        let srv =
            QueryServer::build(&initial, engine_config(SEED), ServeConfig::default()).unwrap();
        srv.checkpoint(&base).unwrap();
    }

    // The uncrashed reference: the same post-checkpoint ingest, no kill.
    let expected = {
        let refdir = dir.path().join("reference");
        copy_dir(&base, &refdir);
        let srv = QueryServer::recover(&refdir).unwrap();
        for patch in extra.patches() {
            srv.ingest(std::slice::from_ref(patch)).unwrap();
        }
        responses(&srv, &requests)
    };

    for (i, point) in failpoints::ALL_POINTS.iter().enumerate() {
        let crash_dir = dir.path().join(format!("point_{i}"));
        copy_dir(&base, &crash_dir);
        let srv = QueryServer::recover(&crash_dir).unwrap();
        for patch in extra.patches() {
            srv.ingest(std::slice::from_ref(patch)).unwrap();
        }

        let fired_before = failpoints::fired_count();
        assert!(failpoints::arm(point), "`{point}` is not a declared failpoint");
        let result = srv.checkpoint(&crash_dir);
        failpoints::disarm();
        assert!(result.is_err(), "failpoint `{point}` must abort the checkpoint");
        assert!(
            failpoints::fired_count() > fired_before,
            "failpoint `{point}` is declared but the checkpoint never reached it"
        );
        drop(srv); // the "kill": the directory is frozen at the crash boundary

        let recovered = QueryServer::recover(&crash_dir)
            .unwrap_or_else(|e| panic!("recovery after a crash at `{point}` failed: {e}"));
        assert_eq!(recovered.archive_size(), 32, "crash at `{point}` lost ingested images");
        assert_eq!(
            responses(&recovered, &requests),
            expected,
            "crash at `{point}` must recover byte-identically"
        );
        // The survivor is fully operational: it can checkpoint cleanly and
        // the next recovery still answers identically (GC debris from the
        // crash — orphan chunks, retired segments — is swept, not fatal).
        recovered.checkpoint(&crash_dir).unwrap();
        drop(recovered);
        let again = QueryServer::recover(&crash_dir).unwrap();
        assert_eq!(responses(&again, &requests), expected, "post-crash checkpoint at `{point}`");
    }
}

/// A crash *during a full checkpoint into a fresh lineage* (simulated at
/// the chunk-write boundary) leaves orphan chunks and possibly a
/// foreign-generation segment behind; the original directory's state must
/// be untouched by the failed attempt and keep recovering.
#[test]
fn crashed_full_checkpoint_leaves_the_old_lineage_recoverable() {
    let dir = ScratchDir::new("full");
    let initial = generate(12, SEED + 1);
    let srv =
        QueryServer::build(&initial, engine_config(SEED + 1), ServeConfig::default()).unwrap();
    srv.checkpoint(dir.path()).unwrap();
    srv.ingest(generate(2, 777_111).patches()).unwrap();
    let requests = workload(&initial);
    let expected = responses(&srv, &requests);

    // A full checkpoint into a *different* directory dies at chunk-write.
    let other = dir.path().join("other");
    assert!(failpoints::arm("chunk-write"));
    let result = srv.checkpoint(&other);
    failpoints::disarm();
    assert!(result.is_err());
    drop(srv);

    // The original directory never saw the failed attempt.
    let recovered = QueryServer::recover(dir.path()).unwrap();
    assert_eq!(recovered.archive_size(), 14);
    assert_eq!(responses(&recovered, &requests), expected);
    // The aborted target holds no manifest, so recovering it is refused.
    assert!(QueryServer::recover(&other).is_err());
}
