//! Fault injection against the network serving tier: every transport-level
//! abuse — mid-frame disconnects, hostile length prefixes, garbage
//! preambles, checksum corruption, slow-trickle writers — must error *the
//! one faulty connection* cleanly while every other connection keeps being
//! served.  A healthy client stays connected across the whole gauntlet and
//! must observe correct responses after each fault.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use agoraeo::bigearthnet::{ArchiveGenerator, GeneratorConfig};
use agoraeo::earthqube::net::{EqClient, NetConfig, NetServer};
use agoraeo::earthqube::{EarthQubeConfig, ImageQuery, QueryServer, ServeConfig};
use agoraeo::proto;

fn serve(n: usize, seed: u64) -> (NetServer, Arc<QueryServer>) {
    let (net, server) = serve_with(n, seed, NetConfig { workers: 3, ..NetConfig::default() });
    (net, server)
}

fn serve_with(n: usize, seed: u64, net_config: NetConfig) -> (NetServer, Arc<QueryServer>) {
    let archive = ArchiveGenerator::new(GeneratorConfig::tiny(n, seed)).unwrap().generate();
    let mut config = EarthQubeConfig::fast(seed);
    config.train_model = false;
    let server = Arc::new(QueryServer::build(&archive, config, ServeConfig::default()).unwrap());
    let net = NetServer::bind_with(Arc::clone(&server), "127.0.0.1:0", net_config).unwrap();
    (net, server)
}

/// A valid ping request frame, as raw bytes to corrupt at will.
fn ping_frame() -> Vec<u8> {
    let mut buf = Vec::new();
    proto::write_request(&mut buf, &proto::Request { id: 77, body: proto::RequestBody::Ping })
        .unwrap();
    buf
}

/// Reads until the server closes the connection, returning the bytes it
/// sent first (the best-effort error frame, if any).
fn drain_to_close(stream: &mut TcpStream) -> Vec<u8> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    out
}

/// Asserts the server answered the faulty connection with a best-effort
/// `BadRequest` error frame before closing it.
fn assert_error_frame_then_close(stream: &mut TcpStream) {
    let bytes = drain_to_close(stream);
    let response = proto::read_response(&mut std::io::Cursor::new(&bytes))
        .expect("the pre-close bytes are one well-formed response frame")
        .expect("an error frame, not a bare close");
    match response.body {
        proto::ResponseBody::Error(payload) => {
            assert_eq!(payload.code, proto::ErrorCode::BadRequest);
            assert!(!payload.message.is_empty());
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
}

#[test]
fn every_fault_is_isolated_to_its_connection() {
    let (net, server) = serve(20, 401);
    let addr = net.local_addr();

    // The canary: a healthy client connected for the whole gauntlet.
    let mut healthy = EqClient::connect(addr).unwrap();
    healthy.ping().unwrap();
    let expected_all = server.search(&ImageQuery::all()).unwrap();

    // --- Fault 1: mid-frame disconnect -----------------------------------
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let frame = ping_frame();
        stream.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(stream); // die mid-frame
    }
    assert_eq!(healthy.search(&ImageQuery::all()).unwrap(), expected_all);

    // --- Fault 2: oversized length prefix --------------------------------
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut frame = Vec::new();
        frame.extend_from_slice(&proto::REQUEST_MAGIC);
        frame.extend_from_slice(&u32::MAX.to_le_bytes()); // 4 GiB, says the liar
        frame.extend_from_slice(&0u32.to_le_bytes());
        stream.write_all(&frame).unwrap();
        // The server must reject the length *without* trying to read (or
        // allocate) 4 GiB, reply with an error frame, and close.
        assert_error_frame_then_close(&mut stream);
    }
    assert_eq!(healthy.search(&ImageQuery::all()).unwrap(), expected_all);

    // --- Fault 3: garbage preamble ---------------------------------------
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\nHost: earthqube\r\n\r\n").unwrap();
        assert_error_frame_then_close(&mut stream);
    }
    assert_eq!(healthy.search(&ImageQuery::all()).unwrap(), expected_all);

    // --- Fault 4: CRC-corrupted body -------------------------------------
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut frame = ping_frame();
        let last = frame.len() - 1;
        frame[last] ^= 0x01; // flip one payload bit; the CRC must catch it
        stream.write_all(&frame).unwrap();
        assert_error_frame_then_close(&mut stream);
    }
    assert_eq!(healthy.search(&ImageQuery::all()).unwrap(), expected_all);

    // --- Fault 5: slow-trickle writer ------------------------------------
    {
        // A valid frame dribbled one byte at a time must still be served —
        // TCP fragmentation is not a fault …
        let mut stream = TcpStream::connect(addr).unwrap();
        for &byte in &ping_frame() {
            stream.write_all(&[byte]).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let response = proto::read_response(&mut stream).unwrap().unwrap();
        assert_eq!(response.id, 77);
        assert!(matches!(response.body, proto::ResponseBody::Pong));

        // … but a trickle that dies mid-frame is fault 1 again, this time
        // with the server already mid-read.
        let mut stream = TcpStream::connect(addr).unwrap();
        let frame = ping_frame();
        for &byte in &frame[..frame.len() - 3] {
            stream.write_all(&[byte]).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(stream);
    }
    assert_eq!(healthy.search(&ImageQuery::all()).unwrap(), expected_all);

    // The canary served every probe over one connection; fresh clients
    // are also still welcome, and the faults were counted.
    let mut fresh = EqClient::connect(addr).unwrap();
    fresh.ping().unwrap();
    assert_eq!(fresh.search(&ImageQuery::all()).unwrap(), expected_all);
    // All five faulty connections (the trickled ping was *served*, not a
    // fault) are eventually accounted for; the fire-and-forget ones may
    // still be in flight, so poll briefly.
    let deadline = Instant::now() + Duration::from_secs(10);
    while net.connections_failed() < 5 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(net.connections_failed(), 5, "every fault counted, the served trickle not");
    net.shutdown();
}

/// Admission control under a request flood: a client that pipelines far
/// past its in-flight quota gets typed `Overloaded` error frames for the
/// excess — immediately, in request order, with the request ids echoed —
/// and the connection is *not* stalled or killed.  Rejection must never
/// count as a connection fault.
#[test]
fn over_quota_requests_are_rejected_with_typed_errors_not_stalled() {
    let (net, _server) = serve_with(
        16,
        403,
        NetConfig { workers: 1, max_inflight_per_conn: 4, ..NetConfig::default() },
    );
    let addr = net.local_addr();
    let mut canary = EqClient::connect(addr).unwrap();
    canary.ping().unwrap();

    // Twelve pings in ONE write: they arrive as one burst, so the poller
    // admits at most the quota before any response can retire in-flight
    // slots.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut burst = Vec::new();
    for id in 1..=12u64 {
        proto::write_request(&mut burst, &proto::Request { id, body: proto::RequestBody::Ping })
            .unwrap();
    }
    stream.write_all(&burst).unwrap();
    stream.flush().unwrap();

    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut pongs = 0u64;
    let mut overloaded = 0u64;
    for expected_id in 1..=12u64 {
        let response = proto::read_response(&mut stream).unwrap().expect("a response per request");
        assert_eq!(response.id, expected_id, "responses come back in request order");
        match response.body {
            proto::ResponseBody::Pong => pongs += 1,
            proto::ResponseBody::Error(payload) => {
                assert_eq!(payload.code, proto::ErrorCode::Overloaded);
                assert!(!payload.message.is_empty());
                overloaded += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(pongs >= 1, "requests within quota are served");
    assert!(overloaded >= 1, "requests over quota are rejected, not stalled");
    assert_eq!(pongs + overloaded, 12);

    // The flooding connection survives rejection and is not a fault.
    stream.write_all(&ping_frame()).unwrap();
    let response = proto::read_response(&mut stream).unwrap().unwrap();
    assert_eq!(response.id, 77);
    assert!(matches!(response.body, proto::ResponseBody::Pong));

    let stats = net.net_stats();
    assert!(stats.rejected_overload >= 1);
    assert_eq!(net.connections_failed(), 0, "rejection is not a connection fault");
    canary.ping().unwrap();
    net.shutdown();
}

/// Slow-loris defence: a client that floods queries and never reads its
/// responses is evicted once its output backlog trips the write cap (or
/// stalls past the write timeout) — it can no longer pin server memory —
/// while a healthy client on the same server keeps being served.
#[test]
fn slow_readers_are_evicted_and_service_continues() {
    let (net, server) = serve_with(
        48,
        404,
        NetConfig {
            workers: 2,
            max_inflight_per_conn: 512,
            queue_capacity: 1024,
            write_timeout: Duration::from_millis(250),
            write_buffer_cap: 64 * 1024,
        },
    );
    let addr = net.local_addr();
    let mut canary = EqClient::connect(addr).unwrap();
    let expected = server.search(&ImageQuery::all()).unwrap();

    // The loris: hundreds of pipelined searches, never reading a byte of
    // the multi-megabyte response stream.
    let mut loris = TcpStream::connect(addr).unwrap();
    let spec = agoraeo::earthqube::net::query_to_spec(&ImageQuery::all());
    let mut burst = Vec::new();
    for id in 1..=800u64 {
        proto::write_request(
            &mut burst,
            &proto::Request { id, body: proto::RequestBody::Search(spec.clone()) },
        )
        .unwrap();
    }
    loris.write_all(&burst).unwrap();
    loris.flush().unwrap();

    let deadline = Instant::now() + Duration::from_secs(20);
    while net.net_stats().evicted_slow == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = net.net_stats();
    assert!(stats.evicted_slow >= 1, "the non-reading client must be evicted: {stats:?}");
    assert_eq!(net.connections_failed(), 0, "eviction is not a protocol fault");

    // The evicted socket is dead; the healthy client is untouched.
    assert_eq!(canary.search(&ImageQuery::all()).unwrap(), expected);
    canary.ping().unwrap();
    drop(loris);
    net.shutdown();
}

/// Faults arriving *concurrently* with real traffic: four clients hammer
/// queries while four abusers inject corrupt frames; every legitimate
/// response must stay correct.
#[test]
fn concurrent_faults_do_not_perturb_live_traffic() {
    let (net, server) = serve(16, 402);
    let addr = net.local_addr();
    let expected = server.search(&ImageQuery::all()).unwrap();

    std::thread::scope(|scope| {
        for _ in 0..2 {
            let expected = expected.clone();
            scope.spawn(move || {
                let mut client = EqClient::connect(addr).unwrap();
                for _ in 0..8 {
                    assert_eq!(client.search(&ImageQuery::all()).unwrap(), expected);
                }
            });
        }
        for i in 0..4u8 {
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut frame = ping_frame();
                match i % 3 {
                    0 => {
                        frame[0] = b'X'; // garbage magic
                        let _ = stream.write_all(&frame);
                        drain_to_close(&mut stream);
                    }
                    1 => {
                        // Torn header: the server is rightfully waiting for
                        // the rest, so die instead of awaiting a reply.
                        let _ = stream.write_all(&frame[..5]);
                    }
                    _ => {
                        let last = frame.len() - 1;
                        frame[last] ^= 0x80; // corrupt payload
                        let _ = stream.write_all(&frame);
                        drain_to_close(&mut stream);
                    }
                }
            });
        }
    });

    // The pool survived the storm.
    let mut client = EqClient::connect(addr).unwrap();
    assert_eq!(client.search(&ImageQuery::all()).unwrap(), expected);
    net.shutdown();
}
